// Ablation: the two greedy design choices this library makes on top of the
// paper's Figure 6 procedure.
//
//  1. Gain definition — the paper's literal equation (2) sums raw ΔF over
//     every affected result; our default caps each ΔF at the gap to β and
//     ignores already-satisfied results/queries (overshoot buys nothing).
//     Measured effect: cost of the produced plan, before and after phase 2.
//  2. Gain maintenance — the paper recomputes every gain each iteration
//     (O(k) per increment); our default keeps a lazily invalidated max
//     queue and only recomputes gains invalidated by the last increment.
//     Measured effect: wall-clock time at growing data sizes (identical
//     plans: the selection order is the same, only bookkeeping differs).

#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "strategy/greedy.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

int Run() {
  using namespace bench;
  PrintHeader("Ablation (greedy)", "gain definition and gain maintenance");

  // --- 1. Gain definition. ------------------------------------------------
  std::printf("\n[1] gain definition: capped-unsatisfied (default) vs raw eq. (2)\n\n");
  TablePrinter gain_table({"data size", "raw 1p", "raw 2p", "capped 1p", "capped 2p",
                           "capped2p/raw2p"});
  std::vector<size_t> gain_sizes =
      BenchScale() == Scale::kQuick ? std::vector<size_t>{500, 1000}
                                    : std::vector<size_t>{500, 1000, 3000, 5000};
  for (size_t k : gain_sizes) {
    WorkloadParams params;
    params.num_base_tuples = k;
    params.bases_per_result = 5;
    params.seed = 42;
    Workload w = GenerateWorkload(params);
    auto problem = w.ToProblem();
    if (!problem.ok()) return 1;

    double costs[4];
    int idx = 0;
    for (GainMode mode : {GainMode::kRawAll, GainMode::kCappedUnsatisfied}) {
      for (bool two_phase : {false, true}) {
        GreedyOptions options;
        options.gain_mode = mode;
        options.two_phase = two_phase;
        auto s = SolveGreedy(*problem, options);
        if (!s.ok()) return 1;
        costs[idx++] = s->total_cost;
      }
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2f", costs[3] / costs[1]);
    gain_table.AddRow({FormatCount(k), FormatCost(costs[0]), FormatCost(costs[1]),
                       FormatCost(costs[2]), FormatCost(costs[3]), ratio});
  }
  gain_table.Print();
  std::printf("\nReading: capping mostly pre-empts the waste phase 2 would remove;\n");
  std::printf("capped 1p is already close to raw 2p, and capped 2p is the cheapest.\n");

  // --- 2. Gain maintenance. -----------------------------------------------
  std::printf("\n[2] gain maintenance: full rescan (paper) vs lazy queue (default)\n\n");
  TablePrinter time_table({"data size", "rescan", "lazy queue", "speedup"});
  std::vector<size_t> time_sizes =
      BenchScale() == Scale::kQuick ? std::vector<size_t>{500, 1000}
                                    : std::vector<size_t>{1000, 3000, 5000};
  for (size_t k : time_sizes) {
    WorkloadParams params;
    params.num_base_tuples = k;
    params.bases_per_result = 5;
    params.seed = 42;
    Workload w = GenerateWorkload(params);
    auto problem = w.ToProblem();
    if (!problem.ok()) return 1;

    GreedyOptions rescan;
    rescan.lazy_gain_queue = false;
    Stopwatch timer;
    auto s1 = SolveGreedy(*problem, rescan);
    if (!s1.ok()) return 1;
    double t1 = timer.ElapsedSeconds();

    timer.Restart();
    auto s2 = SolveGreedy(*problem);
    if (!s2.ok()) return 1;
    double t2 = timer.ElapsedSeconds();

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.0fx", t1 / std::max(t2, 1e-9));
    time_table.AddRow({FormatCount(k), FormatSeconds(t1), FormatSeconds(t2), speedup});
  }
  time_table.Print();
  std::printf("\nReading: the lazy queue turns the paper's O(k) per increment into\n");
  std::printf("~O(affected) and grows the gap with data size.\n");
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
