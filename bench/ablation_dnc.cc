// Ablation: divide-and-conquer design knobs.
//
//  1. Partition threshold γ — low γ merges aggressively (few big groups:
//     better global view, slower sub-solves); high γ leaves many singleton
//     groups (fast, but the combiner has less structure to exploit).
//  2. Exact-pass threshold τ — groups with fewer than τ base tuples get a
//     bounded branch-and-bound polish seeded with the group's greedy cost;
//     τ = 0 disables it (pure greedy inside groups).

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/stopwatch.h"
#include "strategy/dnc.h"
#include "strategy/partition.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

Workload AblationWorkload() {
  WorkloadParams params;
  params.num_base_tuples = 2000;
  params.bases_per_result = 5;
  params.seed = 42;
  return GenerateWorkload(params);
}

int Run() {
  using namespace bench;
  PrintHeader("Ablation (D&C)", "partition threshold gamma and exact-pass tau");
  Workload w = AblationWorkload();
  auto problem = w.ToProblem();
  if (!problem.ok()) return 1;
  std::printf("workload: 2000 base tuples, 5/result, theta=50%%, beta=0.6\n");

  std::printf("\n[1] gamma sweep (tau = 12)\n\n");
  TablePrinter gamma_table({"gamma", "groups", "largest", "time", "cost"});
  for (double gamma : {1.0, 2.0, 3.0, 5.0, 10.0}) {
    PartitionOptions popts;
    popts.gamma = gamma;
    std::vector<PartitionGroup> groups = PartitionResults(*problem, popts);
    size_t largest = 0;
    for (const PartitionGroup& g : groups) largest = std::max(largest, g.results.size());

    DncOptions options;
    options.partition.gamma = gamma;
    Stopwatch timer;
    auto s = SolveDnc(*problem, options);
    if (!s.ok()) return 1;
    gamma_table.AddRow({FormatDouble(gamma), FormatCount(groups.size()),
                        FormatCount(largest), FormatSeconds(timer.ElapsedSeconds()),
                        FormatCost(s->total_cost)});
  }
  gamma_table.Print();
  std::printf("\nReading: low gamma merges aggressively (fewer, larger groups);\n");
  std::printf("high gamma leaves near-singletons, which hands the marginal-cost\n");
  std::printf("combiner maximal freedom and often *lowers* cost on weakly coupled\n");
  std::printf("workloads. The default gamma=2 follows the paper; tune per workload.\n");

  std::printf("\n[2] tau sweep (gamma = 2)\n\n");
  TablePrinter tau_table({"tau", "time", "cost", "vs tau=0 cost"});
  double base_cost = 0.0;
  for (size_t tau : {size_t{0}, size_t{6}, size_t{12}, size_t{24}}) {
    DncOptions options;
    options.tau = tau;
    options.heuristic_max_seconds = 0.1;  // keep the sweep bounded
    Stopwatch timer;
    auto s = SolveDnc(*problem, options);
    if (!s.ok()) return 1;
    if (tau == 0) base_cost = s->total_cost;
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.2f%%",
                  (s->total_cost / base_cost - 1.0) * 100.0);
    tau_table.AddRow({FormatCount(tau), FormatSeconds(timer.ElapsedSeconds()),
                      FormatCost(s->total_cost), delta});
  }
  tau_table.Print();
  std::printf("\nReading: the exact pass polishes each group's full-satisfaction\n");
  std::printf("plan; its benefit is workload-dependent (the combiner may use only\n");
  std::printf("a prefix of the polished plan) and its time grows steeply with tau\n");
  std::printf("since branch-and-bound is exponential in group size.\n");
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
