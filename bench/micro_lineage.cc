// Micro-benchmarks (google-benchmark) for the lineage layer: arena
// construction, independent evaluation, exact (Shannon) evaluation.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "common/random.h"
#include "lineage/evaluate.h"
#include "lineage/lineage.h"

namespace pcqe {
namespace {

void BM_ArenaBuildRunningExample(benchmark::State& state) {
  for (auto _ : state) {
    LineageArena arena;
    LineageRef f = arena.And(arena.Or(arena.Var(2), arena.Var(3)), arena.Var(13));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_ArenaBuildRunningExample);

void BM_ArenaBuildWide(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    LineageArena arena;
    std::vector<LineageRef> groups;
    for (size_t g = 0; g < width; ++g) {
      groups.push_back(arena.Or(arena.Var(2 * g), arena.Var(2 * g + 1)));
    }
    benchmark::DoNotOptimize(arena.And(groups));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(width));
}
BENCHMARK(BM_ArenaBuildWide)->Arg(8)->Arg(64)->Arg(512);

void BM_EvaluateIndependent(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  LineageArena arena;
  std::vector<LineageRef> groups;
  for (size_t g = 0; g < width; ++g) {
    groups.push_back(arena.Or(arena.Var(2 * g), arena.Var(2 * g + 1)));
  }
  LineageRef f = arena.And(groups);
  ConfidenceMap probs(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateIndependent(arena, f, probs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * width));
}
BENCHMARK(BM_EvaluateIndependent)->Arg(4)->Arg(32)->Arg(256);

void BM_EvaluateExactSharedVars(benchmark::State& state) {
  const size_t shared = static_cast<size_t>(state.range(0));
  LineageArena arena;
  // f = AND over OR(xi, yi) with x variables reused twice -> `shared`
  // conditioning variables.
  std::vector<LineageRef> groups;
  for (size_t g = 0; g < shared; ++g) {
    groups.push_back(arena.Or(arena.Var(g), arena.Var(100 + g)));
    groups.push_back(arena.Or(arena.Var(g), arena.Var(200 + g)));
  }
  LineageRef f = arena.And(groups);
  ConfidenceMap probs(0.3);
  for (auto _ : state) {
    auto r = EvaluateExact(arena, f, probs);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvaluateExactSharedVars)->Arg(4)->Arg(8)->Arg(12);

void BM_CopyFrom(benchmark::State& state) {
  LineageArena src;
  std::vector<LineageRef> groups;
  for (size_t g = 0; g < 64; ++g) {
    groups.push_back(src.Or(src.Var(2 * g), src.Var(2 * g + 1)));
  }
  LineageRef f = src.And(groups);
  for (auto _ : state) {
    LineageArena dst;
    benchmark::DoNotOptimize(dst.CopyFrom(src, f));
  }
}
BENCHMARK(BM_CopyFrom);

void BM_Variables(benchmark::State& state) {
  LineageArena arena;
  std::vector<LineageRef> groups;
  for (size_t g = 0; g < 128; ++g) {
    groups.push_back(arena.Or(arena.Var(2 * g), arena.Var(2 * g + 1)));
  }
  LineageRef f = arena.And(groups);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.Variables(f));
  }
}
BENCHMARK(BM_Variables);

// ---------------------------------------------------------------------------
// 1M-row lineage sweep: the arena work a vectorized scan+join+distinct over
// 1M base tuples generates, timed end-to-end and emitted as BENCH JSON:
//   BENCH {"bench":"micro_lineage","op":...,"rows":...,"seconds":...,
//          "krows_per_sec":...}
// Scale via PCQE_BENCH_SCALE: quick=100K rows, paper (default)=1M, full=4M.

void EmitLineageLine(const char* op, size_t rows, double seconds) {
  std::printf(
      "BENCH {\"bench\":\"micro_lineage\",\"op\":\"%s\",\"rows\":%zu,"
      "\"seconds\":%.6f,\"krows_per_sec\":%.1f}\n",
      op, rows, seconds, static_cast<double>(rows) / seconds / 1e3);
}

void RunLineageSweep() {
  bench::Scale scale = bench::BenchScale();
  size_t n = scale == bench::Scale::kQuick  ? 100'000
             : scale == bench::Scale::kFull ? 4'000'000
                                            : 1'000'000;
  std::printf("\n== 1M-row lineage sweep (rows=%zu, scale=%s) ==\n", n,
              bench::ScaleName(scale));
  auto now = [] { return std::chrono::steady_clock::now(); };
  auto seconds = [](auto t0, auto t1) {
    return std::chrono::duration<double>(t1 - t0).count();
  };

  LineageArena arena;
  arena.Reserve(2 * n + n / 10);

  // Scan shape: one interned Var per base row.
  std::vector<LineageRef> vars;
  vars.reserve(n);
  auto t0 = now();
  for (size_t i = 0; i < n; ++i) vars.push_back(arena.Var(static_cast<uint64_t>(i)));
  EmitLineageLine("var_intern", n, seconds(t0, now()));

  // Join shape: an And pair per output row (factorized group member).
  t0 = now();
  std::vector<LineageRef> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i + 1 < n; i += 2) {
    pairs.push_back(arena.And(vars[i], vars[i + 1]));
  }
  EmitLineageLine("and_pairs", n, seconds(t0, now()));

  // Distinct shape: Or over each group of 10 duplicate derivations.
  t0 = now();
  std::vector<LineageRef> groups;
  groups.reserve(n / 10 + 1);
  std::vector<LineageRef> members;
  for (size_t g = 0; g * 10 < n; ++g) {
    members.clear();
    for (size_t k = g * 10; k < std::min(n, (g + 1) * 10); ++k) members.push_back(vars[k]);
    groups.push_back(arena.Or(members));
  }
  EmitLineageLine("or_groups", n, seconds(t0, now()));

  // Confidence fold over every derived formula (independence semantics).
  ConfidenceMap probs(0.3);
  t0 = now();
  double acc = 0.0;
  for (LineageRef p : pairs) acc += EvaluateIndependent(arena, p, probs);
  for (LineageRef g : groups) acc += EvaluateIndependent(arena, g, probs);
  benchmark::DoNotOptimize(acc);
  EmitLineageLine("evaluate", n, seconds(t0, now()));
}

}  // namespace
}  // namespace pcqe

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pcqe::RunLineageSweep();
  return 0;
}
