// Micro-benchmarks (google-benchmark) for the lineage layer: arena
// construction, independent evaluation, exact (Shannon) evaluation.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "lineage/evaluate.h"
#include "lineage/lineage.h"

namespace pcqe {
namespace {

void BM_ArenaBuildRunningExample(benchmark::State& state) {
  for (auto _ : state) {
    LineageArena arena;
    LineageRef f = arena.And(arena.Or(arena.Var(2), arena.Var(3)), arena.Var(13));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_ArenaBuildRunningExample);

void BM_ArenaBuildWide(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    LineageArena arena;
    std::vector<LineageRef> groups;
    for (size_t g = 0; g < width; ++g) {
      groups.push_back(arena.Or(arena.Var(2 * g), arena.Var(2 * g + 1)));
    }
    benchmark::DoNotOptimize(arena.And(groups));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(width));
}
BENCHMARK(BM_ArenaBuildWide)->Arg(8)->Arg(64)->Arg(512);

void BM_EvaluateIndependent(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  LineageArena arena;
  std::vector<LineageRef> groups;
  for (size_t g = 0; g < width; ++g) {
    groups.push_back(arena.Or(arena.Var(2 * g), arena.Var(2 * g + 1)));
  }
  LineageRef f = arena.And(groups);
  ConfidenceMap probs(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateIndependent(arena, f, probs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * width));
}
BENCHMARK(BM_EvaluateIndependent)->Arg(4)->Arg(32)->Arg(256);

void BM_EvaluateExactSharedVars(benchmark::State& state) {
  const size_t shared = static_cast<size_t>(state.range(0));
  LineageArena arena;
  // f = AND over OR(xi, yi) with x variables reused twice -> `shared`
  // conditioning variables.
  std::vector<LineageRef> groups;
  for (size_t g = 0; g < shared; ++g) {
    groups.push_back(arena.Or(arena.Var(g), arena.Var(100 + g)));
    groups.push_back(arena.Or(arena.Var(g), arena.Var(200 + g)));
  }
  LineageRef f = arena.And(groups);
  ConfidenceMap probs(0.3);
  for (auto _ : state) {
    auto r = EvaluateExact(arena, f, probs);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvaluateExactSharedVars)->Arg(4)->Arg(8)->Arg(12);

void BM_CopyFrom(benchmark::State& state) {
  LineageArena src;
  std::vector<LineageRef> groups;
  for (size_t g = 0; g < 64; ++g) {
    groups.push_back(src.Or(src.Var(2 * g), src.Var(2 * g + 1)));
  }
  LineageRef f = src.And(groups);
  for (auto _ : state) {
    LineageArena dst;
    benchmark::DoNotOptimize(dst.CopyFrom(src, f));
  }
}
BENCHMARK(BM_CopyFrom);

void BM_Variables(benchmark::State& state) {
  LineageArena arena;
  std::vector<LineageRef> groups;
  for (size_t g = 0; g < 128; ++g) {
    groups.push_back(arena.Or(arena.Var(2 * g), arena.Var(2 * g + 1)));
  }
  LineageRef f = arena.And(groups);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.Variables(f));
  }
}
BENCHMARK(BM_Variables);

}  // namespace
}  // namespace pcqe

BENCHMARK_MAIN();
