// Micro-benchmarks (google-benchmark) for the query engine: parsing,
// planning, operator throughput with lineage propagation — each operator in
// both execution modes (row reference vs. vectorized column chunks).
//
// After the google-benchmark fixtures, a 1M-row scan+join+lineage sweep runs
// both engines head-to-head and emits machine-readable lines:
//   BENCH {"bench":"micro_query","op":...,"mode":"row"|"vec","rows":...,
//          "seconds":...,"krows_per_sec":...}
//   BENCH {"bench":"micro_query","op":...,"rows":...,"speedup_vec_over_row":...}
// Scale via PCQE_BENCH_SCALE: quick=100K rows, paper (default)=1M, full=4M.
// Recorded baselines live in bench/baselines/ (see its README.md).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "common/random.h"
#include "common/string_util.h"
#include "query/parser.h"
#include "query/query_engine.h"
#include "relational/catalog.h"

namespace pcqe {
namespace {

/// Catalog with `orders(id, customer, amount)` of `n` rows and
/// `customers(customer, region)` of `n / 10` rows.
std::unique_ptr<Catalog> MakeCatalog(size_t n) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(7);
  Table* orders = *catalog->CreateTable(
      "orders", Schema({{"id", DataType::kInt64, ""},
                        {"customer", DataType::kInt64, ""},
                        {"amount", DataType::kDouble, ""}}));
  size_t num_customers = std::max<size_t>(1, n / 10);
  for (size_t i = 0; i < n; ++i) {
    (void)*orders->Insert(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Int(rng.UniformInt(0, static_cast<int64_t>(num_customers) - 1)),
         Value::Double(rng.Uniform(1.0, 1000.0))},
        rng.Uniform(0.05, 0.95));
  }
  Table* customers = *catalog->CreateTable(
      "customers",
      Schema({{"customer", DataType::kInt64, ""}, {"region", DataType::kString, ""}}));
  for (size_t c = 0; c < num_customers; ++c) {
    (void)*customers->Insert(
        {Value::Int(static_cast<int64_t>(c)),
         Value::String(StrFormat("region-%lld", static_cast<long long>(c % 7)))},
        rng.Uniform(0.05, 0.95));
  }
  return catalog;
}

ExecutionMode ModeArg(const benchmark::State& state) {
  return state.range(1) == 0 ? ExecutionMode::kRow : ExecutionMode::kVectorized;
}

void SetModeLabel(benchmark::State& state) {
  state.SetLabel(ExecutionModeToString(ModeArg(state)));
}

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT ci.company, ci.income FROM (SELECT DISTINCT company FROM proposal "
      "WHERE funding < 1000000) AS c JOIN companyinfo AS ci ON c.company = ci.company "
      "ORDER BY ci.income DESC LIMIT 10";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseSelect(sql));
  }
}
BENCHMARK(BM_ParseSelect);

void BM_ScanWithConfidence(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunQuery(*catalog, "SELECT * FROM orders", nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanWithConfidence)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_FilterSelective(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(*catalog, "SELECT id FROM orders WHERE amount < 100",
                                      nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterSelective)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_HashJoin(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunQuery(*catalog,
                 "SELECT o.id, c.region FROM orders AS o JOIN customers AS c "
                 "ON o.customer = c.customer",
                 nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_DistinctWithOrLineage(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(*catalog, "SELECT DISTINCT customer FROM orders",
                                      nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DistinctWithOrLineage)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SortLimit(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunQuery(*catalog, "SELECT id, amount FROM orders ORDER BY amount DESC LIMIT 10",
                 nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortLimit)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// The 1M-row sweep: one timed head-to-head per operator, both modes, with the
// full pipeline (execute + lineage + confidence) inside the timed region.

double TimeQuery(const Catalog& catalog, const std::string& sql, ExecutionMode mode,
                 bool materialize_values, size_t* out_rows) {
  double best = 1e99;
  for (int rep = 0; rep < 2; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    Result<QueryResult> result = RunQuery(catalog, sql, nullptr, mode, materialize_values);
    auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "sweep query failed: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    *out_rows = result->rows.size();
    double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best) best = s;
  }
  return best;
}

void RunSweep() {
  using bench::FormatCount;
  using bench::FormatSeconds;
  bench::Scale scale = bench::BenchScale();
  size_t n = scale == bench::Scale::kQuick  ? 100'000
             : scale == bench::Scale::kFull ? 4'000'000
                                            : 1'000'000;
  std::printf("\n== 1M-row scan+join+lineage sweep (rows=%s, scale=%s) ==\n",
              FormatCount(n).c_str(), bench::ScaleName(scale));
  auto catalog = MakeCatalog(n);

  struct Op {
    const char* name;
    std::string sql;
  };
  const Op ops[] = {
      {"scan", "SELECT * FROM orders"},
      {"filter", "SELECT id FROM orders WHERE amount < 100"},
      {"join",
       "SELECT o.id, c.region FROM orders AS o JOIN customers AS c "
       "ON o.customer = c.customer"},
      {"distinct", "SELECT DISTINCT customer FROM orders"},
  };

  // "vec" is the engine's serving configuration (PcqeEngine::Evaluate):
  // confidences computed nodelessly from the factorized result; value boxing
  // and lineage interning deferred until something needs them (display, the
  // shortfall solver). "vec_boxed" materializes everything eagerly for
  // RunQuery API parity — that per-row boxing floor is identical work in
  // both engines, so the architectural difference shows in row-vs-vec.
  bench::TablePrinter table(
      {"op", "rows", "row_engine", "vectorized", "vec_boxed", "speedup"});
  for (const Op& op : ops) {
    size_t out_rows = 0;
    double row_s =
        TimeQuery(*catalog, op.sql, ExecutionMode::kRow, /*materialize=*/true, &out_rows);
    double vec_s = TimeQuery(*catalog, op.sql, ExecutionMode::kVectorized,
                             /*materialize=*/false, &out_rows);
    double boxed_s = TimeQuery(*catalog, op.sql, ExecutionMode::kVectorized,
                               /*materialize=*/true, &out_rows);
    double speedup = row_s / vec_s;
    for (auto [mode, seconds] : {std::pair<const char*, double>{"row", row_s},
                                 std::pair<const char*, double>{"vec", vec_s},
                                 std::pair<const char*, double>{"vec_boxed", boxed_s}}) {
      std::printf(
          "BENCH {\"bench\":\"micro_query\",\"op\":\"%s\",\"mode\":\"%s\","
          "\"rows\":%zu,\"out_rows\":%zu,\"seconds\":%.6f,\"krows_per_sec\":%.1f}\n",
          op.name, mode, n, out_rows, seconds,
          static_cast<double>(n) / seconds / 1e3);
    }
    std::printf(
        "BENCH {\"bench\":\"micro_query\",\"op\":\"%s\",\"rows\":%zu,"
        "\"speedup_vec_over_row\":%.2f}\n",
        op.name, n, speedup);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx", speedup);
    table.AddRow({op.name, FormatCount(n), FormatSeconds(row_s), FormatSeconds(vec_s),
                  FormatSeconds(boxed_s), ratio});
  }
  table.Print();
}

// ---------------------------------------------------------------------------
// Profiling overhead: EXPLAIN ANALYZE must be pay-for-what-you-use. The
// unprofiled leg (the serving default) runs with a null profiler — one
// pointer test per operator, no allocation — so a profiled run over the same
// scan→filter→join pipeline must land within 5% of it (plus an absolute
// floor for timer jitter on loaded CI machines). Exits non-zero on a
// persistent violation so check.sh catches a profiler that leaks cost onto
// the hot path.

void RunProfileOverheadLeg() {
  bench::Scale scale = bench::BenchScale();
  size_t n = scale == bench::Scale::kQuick  ? 100'000
             : scale == bench::Scale::kFull ? 4'000'000
                                            : 1'000'000;
  auto catalog = MakeCatalog(n);
  const std::string sql =
      "SELECT o.id, c.region FROM orders AS o JOIN customers AS c "
      "ON o.customer = c.customer WHERE o.amount < 500";

  auto measure = [&](bool profiled) {
    double best = 1e99;
    for (int rep = 0; rep < 5; ++rep) {
      OperatorProfile profile;
      auto t0 = std::chrono::steady_clock::now();
      Result<QueryResult> result =
          RunQuery(*catalog, sql, nullptr, ExecutionMode::kVectorized,
                   /*materialize_values=*/false, profiled ? &profile : nullptr);
      auto t1 = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "overhead query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      if (profiled && profile.nodes.empty()) {
        std::fprintf(stderr, "profiled run collected no operator nodes\n");
        std::exit(1);
      }
      double s = std::chrono::duration<double>(t1 - t0).count();
      if (s < best) best = s;
    }
    return best;
  };

  std::printf("\n== profiling overhead (rows=%s) ==\n", bench::FormatCount(n).c_str());
  // Min-of-5 per leg absorbs most scheduler noise; an absolute slack floor
  // covers short quick-scale runs where 5% is below timer resolution. One
  // remeasure before failing: a single page-cache or frequency blip should
  // not fail the build.
  constexpr double kAbsoluteSlack = 0.005;  // 5ms
  double off = 0.0;
  double on = 0.0;
  bool ok = false;
  for (int attempt = 0; attempt < 2 && !ok; ++attempt) {
    off = measure(/*profiled=*/false);
    on = measure(/*profiled=*/true);
    ok = on <= off * 1.05 + kAbsoluteSlack;
  }
  double overhead_pct = (on / off - 1.0) * 100.0;
  std::printf(
      "BENCH {\"bench\":\"micro_query\",\"op\":\"profile_overhead\",\"rows\":%zu,"
      "\"seconds_off\":%.6f,\"seconds_on\":%.6f,\"overhead_pct\":%.2f}\n",
      n, off, on, overhead_pct);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: profiled run %.6fs exceeds unprofiled %.6fs by more "
                 "than 5%% + %.0fms slack\n",
                 on, off, kAbsoluteSlack * 1e3);
    std::exit(1);
  }
  std::printf("profiling overhead %.2f%% (unprofiled %s, profiled %s) — within 5%%\n",
              overhead_pct, bench::FormatSeconds(off).c_str(),
              bench::FormatSeconds(on).c_str());
}

}  // namespace
}  // namespace pcqe

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pcqe::RunSweep();
  pcqe::RunProfileOverheadLeg();
  return 0;
}
