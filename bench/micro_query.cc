// Micro-benchmarks (google-benchmark) for the query engine: parsing,
// planning, operator throughput with lineage propagation.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/string_util.h"
#include "query/parser.h"
#include "query/query_engine.h"
#include "relational/catalog.h"

namespace pcqe {
namespace {

/// Catalog with `orders(id, customer, amount)` of `n` rows and
/// `customers(customer, region)` of `n / 10` rows.
std::unique_ptr<Catalog> MakeCatalog(size_t n) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(7);
  Table* orders = *catalog->CreateTable(
      "orders", Schema({{"id", DataType::kInt64, ""},
                        {"customer", DataType::kInt64, ""},
                        {"amount", DataType::kDouble, ""}}));
  size_t num_customers = std::max<size_t>(1, n / 10);
  for (size_t i = 0; i < n; ++i) {
    (void)*orders->Insert(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Int(rng.UniformInt(0, static_cast<int64_t>(num_customers) - 1)),
         Value::Double(rng.Uniform(1.0, 1000.0))},
        rng.Uniform(0.05, 0.95));
  }
  Table* customers = *catalog->CreateTable(
      "customers",
      Schema({{"customer", DataType::kInt64, ""}, {"region", DataType::kString, ""}}));
  for (size_t c = 0; c < num_customers; ++c) {
    (void)*customers->Insert(
        {Value::Int(static_cast<int64_t>(c)),
         Value::String(StrFormat("region-%lld", static_cast<long long>(c % 7)))},
        rng.Uniform(0.05, 0.95));
  }
  return catalog;
}

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT ci.company, ci.income FROM (SELECT DISTINCT company FROM proposal "
      "WHERE funding < 1000000) AS c JOIN companyinfo AS ci ON c.company = ci.company "
      "ORDER BY ci.income DESC LIMIT 10";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseSelect(sql));
  }
}
BENCHMARK(BM_ParseSelect);

void BM_ScanWithConfidence(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(*catalog, "SELECT * FROM orders"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanWithConfidence)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_FilterSelective(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunQuery(*catalog, "SELECT id FROM orders WHERE amount < 100"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterSelective)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_HashJoin(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(
        *catalog,
        "SELECT o.id, c.region FROM orders AS o JOIN customers AS c "
        "ON o.customer = c.customer"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_DistinctWithOrLineage(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunQuery(*catalog, "SELECT DISTINCT customer FROM orders"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DistinctWithOrLineage)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_SortLimit(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(
        *catalog, "SELECT id, amount FROM orders ORDER BY amount DESC LIMIT 10"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortLimit)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pcqe

BENCHMARK_MAIN();
