// Micro-benchmarks (google-benchmark) for the query engine: parsing,
// planning, operator throughput with lineage propagation — each operator in
// both execution modes (row reference vs. vectorized column chunks).
//
// After the google-benchmark fixtures, a 1M-row scan+join+lineage sweep runs
// both engines head-to-head and emits machine-readable lines:
//   BENCH {"bench":"micro_query","op":...,"mode":"row"|"vec","rows":...,
//          "seconds":...,"krows_per_sec":...}
//   BENCH {"bench":"micro_query","op":...,"rows":...,"speedup_vec_over_row":...}
// then a β-selectivity pushdown sweep (op "pushdown_sweep": β at the
// 10/50/90/99th confidence percentile, pushdown off vs on, hard zero-
// divergence gate on the released surface) and a profiling-overhead gate.
// Scale via PCQE_BENCH_SCALE: quick=100K rows, paper (default)=1M, full=4M.
// Recorded baselines live in bench/baselines/ (see its README.md).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "query/confidence_index.h"
#include "query/parser.h"
#include "query/query_engine.h"
#include "relational/catalog.h"
#include "relational/column_chunk.h"

namespace pcqe {
namespace {

/// Catalog with `orders(id, customer, amount)` of `n` rows and
/// `customers(customer, region)` of `n / 10` rows. With `clustered` the
/// orders confidences grow with row position (±0.01 jitter) — the
/// ingest-batch clustering that gives the β-pushdown zone maps real chunk
/// skipping power; otherwise they are i.i.d. Uniform(0.05, 0.95).
std::unique_ptr<Catalog> MakeCatalog(size_t n, bool clustered = false) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(7);
  Table* orders = *catalog->CreateTable(
      "orders", Schema({{"id", DataType::kInt64, ""},
                        {"customer", DataType::kInt64, ""},
                        {"amount", DataType::kDouble, ""}}));
  size_t num_customers = std::max<size_t>(1, n / 10);
  for (size_t i = 0; i < n; ++i) {
    double confidence =
        clustered ? std::clamp(0.05 +
                                   0.9 * static_cast<double>(i) /
                                       static_cast<double>(n) +
                                   rng.Uniform(-0.01, 0.01),
                               0.02, 0.98)
                  : rng.Uniform(0.05, 0.95);
    (void)*orders->Insert(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Int(rng.UniformInt(0, static_cast<int64_t>(num_customers) - 1)),
         Value::Double(rng.Uniform(1.0, 1000.0))},
        confidence);
  }
  Table* customers = *catalog->CreateTable(
      "customers",
      Schema({{"customer", DataType::kInt64, ""}, {"region", DataType::kString, ""}}));
  for (size_t c = 0; c < num_customers; ++c) {
    (void)*customers->Insert(
        {Value::Int(static_cast<int64_t>(c)),
         Value::String(StrFormat("region-%lld", static_cast<long long>(c % 7)))},
        rng.Uniform(0.05, 0.95));
  }
  return catalog;
}

ExecutionMode ModeArg(const benchmark::State& state) {
  return state.range(1) == 0 ? ExecutionMode::kRow : ExecutionMode::kVectorized;
}

void SetModeLabel(benchmark::State& state) {
  state.SetLabel(ExecutionModeToString(ModeArg(state)));
}

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT ci.company, ci.income FROM (SELECT DISTINCT company FROM proposal "
      "WHERE funding < 1000000) AS c JOIN companyinfo AS ci ON c.company = ci.company "
      "ORDER BY ci.income DESC LIMIT 10";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseSelect(sql));
  }
}
BENCHMARK(BM_ParseSelect);

void BM_ScanWithConfidence(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunQuery(*catalog, "SELECT * FROM orders", nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanWithConfidence)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_FilterSelective(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(*catalog, "SELECT id FROM orders WHERE amount < 100",
                                      nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterSelective)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_HashJoin(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunQuery(*catalog,
                 "SELECT o.id, c.region FROM orders AS o JOIN customers AS c "
                 "ON o.customer = c.customer",
                 nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_DistinctWithOrLineage(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(*catalog, "SELECT DISTINCT customer FROM orders",
                                      nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DistinctWithOrLineage)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SortLimit(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<size_t>(state.range(0)));
  SetModeLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunQuery(*catalog, "SELECT id, amount FROM orders ORDER BY amount DESC LIMIT 10",
                 nullptr, ModeArg(state)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortLimit)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// The 1M-row sweep: one timed head-to-head per operator, both modes, with the
// full pipeline (execute + lineage + confidence) inside the timed region.

double TimeQuery(const Catalog& catalog, const std::string& sql, ExecutionMode mode,
                 bool materialize_values, size_t* out_rows) {
  double best = 1e99;
  for (int rep = 0; rep < 2; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    Result<QueryResult> result = RunQuery(catalog, sql, nullptr, mode, materialize_values);
    auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "sweep query failed: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    *out_rows = result->rows.size();
    double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best) best = s;
  }
  return best;
}

void RunSweep() {
  using bench::FormatCount;
  using bench::FormatSeconds;
  bench::Scale scale = bench::BenchScale();
  size_t n = scale == bench::Scale::kQuick  ? 100'000
             : scale == bench::Scale::kFull ? 4'000'000
                                            : 1'000'000;
  std::printf("\n== 1M-row scan+join+lineage sweep (rows=%s, scale=%s) ==\n",
              FormatCount(n).c_str(), bench::ScaleName(scale));
  auto catalog = MakeCatalog(n);

  struct Op {
    const char* name;
    std::string sql;
  };
  const Op ops[] = {
      {"scan", "SELECT * FROM orders"},
      {"filter", "SELECT id FROM orders WHERE amount < 100"},
      {"join",
       "SELECT o.id, c.region FROM orders AS o JOIN customers AS c "
       "ON o.customer = c.customer"},
      {"distinct", "SELECT DISTINCT customer FROM orders"},
  };

  // "vec" is the engine's serving configuration (PcqeEngine::Evaluate):
  // confidences computed nodelessly from the factorized result; value boxing
  // and lineage interning deferred until something needs them (display, the
  // shortfall solver). "vec_boxed" materializes everything eagerly for
  // RunQuery API parity — that per-row boxing floor is identical work in
  // both engines, so the architectural difference shows in row-vs-vec.
  bench::TablePrinter table(
      {"op", "rows", "row_engine", "vectorized", "vec_boxed", "speedup"});
  for (const Op& op : ops) {
    size_t out_rows = 0;
    double row_s =
        TimeQuery(*catalog, op.sql, ExecutionMode::kRow, /*materialize=*/true, &out_rows);
    double vec_s = TimeQuery(*catalog, op.sql, ExecutionMode::kVectorized,
                             /*materialize=*/false, &out_rows);
    double boxed_s = TimeQuery(*catalog, op.sql, ExecutionMode::kVectorized,
                               /*materialize=*/true, &out_rows);
    double speedup = row_s / vec_s;
    for (auto [mode, seconds] : {std::pair<const char*, double>{"row", row_s},
                                 std::pair<const char*, double>{"vec", vec_s},
                                 std::pair<const char*, double>{"vec_boxed", boxed_s}}) {
      std::printf(
          "BENCH {\"bench\":\"micro_query\",\"op\":\"%s\",\"mode\":\"%s\","
          "\"rows\":%zu,\"out_rows\":%zu,\"seconds\":%.6f,\"krows_per_sec\":%.1f}\n",
          op.name, mode, n, out_rows, seconds,
          static_cast<double>(n) / seconds / 1e3);
    }
    std::printf(
        "BENCH {\"bench\":\"micro_query\",\"op\":\"%s\",\"rows\":%zu,"
        "\"speedup_vec_over_row\":%.2f}\n",
        op.name, n, speedup);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx", speedup);
    table.AddRow({op.name, FormatCount(n), FormatSeconds(row_s), FormatSeconds(vec_s),
                  FormatSeconds(boxed_s), ratio});
  }
  table.Print();
}

// ---------------------------------------------------------------------------
// β-selectivity pushdown sweep: the scan→join pipeline with β pinned to the
// 10/50/90/99th percentile of the orders confidence distribution, pushdown
// off vs on, over a clustered-confidence catalog (each chunk spans a tight
// range, so the zone maps can skip whole chunks). The differential gate is
// hard: the β-filtered (released) surface of the pushed run must equal the
// unpushed one's confidence-for-confidence, every β, or the process exits
// non-zero — check.sh runs every bench, so this rides every CI build.
// Speedups are report-only (timing-dependent); the expectation is ≥5x at
// the 99th percentile at paper scale, where 99% of the join input vanishes.

void RunPushdownSweep() {
  using bench::FormatCount;
  using bench::FormatSeconds;
  bench::Scale scale = bench::BenchScale();
  size_t n = scale == bench::Scale::kQuick  ? 100'000
             : scale == bench::Scale::kFull ? 4'000'000
                                            : 1'000'000;
  std::printf("\n== beta-selectivity pushdown sweep (rows=%s, clustered) ==\n",
              FormatCount(n).c_str());
  auto catalog = MakeCatalog(n, /*clustered=*/true);
  const std::string sql =
      "SELECT o.id, c.region FROM orders AS o JOIN customers AS c "
      "ON o.customer = c.customer";

  // β values read off the actual stored distribution, not assumed.
  std::vector<double> sorted;
  const Table* orders = *static_cast<const Catalog&>(*catalog).GetTable("orders");
  const TableColumnData& data = orders->column_data();
  sorted.reserve(data.num_rows());
  for (size_t c = 0; c < data.num_chunks(); ++c) {
    const std::vector<double>& chunk = data.confidence_chunk(c);
    sorted.insert(sorted.end(), chunk.begin(), chunk.end());
  }
  std::sort(sorted.begin(), sorted.end());

  ConfidenceIndexCache index;
  auto run = [&](const ConfidencePushdown* pushdown, QueryResult* out) {
    double best = 1e99;
    for (int rep = 0; rep < 2; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      Result<QueryResult> result =
          RunQuery(*catalog, sql, nullptr, ExecutionMode::kVectorized,
                   /*materialize_values=*/false, nullptr, pushdown);
      auto t1 = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "pushdown sweep query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      double s = std::chrono::duration<double>(t1 - t0).count();
      if (s < best) {
        best = s;
        *out = std::move(*result);
      }
    }
    return best;
  };

  bench::TablePrinter table({"beta_pct", "beta", "released", "no_pushdown",
                             "pushdown", "speedup", "pruned_chunks"});
  for (int pct : {10, 50, 90, 99}) {
    double beta =
        sorted[std::min(sorted.size() - 1, sorted.size() * static_cast<size_t>(pct) / 100)];
    ConfidencePushdown pushdown;
    pushdown.beta = beta;
    pushdown.index = &index;
    QueryResult off_result;
    QueryResult on_result;
    double off_s = run(nullptr, &off_result);
    double on_s = run(&pushdown, &on_result);

    // Release-identity: the policy keep-test (conf > β + ε) applied to both
    // results must select the same confidence sequence. Pushdown prunes only
    // base tuples that can never clear β, so surviving-but-blocked rows may
    // differ in count — the released surface may not.
    auto released = [beta](const QueryResult& result) {
      std::vector<double> kept;
      for (const QueryResult::Row& row : result.rows) {
        if (row.confidence > beta + kEpsilon) kept.push_back(row.confidence);
      }
      return kept;
    };
    std::vector<double> off_released = released(off_result);
    std::vector<double> on_released = released(on_result);
    if (off_released != on_released) {
      std::fprintf(stderr,
                   "FAIL: pushdown diverged at beta=%.6f (released %zu vs %zu)\n",
                   beta, off_released.size(), on_released.size());
      std::exit(1);
    }

    double speedup = off_s / on_s;
    std::printf(
        "BENCH {\"bench\":\"micro_query\",\"op\":\"pushdown_sweep\","
        "\"beta_pct\":%d,\"beta\":%.4f,\"rows\":%zu,\"released\":%zu,"
        "\"seconds_off\":%.6f,\"seconds_on\":%.6f,\"speedup\":%.2f,"
        "\"pruned_rows\":%llu,\"pruned_chunks\":%llu}\n",
        pct, beta, n, on_released.size(), off_s, on_s, speedup,
        static_cast<unsigned long long>(on_result.vec_stats.pruned_rows),
        static_cast<unsigned long long>(on_result.vec_stats.pruned_chunks));
    char beta_str[16];
    std::snprintf(beta_str, sizeof(beta_str), "%.3f", beta);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx", speedup);
    table.AddRow({std::to_string(pct), beta_str, FormatCount(on_released.size()),
                  FormatSeconds(off_s), FormatSeconds(on_s), ratio,
                  FormatCount(on_result.vec_stats.pruned_chunks)});
  }
  table.Print();
  std::printf("pushdown sweep: zero divergence across all beta percentiles\n");
}

// ---------------------------------------------------------------------------
// Profiling overhead: EXPLAIN ANALYZE must be pay-for-what-you-use. The
// unprofiled leg (the serving default) runs with a null profiler — one
// pointer test per operator, no allocation — so a profiled run over the same
// scan→filter→join pipeline must land within 5% of it (plus an absolute
// floor for timer jitter on loaded CI machines). Exits non-zero on a
// persistent violation so check.sh catches a profiler that leaks cost onto
// the hot path.

void RunProfileOverheadLeg() {
  bench::Scale scale = bench::BenchScale();
  size_t n = scale == bench::Scale::kQuick  ? 100'000
             : scale == bench::Scale::kFull ? 4'000'000
                                            : 1'000'000;
  auto catalog = MakeCatalog(n);
  const std::string sql =
      "SELECT o.id, c.region FROM orders AS o JOIN customers AS c "
      "ON o.customer = c.customer WHERE o.amount < 500";

  auto measure = [&](bool profiled) {
    double best = 1e99;
    for (int rep = 0; rep < 5; ++rep) {
      OperatorProfile profile;
      auto t0 = std::chrono::steady_clock::now();
      Result<QueryResult> result =
          RunQuery(*catalog, sql, nullptr, ExecutionMode::kVectorized,
                   /*materialize_values=*/false, profiled ? &profile : nullptr);
      auto t1 = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "overhead query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      if (profiled && profile.nodes.empty()) {
        std::fprintf(stderr, "profiled run collected no operator nodes\n");
        std::exit(1);
      }
      double s = std::chrono::duration<double>(t1 - t0).count();
      if (s < best) best = s;
    }
    return best;
  };

  std::printf("\n== profiling overhead (rows=%s) ==\n", bench::FormatCount(n).c_str());
  // Min-of-5 per leg absorbs most scheduler noise; an absolute slack floor
  // covers short quick-scale runs where 5% is below timer resolution. One
  // remeasure before failing: a single page-cache or frequency blip should
  // not fail the build.
  constexpr double kAbsoluteSlack = 0.005;  // 5ms
  double off = 0.0;
  double on = 0.0;
  bool ok = false;
  for (int attempt = 0; attempt < 2 && !ok; ++attempt) {
    off = measure(/*profiled=*/false);
    on = measure(/*profiled=*/true);
    ok = on <= off * 1.05 + kAbsoluteSlack;
  }
  double overhead_pct = (on / off - 1.0) * 100.0;
  std::printf(
      "BENCH {\"bench\":\"micro_query\",\"op\":\"profile_overhead\",\"rows\":%zu,"
      "\"seconds_off\":%.6f,\"seconds_on\":%.6f,\"overhead_pct\":%.2f}\n",
      n, off, on, overhead_pct);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: profiled run %.6fs exceeds unprofiled %.6fs by more "
                 "than 5%% + %.0fms slack\n",
                 on, off, kAbsoluteSlack * 1e3);
    std::exit(1);
  }
  std::printf("profiling overhead %.2f%% (unprofiled %s, profiled %s) — within 5%%\n",
              overhead_pct, bench::FormatSeconds(off).c_str(),
              bench::FormatSeconds(on).c_str());
}

}  // namespace
}  // namespace pcqe

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pcqe::RunSweep();
  pcqe::RunPushdownSweep();
  pcqe::RunProfileOverheadLeg();
  return 0;
}
