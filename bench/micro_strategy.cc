// Micro-benchmarks (google-benchmark) for the strategy layer: state
// updates, gain maintenance, partitioning and the solvers on fixed sizes.

#include <benchmark/benchmark.h>

#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "strategy/partition.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

Workload MakeWorkload(size_t k) {
  WorkloadParams params;
  params.num_base_tuples = k;
  params.bases_per_result = 5;
  params.seed = 42;
  return GenerateWorkload(params);
}

void BM_ConfidenceStateSetProb(benchmark::State& state) {
  Workload w = MakeWorkload(1000);
  IncrementProblem p = *w.ToProblem();
  ConfidenceState s(p);
  size_t i = 0;
  for (auto _ : state) {
    s.SetProb(i % p.num_base_tuples(), (i % 2) ? 0.5 : 0.1);
    ++i;
  }
}
BENCHMARK(BM_ConfidenceStateSetProb);

void BM_ProbeResult(benchmark::State& state) {
  Workload w = MakeWorkload(1000);
  IncrementProblem p = *w.ToProblem();
  ConfidenceState s(p);
  size_t i = 0;
  for (auto _ : state) {
    size_t base = i % p.num_base_tuples();
    if (!p.results_of_base(base).empty()) {
      benchmark::DoNotOptimize(s.ProbeResult(p.results_of_base(base)[0], base, 0.7));
    }
    ++i;
  }
}
BENCHMARK(BM_ProbeResult);

void BM_Partition(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)));
  IncrementProblem p = *w.ToProblem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionResults(p));
  }
}
BENCHMARK(BM_Partition)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_GreedyLazy(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)));
  IncrementProblem p = *w.ToProblem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveGreedy(p));
  }
}
BENCHMARK(BM_GreedyLazy)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_GreedyPaperScan(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)));
  IncrementProblem p = *w.ToProblem();
  GreedyOptions options;
  options.lazy_gain_queue = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveGreedy(p, options));
  }
}
BENCHMARK(BM_GreedyPaperScan)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_Dnc(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)));
  IncrementProblem p = *w.ToProblem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveDnc(p));
  }
}
BENCHMARK(BM_Dnc)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_HeuristicAll(benchmark::State& state) {
  WorkloadParams params;
  params.num_base_tuples = 10;
  params.num_results = 6;
  params.bases_per_result = 5;
  params.or_group_size = 3;
  params.seed = 1;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveHeuristic(p));
  }
}
BENCHMARK(BM_HeuristicAll)->Unit(benchmark::kMillisecond);

void BM_CostBeta(benchmark::State& state) {
  Workload w = MakeWorkload(1000);
  IncrementProblem p = *w.ToProblem();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CostBeta(p, i % p.num_base_tuples()));
    ++i;
  }
}
BENCHMARK(BM_CostBeta);

}  // namespace
}  // namespace pcqe

BENCHMARK_MAIN();
