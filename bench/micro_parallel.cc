// Copyright (c) PCQE contributors.
// Thread sweep for the parallel solver paths: SolveDnc at Figure-11 scale
// (concurrent per-group curve builds) and SolveHeuristic on the Figure 11(a)
// instance (multi-root branch-and-bound), each at 1/2/4/8 lanes. The paper's
// figures are reproduced single-lane elsewhere; this binary owns the
// thread-count story and doubles as the determinism smoke check: the D&C cost
// must be bit-identical across every lane count, and the heuristic cost must
// match to 1e-9 (both searches are complete, so both land on the optimum).
//
// Emits one machine-readable line per (solver, threads) cell:
//   BENCH {"bench":"micro_parallel","solver":...,"threads":...,"seconds":...,
//          "cost":...,"speedup_vs_1":...,"cost_matches_1":...}
// Unknown argv (e.g. --benchmark_min_time from scripts/check.sh smoke runs)
// is ignored; this is a plain binary, not a google-benchmark one.
//
// Recorded baselines live in bench/baselines/ — see the README there for the
// recording protocol.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "strategy/dnc.h"
#include "strategy/heuristic.h"
#include "workload/generator.h"

namespace pcqe {
namespace bench {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};

void EmitLine(const char* solver, size_t data_size, size_t threads,
              double seconds, double cost, double baseline_seconds,
              bool cost_matches) {
  std::printf(
      "BENCH {\"bench\":\"micro_parallel\",\"solver\":\"%s\","
      "\"data_size\":%zu,\"threads\":%zu,\"seconds\":%.4f,\"cost\":%.6f,"
      "\"speedup_vs_1\":%.2f,\"cost_matches_1\":%s}\n",
      solver, data_size, threads, seconds, cost,
      seconds > 0.0 && baseline_seconds > 0.0 ? baseline_seconds / seconds
                                              : 1.0,
      cost_matches ? "true" : "false");
}

/// Figure-11 overall-sweep shape: 5 base tuples per result below 10K,
/// data_size/1000 from 10K up (same rule as bench/fig11_overall.h).
WorkloadParams DncParams(size_t data_size) {
  WorkloadParams params;
  params.num_base_tuples = data_size;
  params.bases_per_result = data_size >= 10000 ? data_size / 1000 : 5;
  params.seed = 42;
  return params;
}

int SweepDnc(size_t data_size, TablePrinter* table) {
  Workload w = GenerateWorkload(DncParams(data_size));
  auto problem = w.ToProblem();
  if (!problem.ok()) {
    std::fprintf(stderr, "workload %zu: %s\n", data_size,
                 problem.status().ToString().c_str());
    return 1;
  }

  double baseline_seconds = 0.0;
  double baseline_cost = 0.0;
  for (size_t threads : kThreadSweep) {
    DncOptions options;
    options.parallelism.threads = threads;
    Stopwatch timer;
    auto s = SolveDnc(*problem, options);
    if (!s.ok()) {
      std::fprintf(stderr, "dnc error: %s\n", s.status().ToString().c_str());
      return 1;
    }
    double seconds = timer.ElapsedSeconds();
    if (threads == 1) {
      baseline_seconds = seconds;
      baseline_cost = s->total_cost;
    }
    // The D&C fan-out replays the sequential arithmetic in the same combine
    // order: the cost is bit-identical across lane counts, not just close.
    bool matches = s->total_cost == baseline_cost;
    EmitLine("dnc", data_size, threads, seconds, s->total_cost,
             baseline_seconds, matches);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  seconds > 0.0 ? baseline_seconds / seconds : 1.0);
    table->AddRow({"dnc", std::to_string(data_size), std::to_string(threads),
                   FormatSeconds(seconds), FormatCost(s->total_cost), speedup,
                   matches ? "yes" : "NO"});
    if (!matches) {
      std::fprintf(stderr,
                   "FAIL: dnc cost diverged at %zu threads (%.9f vs %.9f)\n",
                   threads, s->total_cost, baseline_cost);
      return 1;
    }
  }
  return 0;
}

int SweepHeuristic(TablePrinter* table) {
  // Figure 11(a) instance, no greedy bound: small enough for the complete
  // search, hard enough that the naive-order tree gives the roots real work.
  WorkloadParams params;
  params.num_base_tuples = 10;
  params.num_results = 6;
  params.bases_per_result = 5;
  params.or_group_size = 3;
  params.theta = 0.5;
  params.seed = 1;
  Workload w = GenerateWorkload(params);
  auto problem = w.ToProblem();
  if (!problem.ok()) return 1;

  double baseline_seconds = 0.0;
  double baseline_cost = 0.0;
  for (size_t threads : kThreadSweep) {
    HeuristicOptions options;
    options.parallelism.threads = threads;
    options.max_seconds = 300.0;
    Stopwatch timer;
    auto s = SolveHeuristic(*problem, options);
    if (!s.ok()) return 1;
    double seconds = timer.ElapsedSeconds();
    if (threads == 1) {
      baseline_seconds = seconds;
      baseline_cost = s->total_cost;
    }
    // Both searches are complete, so both costs are the optimum; incumbent
    // timing differs across lanes, hence tolerance instead of equality.
    bool matches = s->search_complete &&
                   std::abs(s->total_cost - baseline_cost) <= 1e-9;
    EmitLine("heuristic", params.num_base_tuples, threads, seconds,
             s->total_cost, baseline_seconds, matches);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  seconds > 0.0 ? baseline_seconds / seconds : 1.0);
    table->AddRow({"heuristic", std::to_string(params.num_base_tuples),
                   std::to_string(threads), FormatSeconds(seconds),
                   FormatCost(s->total_cost), speedup, matches ? "yes" : "NO"});
    if (!matches) {
      std::fprintf(stderr,
                   "FAIL: heuristic cost diverged at %zu threads "
                   "(%.9f vs %.9f, complete=%d)\n",
                   threads, s->total_cost, baseline_cost,
                   s->search_complete ? 1 : 0);
      return 1;
    }
  }
  return 0;
}

int Run() {
  Scale scale = BenchScale();
  std::vector<size_t> dnc_sizes;
  switch (scale) {
    case Scale::kQuick:
      dnc_sizes = {2000};
      break;
    case Scale::kPaper:
      dnc_sizes = {10000};
      break;
    case Scale::kFull:
      dnc_sizes = {10000, 50000};
      break;
  }
  std::printf("micro_parallel (scale=%s): solver thread sweep 1/2/4/8\n",
              ScaleName(scale));
  std::printf("note: speedups depend on available cores; costs must match "
              "regardless.\n\n");

  TablePrinter table({"solver", "size", "threads", "time", "cost",
                      "speedup_vs_1", "cost==1-lane"});
  for (size_t data_size : dnc_sizes) {
    if (int rc = SweepDnc(data_size, &table); rc != 0) return rc;
  }
  if (int rc = SweepHeuristic(&table); rc != 0) return rc;
  table.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pcqe

int main(int argc, char** argv) {
  // Smoke harnesses pass google-benchmark flags to every micro_* binary;
  // this one has no use for them.
  (void)argc;
  (void)argv;
  return pcqe::bench::Run();
}
