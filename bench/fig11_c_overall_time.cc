// Figure 11(c): overall response time — heuristic vs greedy vs D&C as data
// size grows.
//
// The paper's shape: the heuristic only finishes on very small datasets;
// greedy has the shortest time on small data and is then overtaken by D&C,
// with the gap widening as data size grows (greedy "takes hours" for >50K).

#include <cstdio>

#include "fig11_overall.h"

namespace pcqe {
namespace {

int Run() {
  using namespace bench;
  PrintHeader("Figure 11(c)", "overall response time: heuristic vs greedy vs D&C");
  std::printf("bases/result: 5 below 5K, data_size/1000 from 10K; '-' = skipped\n"
              "at this scale (heuristic: exponential; greedy: paper reports hours\n"
              "beyond 50K)\n\n");

  std::vector<OverallRow> rows;
  int rc = RunOverallSweep(&rows);
  if (rc != 0) return rc;

  TablePrinter table({"data size", "heuristic", "greedy", "dnc"});
  for (const OverallRow& row : rows) {
    auto cell = [](const std::optional<OverallCell>& c) -> std::string {
      if (!c.has_value()) return "-";
      std::string s = FormatSeconds(c->seconds);
      if (!c->exact) s += " (budget)";
      return s;
    };
    table.AddRow({FormatCount(row.data_size), cell(row.heuristic), cell(row.greedy),
                  cell(row.dnc)});
  }
  table.Print();
  std::printf("\nExpected shape (paper): heuristic viable only at the smallest\n");
  std::printf("size; greedy competitive when small, then overtaken by D&C whose\n");
  std::printf("advantage widens with data size.\n");
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
