// Copyright (c) PCQE contributors.
// Shared helpers for the figure/table reproduction harnesses.
//
// Every fig11_* binary prints the same series the corresponding panel of the
// paper's Figure 11 plots, as an aligned text table. Sizes honor the
// PCQE_BENCH_SCALE environment variable:
//   quick — smallest sweep, for smoke runs (~seconds);
//   paper — the default; laptop-scale version of the paper's sweep;
//   full  — the paper's full range (greedy at >=50K takes very long, as the
//           paper itself reports "hours").

#ifndef PCQE_BENCH_BENCH_COMMON_H_
#define PCQE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "strategy/solution.h"

namespace pcqe {
namespace bench {

enum class Scale { kQuick, kPaper, kFull };

inline Scale BenchScale() {
  const char* env = std::getenv("PCQE_BENCH_SCALE");
  if (env == nullptr) return Scale::kPaper;
  if (std::strcmp(env, "quick") == 0) return Scale::kQuick;
  if (std::strcmp(env, "full") == 0) return Scale::kFull;
  return Scale::kPaper;
}

inline const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return "quick";
    case Scale::kPaper:
      return "paper";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

/// Aligned table printer: collect rows, then Print().
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths;
    for (const auto& row : rows_) {
      if (widths.size() < row.size()) widths.resize(row.size(), 0);
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    for (size_t r = 0; r < rows_.size(); ++r) {
      for (size_t c = 0; c < rows_[r].size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), rows_[r][c].c_str());
      }
      std::printf("\n");
      if (r == 0) {
        for (size_t c = 0; c < widths.size(); ++c) {
          std::printf("%s  ", std::string(widths[c], '-').c_str());
        }
        std::printf("\n");
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FormatSeconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

inline std::string FormatCount(size_t n) {
  char buf[32];
  if (n >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10000) {
    std::snprintf(buf, sizeof(buf), "%.0fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", n);
  }
  return buf;
}

inline std::string FormatCost(double c) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", c);
  return buf;
}

/// One machine-readable search-effort line per bench variant, from the
/// solver's deterministic `SolverEffort` counters (lane-count independent,
/// so lines are comparable across machines and parallelism settings).
/// Zero-valued counters are skipped to keep the lines readable.
inline void EmitEffortLine(const char* bench, const char* variant,
                           const SolverEffort& effort) {
  std::string fields;
  for (const auto& [name, value] : effort.Items()) {
    if (value == 0) continue;
    if (!fields.empty()) fields += ',';
    fields += '"';
    fields += name;
    fields += "\":";
    fields += std::to_string(value);
  }
  std::printf("BENCH_EFFORT {\"bench\":\"%s\",\"variant\":\"%s\",%s}\n", bench,
              variant, fields.c_str());
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("scale=%s (set PCQE_BENCH_SCALE=quick|paper|full)\n",
              ScaleName(BenchScale()));
  std::printf("Table 4 defaults: delta=0.1, theta=50%%, beta=0.6\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace pcqe

#endif  // PCQE_BENCH_BENCH_COMMON_H_
