// Figure 11(e): one-phase vs two-phase greedy — minimum cost vs data size.
//
// Same sweep as Figure 11(b). The paper's finding: "after using the second
// phase, the minimum cost can be reduced by more than 30%".

#include <cstdio>

#include "bench_common.h"
#include "strategy/greedy.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

std::vector<size_t> Sizes(bench::Scale scale) {
  switch (scale) {
    case bench::Scale::kQuick:
      return {1000, 2000, 3000};
    case bench::Scale::kPaper:
      return {1000, 3000, 5000, 7000, 9000};
    case bench::Scale::kFull:
      return {1000, 3000, 5000, 7000, 9000, 10000};
  }
  return {};
}

int Run() {
  using namespace bench;
  PrintHeader("Figure 11(e)", "greedy one-phase vs two-phase: minimum cost");
  std::printf("workload: 5 base tuples/result, theta=50%%, beta=0.6, paper-literal\n"
              "gain (eq. 2) and full gain rescan per iteration\n\n");

  TablePrinter table({"data size", "one-phase cost", "two-phase cost", "reduction"});
  for (size_t k : Sizes(BenchScale())) {
    WorkloadParams params;
    params.num_base_tuples = k;
    params.bases_per_result = 5;
    params.seed = 42;
    Workload w = GenerateWorkload(params);
    auto problem = w.ToProblem();
    if (!problem.ok()) return 1;

    GreedyOptions paper;
    paper.gain_mode = GainMode::kRawAll;
    paper.lazy_gain_queue = false;

    GreedyOptions one_phase = paper;
    one_phase.two_phase = false;
    auto s1 = SolveGreedy(*problem, one_phase);
    if (!s1.ok()) return 1;
    auto s2 = SolveGreedy(*problem, paper);
    if (!s2.ok()) return 1;

    char reduction[32];
    std::snprintf(reduction, sizeof(reduction), "%.1f%%",
                  (1.0 - s2->total_cost / std::max(s1->total_cost, 1e-9)) * 100.0);
    table.AddRow({FormatCount(k), FormatCost(s1->total_cost), FormatCost(s2->total_cost),
                  reduction});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\nExpected shape (paper): the two-phase cost sits well below the\n");
  std::printf("one-phase cost at every size (paper: >30%% reduction).\n");
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
