// Copyright (c) PCQE contributors.
// Shared sweep for Figures 11(c) (response time) and 11(f) (minimum cost):
// heuristic vs greedy vs divide-and-conquer across data sizes.
//
// Paper setup (§5.3): data size 10–100K; base tuples per result = 5 below
// 5K and data_size/1000 from 10K up; θ = 50%, β = 0.6. The heuristic only
// handles tiny instances (the paper says "less than one hundred"); the
// paper's greedy becomes impractical ("takes hours") beyond 50K, so the
// default sweep caps the paper-literal greedy and lets D&C continue alone.
// Cells that a scale skips print "-".

#ifndef PCQE_BENCH_FIG11_OVERALL_H_
#define PCQE_BENCH_FIG11_OVERALL_H_

#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "workload/generator.h"

namespace pcqe {
namespace bench {

struct OverallCell {
  double seconds = 0.0;
  double cost = 0.0;
  bool exact = true;  ///< search completed (heuristic only)
};

struct OverallRow {
  size_t data_size = 0;
  std::optional<OverallCell> heuristic;
  std::optional<OverallCell> greedy;
  std::optional<OverallCell> dnc;
};

inline WorkloadParams OverallParams(size_t data_size) {
  WorkloadParams params;
  params.num_base_tuples = data_size;
  // Paper: 5 base tuples/result below 5K; data_size/1000 from 10K up.
  params.bases_per_result = data_size >= 10000 ? data_size / 1000 : 5;
  if (data_size <= 100) {
    params.bases_per_result = 5;
    params.num_results = std::max<size_t>(2, data_size / 2);
    params.or_group_size = 3;
  }
  params.seed = 42;
  return params;
}

inline int RunOverallSweep(std::vector<OverallRow>* rows) {
  Scale scale = BenchScale();
  std::vector<size_t> sizes;
  size_t greedy_cap, heuristic_cap;
  switch (scale) {
    case Scale::kQuick:
      sizes = {10, 1000, 5000};
      greedy_cap = 5000;
      heuristic_cap = 10;
      break;
    case Scale::kPaper:
      sizes = {10, 1000, 5000, 10000, 20000, 50000};
      greedy_cap = 10000;
      heuristic_cap = 10;
      break;
    case Scale::kFull:
      sizes = {10, 1000, 5000, 10000, 50000, 100000};
      greedy_cap = 50000;
      heuristic_cap = 50;
      break;
  }

  for (size_t data_size : sizes) {
    OverallRow row;
    row.data_size = data_size;
    Workload w = GenerateWorkload(OverallParams(data_size));
    auto problem = w.ToProblem();
    if (!problem.ok()) {
      std::fprintf(stderr, "workload %zu: %s\n", data_size,
                   problem.status().ToString().c_str());
      return 1;
    }

    if (data_size <= heuristic_cap) {
      // Paper-figure reproduction: all three solvers run single-lane (the
      // paper's algorithms are sequential). bench/micro_parallel.cc owns the
      // thread-count story.
      HeuristicOptions options;
      options.parallelism.threads = 1;
      options.max_seconds = 120.0;
      Stopwatch timer;
      auto s = SolveHeuristic(*problem, options);
      if (!s.ok()) return 1;
      row.heuristic = OverallCell{timer.ElapsedSeconds(), s->total_cost,
                                  s->search_complete};
      EmitEffortLine("fig11_overall",
                     ("heuristic_n" + std::to_string(data_size)).c_str(),
                     s->effort);
    }

    if (data_size <= greedy_cap) {
      GreedyOptions paper_greedy;
      paper_greedy.lazy_gain_queue = false;  // the paper's O(k*l1) procedure
      Stopwatch timer;
      auto s = SolveGreedy(*problem, paper_greedy);
      if (!s.ok()) return 1;
      row.greedy = OverallCell{timer.ElapsedSeconds(), s->total_cost, true};
      EmitEffortLine("fig11_overall",
                     ("greedy_n" + std::to_string(data_size)).c_str(), s->effort);
    }

    {
      DncOptions options;
      options.parallelism.threads = 1;
      options.greedy.lazy_gain_queue = false;  // same greedy inside groups
      Stopwatch timer;
      auto s = SolveDnc(*problem, options);
      if (!s.ok()) return 1;
      row.dnc = OverallCell{timer.ElapsedSeconds(), s->total_cost, true};
      EmitEffortLine("fig11_overall",
                     ("dnc_n" + std::to_string(data_size)).c_str(), s->effort);
    }
    rows->push_back(row);
    std::fprintf(stderr, "  [done %zu]\n", data_size);
  }
  return 0;
}

}  // namespace bench
}  // namespace pcqe

#endif  // PCQE_BENCH_FIG11_OVERALL_H_
