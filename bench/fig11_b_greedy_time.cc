// Figure 11(b): one-phase vs two-phase greedy — response time vs data size.
//
// Paper setup (§5.2): data size 1K–9K(10K), 5 base tuples per result,
// θ = 50%, β = 0.6. The paper's finding: "both versions of the greedy
// algorithm have similar response time", i.e. the second (reducing) phase
// adds negligible overhead. Gains use the paper's literal equation (2)
// (GainMode::kRawAll) and the paper's O(k) full rescan per iteration so the
// phase-2 saving and timing profile are comparable to the published plot.

#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "strategy/greedy.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

std::vector<size_t> Sizes(bench::Scale scale) {
  switch (scale) {
    case bench::Scale::kQuick:
      return {1000, 2000, 3000};
    case bench::Scale::kPaper:
      return {1000, 3000, 5000, 7000, 9000};
    case bench::Scale::kFull:
      return {1000, 3000, 5000, 7000, 9000, 10000};
  }
  return {};
}

int Run() {
  using namespace bench;
  PrintHeader("Figure 11(b)", "greedy one-phase vs two-phase: response time");
  std::printf("workload: 5 base tuples/result, theta=50%%, beta=0.6, paper-literal\n"
              "gain (eq. 2) and full gain rescan per iteration\n\n");

  TablePrinter table({"data size", "one-phase", "two-phase", "overhead"});
  for (size_t k : Sizes(BenchScale())) {
    WorkloadParams params;
    params.num_base_tuples = k;
    params.bases_per_result = 5;
    params.seed = 42;
    Workload w = GenerateWorkload(params);
    auto problem = w.ToProblem();
    if (!problem.ok()) return 1;

    GreedyOptions paper;
    paper.gain_mode = GainMode::kRawAll;
    paper.lazy_gain_queue = false;

    GreedyOptions one_phase = paper;
    one_phase.two_phase = false;
    Stopwatch timer;
    auto s1 = SolveGreedy(*problem, one_phase);
    if (!s1.ok()) return 1;
    double t1 = timer.ElapsedSeconds();

    timer.Restart();
    auto s2 = SolveGreedy(*problem, paper);
    if (!s2.ok()) return 1;
    double t2 = timer.ElapsedSeconds();

    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%+.1f%%",
                  (t2 / std::max(t1, 1e-9) - 1.0) * 100.0);
    table.AddRow({FormatCount(k), FormatSeconds(t1), FormatSeconds(t2), overhead});
    EmitEffortLine("fig11_b", ("two_phase_k" + std::to_string(k)).c_str(),
                   s2->effort);
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\nExpected shape (paper): the two curves overlap — phase 2's\n");
  std::printf("O(k log k) refinement is negligible next to phase 1's O(k*l1).\n");
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
