// Tables 1-3 and the §3.1 walk-through: the venture-capital running example,
// reproduced end-to-end through the engine.
//
// Prints the Proposal / CompanyInfo tables with confidences (Tables 1-2),
// the Candidate query result with its computed confidence (Table 3's
// tuple 38, p = 0.058), both policies P1/P2, the two increment alternatives
// the paper discusses (tuple 02 at cost 100 vs tuple 03 at cost 10), the
// engine's chosen strategy, and the post-improvement re-query.

#include <cstdio>

#include "bench_common.h"
#include "engine/pcqe_engine.h"

namespace pcqe {
namespace {

constexpr const char* kCandidateQuery =
    "SELECT ci.company, ci.income "
    "FROM (SELECT DISTINCT company FROM proposal WHERE funding < 1000000) AS c "
    "JOIN companyinfo AS ci ON c.company = ci.company";

int Run() {
  using namespace bench;
  PrintHeader("Tables 1-3 + §3.1", "the venture-capital running example, end to end");

  Catalog catalog;
  Table* proposal = *catalog.CreateTable(
      "Proposal", Schema({{"company", DataType::kString, ""},
                          {"proposal", DataType::kString, ""},
                          {"funding", DataType::kDouble, ""}}));
  (void)*proposal->Insert(
      {Value::String("AlphaTech"), Value::String("expansion"), Value::Double(2e6)}, 0.5);
  BaseTupleId id02 = *proposal->Insert(
      {Value::String("BlueSky"), Value::String("marketing"), Value::Double(8e5)}, 0.3,
      *MakeLinearCost(1000.0));
  BaseTupleId id03 = *proposal->Insert(
      {Value::String("BlueSky"), Value::String("research"), Value::Double(5e5)}, 0.4,
      *MakeLinearCost(100.0));
  Table* info = *catalog.CreateTable(
      "CompanyInfo",
      Schema({{"company", DataType::kString, ""}, {"income", DataType::kDouble, ""}}));
  (void)*info->Insert({Value::String("AlphaTech"), Value::Double(3e5)}, 0.8);
  BaseTupleId id13 = *info->Insert({Value::String("BlueSky"), Value::Double(1.2e5)}, 0.1,
                                   *MakeLinearCost(10000.0));

  std::printf("\nTable 1 (Proposal):\n");
  for (const Tuple& t : proposal->tuples()) std::printf("  %s\n", t.ToString().c_str());
  std::printf("Table 2 (CompanyInfo):\n");
  for (const Tuple& t : info->tuples()) std::printf("  %s\n", t.ToString().c_str());

  RoleGraph roles;
  (void)roles.AddRole("Secretary");
  (void)roles.AddRole("Manager");
  (void)roles.AddUser("sam");
  (void)roles.AddUser("mary");
  (void)roles.AssignRole("sam", "Secretary");
  (void)roles.AssignRole("mary", "Manager");
  PolicyStore policies;
  (void)policies.AddPolicy(roles, {"Secretary", "analysis", 0.05});
  (void)policies.AddPolicy(roles, {"Manager", "investment", 0.06});
  std::printf("\nPolicies:\n  P1 = %s\n  P2 = %s\n",
              policies.policies()[0].ToString().c_str(),
              policies.policies()[1].ToString().c_str());

  PcqeEngine engine(&catalog, std::move(roles), std::move(policies));

  // Table 3 / tuple 38: the Candidate query with its confidence.
  auto secretary = engine.Submit({kCandidateQuery, "sam", "analysis", 1.0});
  if (!secretary.ok()) {
    std::fprintf(stderr, "%s\n", secretary.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCandidate query (Table 3), intermediate result:\n%s",
              secretary->intermediate.ToTable().c_str());
  std::printf("Secretary under P1 (beta=0.05): %zu of %zu released (0.058 > 0.05)\n",
              secretary->released.size(), secretary->intermediate.rows.size());

  auto manager = engine.Submit({kCandidateQuery, "mary", "investment", 1.0});
  if (!manager.ok()) return 1;
  std::printf("Manager under P2 (beta=0.06): %zu of %zu released (0.058 < 0.06)\n",
              manager->released.size(), manager->intermediate.rows.size());

  // The two alternatives §3.1 weighs.
  const Tuple* t02 = *catalog.FindTuple(id02);
  const Tuple* t03 = *catalog.FindTuple(id03);
  (void)id13;
  std::printf("\nIncrement alternatives for the blocked result:\n");
  std::printf("  raise tuple 02: 0.3 -> 0.4 gives p38 = 0.064, cost %s\n",
              FormatCost(t02->cost_function()->Increment(0.3, 0.4)).c_str());
  std::printf("  raise tuple 03: 0.4 -> 0.5 gives p38 = 0.065, cost %s\n",
              FormatCost(t03->cost_function()->Increment(0.4, 0.5)).c_str());

  std::printf("\nStrategy-finding component proposes (%s, %.4fs):\n",
              manager->proposal.algorithm.c_str(), manager->proposal.solve_seconds);
  for (const IncrementAction& a : manager->proposal.actions) {
    std::printf("  tuple %llu: %.2f -> %.2f (cost %s)\n",
                static_cast<unsigned long long>(a.base_tuple), a.from, a.to,
                FormatCost(a.cost).c_str());
  }
  std::printf("  total cost: %s (paper's optimum: 10)\n",
              FormatCost(manager->proposal.total_cost).c_str());

  if (!engine.AcceptProposal(manager->proposal).ok()) return 1;
  auto after = engine.Submit({kCandidateQuery, "mary", "investment", 1.0});
  if (!after.ok()) return 1;
  std::printf("\nAfter improvement, manager re-query releases %zu row(s):\n%s",
              after->released.size(), after->ReleasedTable().c_str());
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
