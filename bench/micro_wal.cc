// Copyright (c) PCQE contributors.
// Durability bench: accept-transaction throughput through the WAL with
// per-commit fsync on and off, and cold-start recovery time (checkpoint
// load + replay) as the segment grows. The interesting numbers: the price
// of the paper-grade guarantee (sync on: every acknowledged accept survives
// any crash) versus buffered logging, and how recovery scales with the
// record count — replay must stay linear.
//
// Emits one machine-readable line per mode:
//   BENCH {"bench":"micro_wal","mode":"accept"|"recover",...}
// Unknown argv (e.g. --benchmark_min_time from scripts/check.sh smoke runs)
// is ignored; this is a plain binary, not a google-benchmark one.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "relational/catalog.h"
#include "storage/storage_manager.h"

namespace pcqe {
namespace bench {
namespace {

constexpr size_t kRows = 1000;  // checkpoint size, fixed across modes

std::vector<size_t> CommitCounts(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {1000, 5000};
    case Scale::kPaper:
      return {10000, 100000};
    case Scale::kFull:
      return {100000, 500000};
  }
  return {1000, 5000};
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<BaseTupleId> Populate(Catalog* catalog) {
  Table* table =
      *catalog->CreateTable("t", Schema({{"x", DataType::kDouble, ""}}));
  std::vector<BaseTupleId> ids;
  ids.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    ids.push_back(
        *table->Insert({Value::Double(static_cast<double>(i))}, 0.05));
  }
  return ids;
}

/// Logs `commits` single-action accept transactions (append [+ sync] then
/// apply), leaving the segment on disk for the recovery mode.
double RunAccepts(const std::string& dir, bool sync_each_commit,
                  size_t commits) {
  std::filesystem::remove_all(dir);
  Catalog catalog;
  std::vector<BaseTupleId> ids = Populate(&catalog);
  StorageManager storage;
  PCQE_CHECK(
      storage.Open({.dir = dir, .sync_each_commit = sync_each_commit}, &catalog)
          .ok());

  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < commits; ++i) {
    BaseTupleId id = ids[i % ids.size()];
    // Deterministic walk over (0, 1): replay-friendly and never at the
    // ceiling, so every write is a legal confidence.
    double to = 0.1 + 0.8 * static_cast<double>((i * 37) % 100) / 100.0;
    PCQE_CHECK(storage.LogAccept(catalog.confidence_version(),
                                 {{id, 0.0, to, 0.0}})
                   .ok());
    PCQE_CHECK(catalog.SetConfidence(id, to).ok());
  }
  double seconds = SecondsSince(start);

  StorageSnapshot snap = storage.snapshot();
  std::printf(
      "BENCH {\"bench\":\"micro_wal\",\"mode\":\"accept\",\"sync\":\"%s\","
      "\"commits\":%zu,\"seconds\":%.4f,\"accepts_per_sec\":%.1f,"
      "\"wal_bytes\":%llu}\n",
      sync_each_commit ? "on" : "off", commits, seconds,
      seconds > 0.0 ? static_cast<double>(commits) / seconds : 0.0,
      static_cast<unsigned long long>(snap.wal_bytes));
  return seconds;
  // ~StorageManager flushes the buffered tail (sync off), so the recovery
  // mode below replays every commit.
}

/// Cold start over the directory `RunAccepts` left behind: checkpoint load
/// plus full replay into a fresh catalog.
double RunRecovery(const std::string& dir, size_t commits) {
  Catalog catalog;
  StorageManager storage;
  auto start = std::chrono::steady_clock::now();
  PCQE_CHECK(storage.Open({.dir = dir}, &catalog).ok());
  double seconds = SecondsSince(start);

  StorageSnapshot snap = storage.snapshot();
  PCQE_CHECK(snap.recovered_records == commits + 1);  // + opening record
  std::printf(
      "BENCH {\"bench\":\"micro_wal\",\"mode\":\"recover\",\"records\":%llu,"
      "\"seconds\":%.4f,\"records_per_sec\":%.1f,\"recovered_version\":%llu}\n",
      static_cast<unsigned long long>(snap.recovered_records), seconds,
      seconds > 0.0 ? static_cast<double>(snap.recovered_records) / seconds
                    : 0.0,
      static_cast<unsigned long long>(snap.recovered_version));
  return seconds;
}

int Run() {
  Scale scale = BenchScale();
  std::vector<size_t> counts = CommitCounts(scale);
  std::string dir =
      (std::filesystem::temp_directory_path() / "pcqe_micro_wal").string();
  std::printf("micro_wal scale=%s rows=%zu dir=%s\n", ScaleName(scale), kRows,
              dir.c_str());

  TablePrinter table({"mode", "sync", "commits", "seconds", "per_sec"});
  auto add = [&table](const char* mode, const char* sync, size_t commits,
                      double seconds) {
    table.AddRow({mode, sync, StrFormat("%zu", commits),
                  StrFormat("%.4f", seconds),
                  StrFormat("%.1f", seconds > 0.0
                                        ? static_cast<double>(commits) / seconds
                                        : 0.0)});
  };

  // The paper-grade configuration first, at the smaller count (an fsync per
  // accept dominates; the point is the per-transaction floor, not volume).
  double s = RunAccepts(dir, /*sync_each_commit=*/true, counts[0]);
  add("accept", "on", counts[0], s);
  s = RunRecovery(dir, counts[0]);
  add("recover", "-", counts[0] + 1, s);

  // Buffered logging at both counts, each followed by its recovery.
  for (size_t commits : counts) {
    s = RunAccepts(dir, /*sync_each_commit=*/false, commits);
    add("accept", "off", commits, s);
    s = RunRecovery(dir, commits);
    add("recover", "-", commits + 1, s);
  }

  table.Print();
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pcqe

int main(int, char**) { return pcqe::bench::Run(); }
