// Extension experiment (not a paper figure): the §4 multi-query extension,
// quantified.
//
// The paper sketches extending the solvers to several queries issued "within
// a short time period": one search space over all distinct base tuples, with
// the constraint checked per query. This bench measures what that buys:
// the combined solve reuses base-tuple increments across queries, so its
// cost is at most — and typically well below — the sum of per-query solves
// whose improvements overlap.

#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

int Run() {
  using namespace bench;
  PrintHeader("Extension: multi-query",
              "combined strategy vs independent per-query strategies");
  std::printf("shared base population; per-query theta=50%%, beta=0.6; greedy\n"
              "(library default) on both sides\n\n");

  Scale scale = BenchScale();
  std::vector<std::pair<size_t, size_t>> cells;  // (base tuples, queries)
  if (scale == Scale::kQuick) {
    cells = {{200, 2}, {200, 4}};
  } else {
    cells = {{500, 2}, {500, 4}, {2000, 2}, {2000, 4}, {2000, 8}};
  }

  TablePrinter table({"base tuples", "queries", "combined cost", "sum separate",
                      "saving", "combined time"});
  for (const auto& [k, queries] : cells) {
    WorkloadParams params;
    params.num_base_tuples = k;
    params.bases_per_result = 5;
    params.num_results = k / 10;  // per query
    params.seed = 42;
    MultiQueryWorkload w = GenerateMultiQueryWorkload(params, queries);

    auto combined_problem = w.ToProblem();
    if (!combined_problem.ok()) return 1;
    Stopwatch timer;
    auto combined = SolveGreedy(*combined_problem);
    if (!combined.ok()) return 1;
    double combined_time = timer.ElapsedSeconds();
    if (!combined->feasible) std::fprintf(stderr, "warning: combined infeasible\n");

    // Independent solves: each query fixes its own deficit, oblivious to
    // the others. (Costs of shared tuples are double-counted exactly the
    // way two uncoordinated departments would pay twice.)
    double separate = 0.0;
    for (size_t q = 0; q < queries; ++q) {
      auto sub = w.ToSingleProblem(q);
      if (!sub.ok()) return 1;
      auto s = SolveGreedy(*sub);
      if (!s.ok()) return 1;
      separate += s->total_cost;
    }

    char saving[32];
    std::snprintf(saving, sizeof(saving), "%.1f%%",
                  (1.0 - combined->total_cost / std::max(separate, 1e-9)) * 100.0);
    table.AddRow({FormatCount(k), FormatCount(queries),
                  FormatCost(combined->total_cost), FormatCost(separate), saving,
                  FormatSeconds(combined_time)});
  }
  table.Print();
  std::printf("\nReading: the more queries share base data, the larger the saving\n");
  std::printf("from planning improvements jointly; with disjoint queries the two\n");
  std::printf("columns would coincide.\n");
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
