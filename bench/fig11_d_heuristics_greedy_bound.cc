// Figure 11(d): heuristic-algorithm response time by enabled heuristic,
// WITH the greedy solution priming the cost upper bound.
//
// Same instances as Figure 11(a); the minimum cost computed by the greedy
// algorithm seeds the branch-and-bound incumbent, which the paper reports
// improves every variant ("the upper bound provided by the greedy algorithm
// helps pruning the search space from the beginning").

#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

struct Variant {
  const char* name;
  HeuristicOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  HeuristicOptions none;
  // Single lane: same sequential-reproduction reasoning as Figure 11(a).
  none.parallelism.threads = 1;
  none.use_h1_ordering = none.use_h2 = none.use_h3 = none.use_h4 = false;
  variants.push_back({"Naive", none});
  for (int h = 0; h < 4; ++h) {
    HeuristicOptions one = none;
    if (h == 0) one.use_h1_ordering = true;
    if (h == 1) one.use_h2 = true;
    if (h == 2) one.use_h3 = true;
    if (h == 3) one.use_h4 = true;
    static const char* kNames[] = {"H1", "H2", "H3", "H4"};
    variants.push_back({kNames[h], one});
  }
  HeuristicOptions all;
  all.parallelism.threads = 1;
  variants.push_back({"All", all});
  return variants;
}

WorkloadParams InstanceParams(uint64_t seed) {
  WorkloadParams params;
  params.num_base_tuples = 10;
  params.num_results = 6;
  params.bases_per_result = 5;
  params.or_group_size = 3;
  params.theta = 0.5;
  params.seed = seed;
  return params;
}

int Run() {
  using namespace bench;
  PrintHeader("Figure 11(d)",
              "heuristic search: response time per heuristic, greedy bound primed");
  Scale scale = BenchScale();
  size_t num_seeds = scale == Scale::kQuick ? 2 : 5;
  std::printf("instance: as Figure 11(a); branch-and-bound seeded with the greedy "
              "cost; averaged over %zu seeds\n\n", num_seeds);

  TablePrinter table(
      {"variant", "time(avg)", "nodes(avg)", "cost(avg)", "vs no-bound"});
  for (const Variant& variant : Variants()) {
    double bounded_time = 0.0;
    double unbounded_time = 0.0;
    double total_cost = 0.0;
    size_t bounded_nodes = 0;
    SolverEffort effort;
    for (uint64_t seed = 1; seed <= num_seeds; ++seed) {
      Workload w = GenerateWorkload(InstanceParams(seed));
      auto problem = w.ToProblem();
      if (!problem.ok()) return 1;

      auto greedy = SolveGreedy(*problem);
      if (!greedy.ok()) return 1;

      HeuristicOptions unbounded_options = variant.options;
      unbounded_options.max_seconds = 300.0;
      Stopwatch timer;
      auto unbounded = SolveHeuristic(*problem, unbounded_options);
      if (!unbounded.ok()) return 1;
      unbounded_time += timer.ElapsedSeconds();

      HeuristicOptions bounded_options = unbounded_options;
      bounded_options.initial_upper_bound = greedy->total_cost;
      bounded_options.initial_assignment = greedy->new_confidence;
      timer.Restart();
      auto bounded = SolveHeuristic(*problem, bounded_options);
      if (!bounded.ok()) return 1;
      bounded_time += timer.ElapsedSeconds();
      total_cost += bounded->total_cost;
      bounded_nodes += bounded->nodes_explored;
      effort.MergeFrom(bounded->effort);
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  unbounded_time / std::max(bounded_time, 1e-9));
    table.AddRow({variant.name,
                  FormatSeconds(bounded_time / static_cast<double>(num_seeds)),
                  FormatCount(bounded_nodes / num_seeds),
                  FormatCost(total_cost / static_cast<double>(num_seeds)), ratio});
    EmitEffortLine("fig11_d", variant.name, effort);
  }
  table.Print();
  std::printf("\nExpected shape (paper): every variant at or below its Figure 11(a)\n");
  std::printf("time ('vs no-bound' >= 1x); the greedy bound is nearly optimal, so\n");
  std::printf("it prunes from the first node.\n");
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
