// Copyright (c) PCQE contributors.
// Service-layer throughput bench: the same policy-compliant workload pushed
// (a) straight through `PcqeEngine::Submit` on one thread, and (b) through
// `QueryService` with a worker pool and the shared confidence-result cache,
// cold and warm. The interesting number on any machine — and the only
// available one on a single-core box — is the warm-cache speedup: a hit
// skips parse/plan/scan/lineage entirely and re-runs only the per-subject
// policy filter.
//
// Emits one machine-readable line per mode:
//   BENCH {"bench":"micro_service","mode":...,"workers":...,"cache":...}
// Unknown argv (e.g. --benchmark_min_time from scripts/check.sh smoke runs)
// is ignored; this is a plain binary, not a google-benchmark one.

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "engine/pcqe_engine.h"
#include "service/query_service.h"

namespace pcqe {
namespace bench {
namespace {

struct Sizes {
  size_t rows;
  size_t requests;
};

Sizes SizesFor(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return {2000, 40};
    case Scale::kPaper:
      return {10000, 150};
    case Scale::kFull:
      return {40000, 400};
  }
  return {2000, 40};
}

/// `readings(site, value)` with random confidences; GROUP BY keeps the
/// result set (and thus the cost of copying a cache hit) small while every
/// evaluation still scans and lineage-tracks the whole table.
std::unique_ptr<Catalog> MakeCatalog(size_t rows) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(42);
  Table* readings = *catalog->CreateTable(
      "readings", Schema({{"site", DataType::kInt64, ""},
                          {"value", DataType::kDouble, ""}}));
  for (size_t i = 0; i < rows; ++i) {
    (void)*readings->Insert({Value::Int(rng.UniformInt(0, 15)),
                             Value::Double(rng.Uniform(0.0, 100.0))},
                            rng.Uniform(0.2, 0.95));
  }
  return catalog;
}

std::unique_ptr<PcqeEngine> MakeEngine(Catalog* catalog) {
  RoleGraph roles;
  PCQE_CHECK(roles.AddRole("Analyst").ok());
  PCQE_CHECK(roles.AddUser("analyst").ok());
  PCQE_CHECK(roles.AssignRole("analyst", "Analyst").ok());
  PolicyStore policies;
  PCQE_CHECK(policies.AddPolicy(roles, {"Analyst", "reporting", 0.01}).ok());
  return std::make_unique<PcqeEngine>(catalog, std::move(roles),
                                      std::move(policies));
}

constexpr const char* kQuery =
    "SELECT site, COUNT(*) AS n, AVG(value) AS mean FROM readings "
    "GROUP BY site ORDER BY site";

/// Distinct-text variant of kQuery for cold-cache runs: the changed constant
/// defeats normalization on purpose, so every request is a cache miss.
std::string ColdQuery(size_t i) {
  return StrFormat(
      "SELECT site, COUNT(*) AS n, AVG(value) AS mean FROM readings "
      "WHERE value >= %s GROUP BY site ORDER BY site",
      FormatDouble(-1.0 - static_cast<double>(i)).c_str());
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void EmitLine(const char* mode, size_t workers, const char* cache,
              size_t requests, double seconds, double hit_rate,
              double speedup) {
  std::string extras;
  if (hit_rate >= 0.0) {
    extras += StrFormat(",\"hit_rate\":%.3f", hit_rate);
  }
  if (speedup > 0.0) {
    extras += StrFormat(",\"speedup_vs_single_thread\":%.2f", speedup);
  }
  std::printf(
      "BENCH {\"bench\":\"micro_service\",\"mode\":\"%s\",\"workers\":%zu,"
      "\"cache\":\"%s\",\"requests\":%zu,\"seconds\":%.4f,\"qps\":%.1f%s}\n",
      mode, workers, cache, requests, seconds,
      seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0,
      extras.c_str());
}

/// One thread, no service, no cache: every request pays full evaluation.
double RunSingleThread(const PcqeEngine& engine, size_t requests) {
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests; ++i) {
    auto outcome = engine.Submit({kQuery, "analyst", "reporting", 0.0});
    PCQE_CHECK(outcome.ok());
  }
  double seconds = SecondsSince(start);
  EmitLine("single_thread", 1, "none", requests, seconds, -1.0, 0.0);
  return seconds;
}

/// Worker-pool run; `warm` reuses one query text, cold varies it per request.
double RunService(PcqeEngine* engine, TelemetryRegistry* registry, Tracer* tracer,
                  size_t workers, bool warm, size_t requests,
                  double single_thread_seconds) {
  ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = requests + 8;  // admit the whole batch up-front
  options.cache_capacity = requests + 8;
  options.registry = registry;  // one registry across all modes for the dump
  options.tracer = tracer;
  QueryService service(engine, options);
  SessionHandle session = *service.OpenSession("analyst", "reporting");

  auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<QueryOutcome>>> pending;
  pending.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    ServiceRequest request{warm ? std::string(kQuery) : ColdQuery(i),
                           /*required_fraction=*/0.0};
    pending.push_back(*service.SubmitAsync(session, std::move(request)));
  }
  for (auto& f : pending) {
    PCQE_CHECK(f.get().ok());
  }
  double seconds = SecondsSince(start);

  ServiceStatsSnapshot stats = service.stats();
  double speedup =
      seconds > 0.0 && single_thread_seconds > 0.0 && warm
          ? single_thread_seconds / seconds
          : 0.0;
  EmitLine("service", workers, warm ? "warm" : "cold", requests, seconds,
           stats.cache_hit_rate(), speedup);
  return seconds;
}

int Run() {
  Scale scale = BenchScale();
  Sizes sizes = SizesFor(scale);
  std::printf("micro_service (scale=%s): %zu rows, %zu requests per mode\n",
              ScaleName(scale), sizes.rows, sizes.requests);

  std::unique_ptr<Catalog> catalog = MakeCatalog(sizes.rows);
  std::unique_ptr<PcqeEngine> engine = MakeEngine(catalog.get());
  TelemetryRegistry registry;
  Tracer tracer(16);
  engine->AttachTelemetry(&registry, &tracer);

  double single = RunSingleThread(*engine, sizes.requests);
  (void)RunService(engine.get(), &registry, &tracer, 8, /*warm=*/false,
                   sizes.requests, single);
  double warm = RunService(engine.get(), &registry, &tracer, 8, /*warm=*/true,
                           sizes.requests, single);

  std::printf("warm-cache speedup vs single thread: %.2fx\n",
              warm > 0.0 ? single / warm : 0.0);
  // The full registry (engine + solver + service + cache counters) as one
  // machine-readable line, a post-mortem companion to the BENCH lines.
  std::printf("BENCH_METRICS %s\n", registry.RenderJson().c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pcqe

int main(int argc, char** argv) {
  // Smoke harnesses pass google-benchmark flags to every micro_* binary;
  // this one has no use for them.
  (void)argc;
  (void)argv;
  return pcqe::bench::Run();
}
