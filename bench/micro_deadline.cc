// Copyright (c) PCQE contributors.
// Deadline-vs-cost sweep for the anytime solver paths: each solver on a
// fixed instance under shrinking wall-clock budgets. The curve of interest
// is plan cost as a function of the deadline — an anytime solver should
// degrade gracefully (cost drifts up toward the greedy bound as the budget
// shrinks) while staying feasible, never erroring.
//
// The heuristic rows mirror the engine's pressure path: the search is primed
// with a greedy incumbent (upper bound + assignment), so an expiring deadline
// falls back to a feasible plan instead of an empty one. The D&C rows get
// the same guarantee from SolveDnc itself: under a finite deadline it runs
// a deadline-bounded greedy primer and falls back to that incumbent when
// the budget kills the fill mid-raise, so the `feasible` column should stay
// true down to the tightest budgets (it records the actual verdict either
// way; a primer that itself ran out of time leaves an infeasible partial).
//
// Emits one machine-readable line per (solver, deadline) cell:
//   BENCH {"bench":"micro_deadline","solver":...,"deadline_ms":...,
//          "seconds":...,"cost":...,"feasible":...,"partial":...}
// deadline_ms = 0 encodes "no deadline" (the complete-solve reference row).
//
// Recorded baselines live in bench/baselines/ — see the README there for the
// recording protocol.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/deadline.h"
#include "common/stopwatch.h"
#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "workload/generator.h"

namespace pcqe {
namespace bench {
namespace {

void EmitLine(const char* solver, int64_t deadline_ms, double seconds,
              const IncrementSolution& s) {
  std::printf(
      "BENCH {\"bench\":\"micro_deadline\",\"solver\":\"%s\","
      "\"deadline_ms\":%lld,\"seconds\":%.4f,\"cost\":%.6f,"
      "\"feasible\":%s,\"partial\":%s}\n",
      solver, static_cast<long long>(deadline_ms), seconds, s.total_cost,
      s.feasible ? "true" : "false", s.partial ? "true" : "false");
}

void AddRow(TablePrinter* table, const char* solver, int64_t deadline_ms,
            double seconds, const IncrementSolution& s) {
  table->AddRow({solver,
                 deadline_ms == 0 ? std::string("none")
                                  : std::to_string(deadline_ms) + "ms",
                 FormatSeconds(seconds), FormatCost(s.total_cost),
                 s.feasible ? "yes" : "no", s.partial ? "yes" : "no"});
}

/// Figure-11(a) shape scaled up so the exact search needs ~100ms even with
/// the greedy bound: the tighter budgets exercise the anytime fallback, the
/// loosest ones complete and prove the greedy plan near-optimal.
WorkloadParams HeuristicParams() {
  WorkloadParams params;
  params.num_base_tuples = 14;
  params.num_results = 8;
  params.bases_per_result = 5;
  params.or_group_size = 3;
  params.theta = 0.5;
  params.seed = 1;
  return params;
}

int SweepHeuristic(const std::vector<int64_t>& deadlines_ms,
                   TablePrinter* table) {
  Workload w = GenerateWorkload(HeuristicParams());
  auto problem = w.ToProblem();
  if (!problem.ok()) return 1;

  auto greedy = SolveGreedy(*problem);
  if (!greedy.ok() || !greedy->feasible) {
    std::fprintf(stderr, "greedy primer failed\n");
    return 1;
  }

  for (int64_t deadline_ms : deadlines_ms) {
    if (deadline_ms == 0) continue;  // un-deadlined B&B here runs for hours
    HeuristicOptions options;
    options.parallelism.threads = 1;
    options.deadline = Deadline::AfterMillis(deadline_ms);
    options.initial_upper_bound = greedy->total_cost;
    options.initial_assignment = greedy->new_confidence;
    Stopwatch timer;
    auto s = SolveHeuristic(*problem, options);
    if (!s.ok()) {
      std::fprintf(stderr, "heuristic error: %s\n",
                   s.status().ToString().c_str());
      return 1;
    }
    double seconds = timer.ElapsedSeconds();
    EmitLine("heuristic+greedy-bound", deadline_ms, seconds, *s);
    AddRow(table, "heuristic+greedy-bound", deadline_ms, seconds, *s);
  }
  return 0;
}

int SweepDnc(size_t data_size, const std::vector<int64_t>& deadlines_ms,
             TablePrinter* table) {
  WorkloadParams params;
  params.num_base_tuples = data_size;
  params.bases_per_result = data_size >= 10000 ? data_size / 1000 : 5;
  params.seed = 42;
  Workload w = GenerateWorkload(params);
  auto problem = w.ToProblem();
  if (!problem.ok()) {
    std::fprintf(stderr, "workload %zu: %s\n", data_size,
                 problem.status().ToString().c_str());
    return 1;
  }

  for (int64_t deadline_ms : deadlines_ms) {
    DncOptions options;
    options.parallelism.threads = 1;
    if (deadline_ms > 0) options.deadline = Deadline::AfterMillis(deadline_ms);
    Stopwatch timer;
    auto s = SolveDnc(*problem, options);
    if (!s.ok()) {
      std::fprintf(stderr, "dnc error: %s\n", s.status().ToString().c_str());
      return 1;
    }
    double seconds = timer.ElapsedSeconds();
    EmitLine("dnc", deadline_ms, seconds, *s);
    AddRow(table, "dnc", deadline_ms, seconds, *s);
  }
  return 0;
}

int Run() {
  Scale scale = BenchScale();
  std::printf("micro_deadline (scale=%s): anytime cost vs deadline\n",
              ScaleName(scale));
  std::printf(
      "note: deadline 'none' is the complete solve; cost should fall toward "
      "it as the budget grows.\n\n");

  // 0 = no deadline (reference row, D&C only).
  std::vector<int64_t> deadlines = {1, 5, 10, 25, 50, 100, 250, 0};
  size_t dnc_size = 10000;
  if (scale == Scale::kQuick) {
    deadlines = {1, 10, 50, 0};
    dnc_size = 2000;
  }

  TablePrinter table(
      {"solver", "deadline", "time", "cost", "feasible", "partial"});
  if (int rc = SweepDnc(dnc_size, deadlines, &table)) return rc;
  if (int rc = SweepHeuristic(deadlines, &table)) return rc;
  table.Print();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pcqe

int main() { return pcqe::bench::Run(); }
