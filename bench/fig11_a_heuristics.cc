// Figure 11(a): heuristic-algorithm response time by enabled heuristic,
// WITHOUT a greedy initial upper bound.
//
// Paper setup (§5.2): "a small dataset with 10 base tuples. Each query
// requires at least three results with a confidence value above 0.6 and each
// result is linked to 5 base tuples." Variants: Naive (incumbent-cost bound
// only), H1 (costβ ordering), H2, H3, H4, All. The paper reports every
// single heuristic beating Naive and All improving by a factor of ~60.

#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "strategy/heuristic.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

struct Variant {
  const char* name;
  HeuristicOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  HeuristicOptions none;
  // Single lane throughout: the figure reproduces the paper's sequential
  // search, and node counts are only comparable across variants that way.
  none.parallelism.threads = 1;
  none.use_h1_ordering = none.use_h2 = none.use_h3 = none.use_h4 = false;
  variants.push_back({"Naive", none});
  for (int h = 0; h < 4; ++h) {
    HeuristicOptions one = none;
    if (h == 0) one.use_h1_ordering = true;
    if (h == 1) one.use_h2 = true;
    if (h == 2) one.use_h3 = true;
    if (h == 3) one.use_h4 = true;
    static const char* kNames[] = {"H1", "H2", "H3", "H4"};
    variants.push_back({kNames[h], one});
  }
  HeuristicOptions all;
  all.parallelism.threads = 1;
  variants.push_back({"All", all});
  return variants;
}

WorkloadParams InstanceParams(uint64_t seed) {
  WorkloadParams params;
  params.num_base_tuples = 10;
  params.num_results = 6;
  params.bases_per_result = 5;
  params.or_group_size = 3;
  params.theta = 0.5;  // >= 3 of 6 results
  params.seed = seed;
  return params;
}

int Run() {
  using namespace bench;
  PrintHeader("Figure 11(a)",
              "heuristic search: response time per enabled heuristic, no greedy bound");
  Scale scale = BenchScale();
  size_t num_seeds = scale == Scale::kQuick ? 2 : 5;
  std::printf("instance: 10 base tuples, 6 results x 5 base tuples each, "
              ">=3 results above beta; averaged over %zu seeds\n\n", num_seeds);

  TablePrinter table({"variant", "time(avg)", "nodes(avg)", "cost(avg)", "vs Naive"});
  double naive_time = 0.0;
  for (const Variant& variant : Variants()) {
    double total_time = 0.0;
    double total_cost = 0.0;
    size_t total_nodes = 0;
    SolverEffort effort;
    for (uint64_t seed = 1; seed <= num_seeds; ++seed) {
      Workload w = GenerateWorkload(InstanceParams(seed));
      auto problem = w.ToProblem();
      if (!problem.ok()) {
        std::fprintf(stderr, "workload error: %s\n", problem.status().ToString().c_str());
        return 1;
      }
      HeuristicOptions options = variant.options;
      options.max_seconds = 300.0;
      Stopwatch timer;
      auto solution = SolveHeuristic(*problem, options);
      if (!solution.ok()) {
        std::fprintf(stderr, "solver error: %s\n", solution.status().ToString().c_str());
        return 1;
      }
      total_time += timer.ElapsedSeconds();
      total_cost += solution->total_cost;
      total_nodes += solution->nodes_explored;
      effort.MergeFrom(solution->effort);
      if (!solution->feasible) std::fprintf(stderr, "warning: infeasible seed %llu\n",
                                            static_cast<unsigned long long>(seed));
    }
    double avg_time = total_time / static_cast<double>(num_seeds);
    if (std::string(variant.name) == "Naive") naive_time = avg_time;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", naive_time / std::max(avg_time, 1e-9));
    table.AddRow({variant.name, FormatSeconds(avg_time),
                  FormatCount(total_nodes / num_seeds),
                  FormatCost(total_cost / static_cast<double>(num_seeds)), speedup});
    EmitEffortLine("fig11_a", variant.name, effort);
  }
  table.Print();
  std::printf("\nExpected shape (paper): every heuristic beats Naive; All is fastest\n");
  std::printf("(paper reports ~60x for All); identical cost in every row (all\n");
  std::printf("variants are exact searches).\n");
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
