// Figure 11(f): overall minimum cost — heuristic vs greedy vs D&C as data
// size grows.
//
// The paper's shape: cost rises with data size (more results to fix); the
// heuristic (exhaustive) is optimal where it runs; greedy and D&C track
// each other closely, slightly above the optimum.

#include <cstdio>

#include "fig11_overall.h"

namespace pcqe {
namespace {

int Run() {
  using namespace bench;
  PrintHeader("Figure 11(f)", "overall minimum cost: heuristic vs greedy vs D&C");
  std::printf("same sweep as Figure 11(c); '-' = skipped at this scale\n\n");

  std::vector<OverallRow> rows;
  int rc = RunOverallSweep(&rows);
  if (rc != 0) return rc;

  TablePrinter table({"data size", "heuristic", "greedy", "dnc", "dnc/greedy"});
  for (const OverallRow& row : rows) {
    auto cell = [](const std::optional<OverallCell>& c) -> std::string {
      return c.has_value() ? FormatCost(c->cost) : "-";
    };
    std::string ratio = "-";
    if (row.greedy.has_value() && row.dnc.has_value() && row.greedy->cost > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", row.dnc->cost / row.greedy->cost);
      ratio = buf;
    }
    table.AddRow({FormatCount(row.data_size), cell(row.heuristic), cell(row.greedy),
                  cell(row.dnc), ratio});
  }
  table.Print();
  std::printf("\nExpected shape (paper): cost grows with data size; the heuristic\n");
  std::printf("is optimal where present; greedy and D&C are very similar\n");
  std::printf("(dnc/greedy ratio near 1.0), slightly above the optimum.\n");
  return 0;
}

}  // namespace
}  // namespace pcqe

int main() { return pcqe::Run(); }
