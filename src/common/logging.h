// Copyright (c) PCQE contributors.
// Minimal leveled logging and CHECK macros (Arrow DCHECK style).

#ifndef PCQE_COMMON_LOGGING_H_
#define PCQE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pcqe {

/// \brief Severity levels for the library logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Process-wide log configuration.
///
/// The library is quiet by default (`kWarning`); benches and examples raise
/// verbosity explicitly.
class LogConfig {
 public:
  static LogLevel threshold() { return threshold_; }
  static void set_threshold(LogLevel level) { threshold_ = level; }

 private:
  static inline LogLevel threshold_ = LogLevel::kWarning;
};

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    if (level_ >= LogConfig::threshold()) {
      std::cerr << stream_.str() << std::endl;
    }
    if (level_ == LogLevel::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
      case LogLevel::kFatal:
        return "FATAL";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pcqe

#define PCQE_LOG(level) \
  ::pcqe::internal::LogMessage(::pcqe::LogLevel::k##level, __FILE__, __LINE__).stream()

/// Aborts with a message when `condition` is false. Used for internal
/// invariants that indicate bugs, never for validating caller input (caller
/// input errors return `Status::InvalidArgument`).
#define PCQE_CHECK(condition)                                           \
  if (!(condition))                                                     \
  ::pcqe::internal::LogMessage(::pcqe::LogLevel::kFatal, __FILE__, __LINE__).stream() \
      << "Check failed: " #condition " "

#ifdef NDEBUG
#define PCQE_DCHECK(condition) \
  if (false) PCQE_CHECK(condition)
#else
#define PCQE_DCHECK(condition) PCQE_CHECK(condition)
#endif

#endif  // PCQE_COMMON_LOGGING_H_
