// Copyright (c) PCQE contributors.
// Minimal leveled logging and CHECK macros (Arrow DCHECK style).

#ifndef PCQE_COMMON_LOGGING_H_
#define PCQE_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"

namespace pcqe {

/// \brief Severity levels for the library logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Short uppercase name of a level ("WARN", "ERROR", ...).
inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

/// \brief Destination for emitted log lines.
///
/// Implementations must be thread-safe: `Write` is called concurrently from
/// any thread that logs. `file` is the source basename, `message` the
/// already-formatted body (no trailing newline).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, const char* file, int line,
                     const std::string& message) = 0;
};

/// The default sink: one `[LEVEL file:line] message` line to stderr.
class StderrLogSink : public LogSink {
 public:
  void Write(LogLevel level, const char* file, int line,
             const std::string& message) override {
    std::ostringstream out;
    out << "[" << LogLevelName(level) << " " << file << ":" << line << "] " << message
        << '\n';
    std::cerr << out.str();
  }
};

/// \brief Test helper: records every emitted line under a lock.
class CapturingLogSink : public LogSink {
 public:
  struct Record {
    LogLevel level;
    std::string file;
    int line;
    std::string message;
  };

  void Write(LogLevel level, const char* file, int line,
             const std::string& message) override {
    MutexLock lock(mu_);
    records_.push_back({level, file, line, message});
  }

  std::vector<Record> records() const {
    MutexLock lock(mu_);
    return records_;
  }

  /// Whether any captured message contains `needle`.
  bool Contains(const std::string& needle) const {
    MutexLock lock(mu_);
    for (const Record& r : records_) {
      if (r.message.find(needle) != std::string::npos) return true;
    }
    return false;
  }

 private:
  mutable Mutex mu_;
  std::vector<Record> records_ PCQE_GUARDED_BY(mu_);
};

/// \brief Process-wide log configuration.
///
/// The library is quiet by default (`kWarning`); benches and examples raise
/// verbosity explicitly. The sink is pluggable: `set_sink` installs a
/// caller-owned sink (which must outlive its installation) and returns the
/// previous one (nullptr meaning the built-in stderr sink), so tests can
/// capture warnings and restore the default afterwards.
class LogConfig {
 public:
  static LogLevel threshold() { return threshold_.load(std::memory_order_relaxed); }
  static void set_threshold(LogLevel level) {
    threshold_.store(level, std::memory_order_relaxed);
  }

  /// Installs `sink` (nullptr restores the stderr default) and returns the
  /// previously installed sink (nullptr if it was the default).
  static LogSink* set_sink(LogSink* sink) {
    return sink_.exchange(sink, std::memory_order_acq_rel);
  }

  /// The active sink; never null.
  static LogSink& sink() {
    LogSink* s = sink_.load(std::memory_order_acquire);
    return s != nullptr ? *s : DefaultSink();
  }

 private:
  static StderrLogSink& DefaultSink() {
    static StderrLogSink default_sink;
    return default_sink;
  }

  static inline std::atomic<LogLevel> threshold_{LogLevel::kWarning};
  static inline std::atomic<LogSink*> sink_{nullptr};
};

namespace internal {

/// Accumulates one log line and hands it to the active sink on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(Basename(file)), line_(line) {}

  ~LogMessage() {
    if (level_ >= LogConfig::threshold()) {
      LogConfig::sink().Write(level_, file_, line_, stream_.str());
    }
    if (level_ == LogLevel::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pcqe

#define PCQE_LOG(level) \
  ::pcqe::internal::LogMessage(::pcqe::LogLevel::k##level, __FILE__, __LINE__).stream()

/// Aborts with a message when `condition` is false. Used for internal
/// invariants that indicate bugs, never for validating caller input (caller
/// input errors return `Status::InvalidArgument`).
#define PCQE_CHECK(condition)                                           \
  if (!(condition))                                                     \
  ::pcqe::internal::LogMessage(::pcqe::LogLevel::kFatal, __FILE__, __LINE__).stream() \
      << "Check failed: " #condition " "

#ifdef NDEBUG
#define PCQE_DCHECK(condition) \
  if (false) PCQE_CHECK(condition)
#else
#define PCQE_DCHECK(condition) PCQE_CHECK(condition)
#endif

#endif  // PCQE_COMMON_LOGGING_H_
