// Capability-annotated locking primitives for Clang Thread Safety Analysis.
//
// All locking in src/ goes through the wrappers below (enforced by the
// `raw-mutex` lint rule): `pcqe::Mutex`, `pcqe::SharedMutex`, and the RAII
// guards `MutexLock`, `ReaderLock`, `WriterLock`. Fields protected by a lock
// are annotated `PCQE_GUARDED_BY(mu_)`; helpers that assume a lock is already
// held are annotated `PCQE_REQUIRES(mu_)` / `PCQE_REQUIRES_SHARED(mu_)`.
// Under clang the annotations compile to thread-safety attributes and the
// `-Wthread-safety -Wthread-safety-beta -Werror` leg in scripts/analyze.sh
// turns lock-discipline violations into build errors; under GCC/MSVC every
// macro expands to nothing and the wrappers are zero-cost veneers over the
// standard mutexes, so runtime behavior is identical on every toolchain.
//
// What the analysis proves (and what it does not) is documented in
// DESIGN.md §11 "Static analysis architecture".

#ifndef PCQE_COMMON_ANNOTATIONS_H_
#define PCQE_COMMON_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PCQE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PCQE_THREAD_ANNOTATION
#define PCQE_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

#define PCQE_CAPABILITY(x) PCQE_THREAD_ANNOTATION(capability(x))
#define PCQE_SCOPED_CAPABILITY PCQE_THREAD_ANNOTATION(scoped_lockable)
#define PCQE_GUARDED_BY(x) PCQE_THREAD_ANNOTATION(guarded_by(x))
#define PCQE_PT_GUARDED_BY(x) PCQE_THREAD_ANNOTATION(pt_guarded_by(x))
#define PCQE_REQUIRES(...) \
  PCQE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PCQE_REQUIRES_SHARED(...) \
  PCQE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define PCQE_ACQUIRE(...) \
  PCQE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PCQE_ACQUIRE_SHARED(...) \
  PCQE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PCQE_RELEASE(...) \
  PCQE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PCQE_RELEASE_SHARED(...) \
  PCQE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PCQE_RELEASE_GENERIC(...) \
  PCQE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define PCQE_TRY_ACQUIRE(...) \
  PCQE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PCQE_EXCLUDES(...) PCQE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PCQE_RETURN_CAPABILITY(x) PCQE_THREAD_ANNOTATION(lock_returned(x))
#define PCQE_NO_THREAD_SAFETY_ANALYSIS \
  PCQE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pcqe {

// Exclusive mutex carrying the `capability` attribute so the analyzer can
// track which code paths hold it. Use through `MutexLock` (or
// `std::condition_variable_any::wait` on an existing `MutexLock`).
class PCQE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PCQE_ACQUIRE() { mu_.lock(); }      // pcqe-lint: allow(concurrency)
  void Unlock() PCQE_RELEASE() { mu_.unlock(); }  // pcqe-lint: allow(concurrency)
  bool TryLock() PCQE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Reader–writer mutex; writers use `WriterLock`, readers `ReaderLock`.
class PCQE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PCQE_ACQUIRE() { mu_.lock(); }      // pcqe-lint: allow(concurrency)
  void Unlock() PCQE_RELEASE() { mu_.unlock(); }  // pcqe-lint: allow(concurrency)
  void LockShared() PCQE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() PCQE_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive guard over `Mutex`. Also satisfies BasicLockable
// (`lock()`/`unlock()`) so it can be handed to
// `std::condition_variable_any::wait`, which releases and re-acquires the
// lock internally — those transitions are invisible to the analysis, hence
// the PCQE_NO_THREAD_SAFETY_ANALYSIS on the lowercase methods.
class PCQE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PCQE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PCQE_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for std::condition_variable_any only; do not call
  // directly — wait() leaves the lock held on return, matching the scope.
  void lock() PCQE_NO_THREAD_SAFETY_ANALYSIS { mu_.Lock(); }
  void unlock() PCQE_NO_THREAD_SAFETY_ANALYSIS { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

// RAII shared (reader) guard over `SharedMutex`.
class PCQE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) PCQE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  // Scoped guards release whichever mode they hold; the analyzer models the
  // destructor as a generic release so shared acquisition type-checks.
  ~ReaderLock() PCQE_RELEASE_GENERIC() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII exclusive (writer) guard over `SharedMutex`.
class PCQE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) PCQE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() PCQE_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace pcqe

#endif  // PCQE_COMMON_ANNOTATIONS_H_
