// Copyright (c) PCQE contributors.
// Deterministic random-number utilities shared by the workload generator,
// benches and property tests.

#ifndef PCQE_COMMON_RANDOM_H_
#define PCQE_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pcqe {

/// \brief Seedable pseudo-random generator with convenience distributions.
///
/// Wraps `std::mt19937_64` so every experiment in this repository is
/// reproducible from a single integer seed. Not thread-safe; create one per
/// thread.
class Rng {
 public:
  /// Constructs a generator from an explicit seed (default chosen so
  /// zero-config runs are still deterministic).
  explicit Rng(uint64_t seed = 0x5DEECE66DULL) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Gaussian clamped into [lo, hi]; used for "confidence around 0.1".
  double ClampedGaussian(double mean, double stddev, double lo, double hi);

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// A uniformly random subset of size `k` drawn without replacement from
  /// {0, ..., n-1}. Requires 0 <= k <= n.
  std::vector<size_t> Sample(size_t n, size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1))]);
    }
  }

  /// Underlying engine, for interoperating with `<random>` distributions.
  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace pcqe

#endif  // PCQE_COMMON_RANDOM_H_
