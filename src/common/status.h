// Copyright (c) PCQE contributors.
// Status: RocksDB/Arrow-style error propagation without exceptions.

#ifndef PCQE_COMMON_STATUS_H_
#define PCQE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace pcqe {

/// \brief Machine-readable category of a `Status`.
///
/// The set is deliberately small: callers branch on a handful of recoverable
/// conditions (e.g. `kNotFound`, `kInfeasible`) and treat the rest as
/// programmer or input errors to surface verbatim.
enum class StatusCode : int {
  kOk = 0,
  /// A lookup (table, column, policy, tuple, ...) found nothing.
  kNotFound = 1,
  /// Caller-supplied argument violates the API contract.
  kInvalidArgument = 2,
  /// An entity being created already exists (e.g. duplicate table name).
  kAlreadyExists = 3,
  /// The request is well-formed but cannot be satisfied, e.g. a confidence
  /// increment problem whose target is unreachable even at confidence 1.
  kInfeasible = 4,
  /// SQL text failed to lex/parse.
  kParseError = 5,
  /// SQL parsed but does not bind against the catalog (unknown column,
  /// type mismatch, ...).
  kBindError = 6,
  /// The subject is not allowed to perform the operation (RBAC denial, as
  /// opposed to confidence-policy filtering which is not an error).
  kPermissionDenied = 7,
  /// A resource or search budget was exhausted before completion.
  kResourceExhausted = 8,
  /// Internal invariant violated; indicates a bug in this library.
  kInternal = 9,
  /// Feature is recognized but not implemented.
  kNotImplemented = 10,
};

/// \brief Returns the canonical lowercase name of a status code
/// (e.g. "invalid_argument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus a human-readable message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries an
/// explanatory message otherwise. All fallible public APIs in this library
/// return `Status` or `Result<T>`; exceptions are not used across API
/// boundaries.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A `kOk` code
  /// ignores the message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  /// \name Factory helpers, one per code.
  /// @{
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  /// @}

  /// True iff the status code is `kOk`.
  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  [[nodiscard]] StatusCode code() const { return code_; }
  /// The message; empty for OK statuses.
  [[nodiscard]] const std::string& message() const { return message_; }

  /// \name Code predicates mirroring the factories.
  /// @{
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInfeasible() const { return code_ == StatusCode::kInfeasible; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsBindError() const { return code_ == StatusCode::kBindError; }
  bool IsPermissionDenied() const { return code_ == StatusCode::kPermissionDenied; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code_ == StatusCode::kNotImplemented; }
  /// @}

  /// "OK" or "<code>: <message>".
  [[nodiscard]] std::string ToString() const;

  /// Prepends `context` to the message of a non-OK status; identity on OK.
  [[nodiscard]] Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace pcqe

/// Propagates a non-OK `Status` from the current function.
#define PCQE_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::pcqe::Status _pcqe_status = (expr);         \
    if (!_pcqe_status.ok()) return _pcqe_status;  \
  } while (false)

#define PCQE_CONCAT_IMPL(a, b) a##b
#define PCQE_CONCAT(a, b) PCQE_CONCAT_IMPL(a, b)

/// Evaluates a `Result<T>` expression; on error propagates the status,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define PCQE_ASSIGN_OR_RETURN(lhs, expr)                               \
  PCQE_ASSIGN_OR_RETURN_IMPL(PCQE_CONCAT(_pcqe_result_, __LINE__), lhs, expr)

#define PCQE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#endif  // PCQE_COMMON_STATUS_H_
