// Copyright (c) PCQE contributors.
// Deterministic fault injection: named probe points on failure-prone paths
// (solver loops, the result cache, the catalog accept path, the service
// worker pool) that tests can arm to force an error — or a synthetic
// deadline expiry — at an exact, replayable probe index.

#ifndef PCQE_COMMON_FAULT_INJECTION_H_
#define PCQE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"

namespace pcqe {

/// \brief Compile-time registry of probe-site names.
///
/// Every `PCQE_INJECT_FAULT` / `SolveControl` probe point in the codebase
/// uses one of these constants, and `FaultInjector::KnownSites()` enumerates
/// them so tests can assert each site is reachable. Sites ending in
/// `.deadline` are consulted by `SolveControl` as synthetic budget expiries;
/// the rest return an injected `Status` from the enclosing function.
namespace fault_sites {
inline constexpr const char* kHeuristicWave = "strategy.heuristic.wave";
inline constexpr const char* kHeuristicDeadline = "strategy.heuristic.deadline";
inline constexpr const char* kGreedySolve = "strategy.greedy.solve";
inline constexpr const char* kGreedyDeadline = "strategy.greedy.deadline";
inline constexpr const char* kDncGroup = "strategy.dnc.group";
inline constexpr const char* kDncDeadline = "strategy.dnc.deadline";
inline constexpr const char* kEngineEvaluate = "engine.evaluate";
inline constexpr const char* kCatalogAccept = "engine.catalog.accept";
inline constexpr const char* kCacheLookup = "service.cache.lookup";
inline constexpr const char* kAdmission = "service.admission";
inline constexpr const char* kWorkerProcess = "service.worker.process";
/// Durability crash points (src/storage/): each one is probed at the exact
/// boundary a real crash would hit, so the recovery tests can arm a site,
/// "crash" (drop the in-memory state) and assert replay reconstructs the
/// committed state bit-for-bit. kWalAppend fires before the commit record
/// is buffered; kWalSync before it reaches disk — both roll the accept
/// back. kCheckpoint / kManifest interrupt checkpointing before the new
/// manifest is published; kRecoveryReplay interrupts startup replay.
/// Confidence-index rebuild (src/query/confidence_index.cc): fires inside
/// the lazy zone-map rebuild, before the new map is installed, so tests can
/// assert a failed rebuild never publishes a partial index and the planner
/// degrades to row-exact pruning.
inline constexpr const char* kIndexRebuild = "query.index_rebuild";
inline constexpr const char* kWalAppend = "storage.wal_append";
inline constexpr const char* kWalSync = "storage.wal_sync";
inline constexpr const char* kCheckpoint = "storage.checkpoint";
inline constexpr const char* kManifest = "storage.manifest";
inline constexpr const char* kRecoveryReplay = "storage.recovery.replay";
}  // namespace fault_sites

/// \brief Process-wide, deterministic fault injector.
///
/// Disarmed (the default, and the only production state) every probe is a
/// single relaxed atomic load. Tests `Arm()` a site with a `SiteConfig`
/// describing *which* probe indices fire; firing is a pure function of
/// (site, probe index, seed), so a failing run replays exactly.
///
/// Thread-safe: probes may arrive concurrently from solver lanes and
/// service workers. The injector never calls back into the rest of the
/// library, so holding any library lock across a probe cannot deadlock.
class FaultInjector {
 public:
  /// How an armed site decides whether a given probe fires.
  struct SiteConfig {
    /// Probes to let pass before the site starts firing (0 = immediately).
    uint64_t fire_after = 0;
    /// Number of firing probes once triggered; UINT64_MAX = until disarmed.
    uint64_t fire_count = UINT64_MAX;
    /// Independent per-probe firing probability once past `fire_after`,
    /// decided by a hash of (site, probe index, seed) — deterministic.
    double probability = 1.0;
    /// Seed for the probability hash; same seed, same firing pattern.
    uint64_t seed = 0;
    /// Status returned by error-kind probes when firing.
    StatusCode code = StatusCode::kInternal;
    /// Optional message; defaults to "injected fault at <site>".
    std::string message;
  };

  /// The process-wide instance every probe point consults.
  static FaultInjector& Global();

  /// All probe-site names compiled into the library (see `fault_sites`).
  static const std::vector<const char*>& KnownSites();

  /// Arms `site` (any string; typically a `fault_sites` constant) with
  /// `config`, replacing any previous arming and resetting its probe count.
  void Arm(const std::string& site, SiteConfig config);

  /// Disarms one site / every site. Probe counts are forgotten.
  void Disarm(const std::string& site);
  void DisarmAll();

  /// True when at least one site is armed. The production fast path.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Error-kind probe: OK unless `site` is armed and this probe index
  /// fires, in which case the configured Status is returned.
  Status Probe(const char* site);

  /// Deadline-kind probe for `SolveControl`: true when `site` is armed and
  /// this probe index fires. With the default unlimited `fire_count` the
  /// site keeps firing once triggered, which models a real (sticky)
  /// deadline expiry.
  bool DeadlineFires(const char* site);

  /// Number of probes `site` has received since it was last armed
  /// (0 if not armed). Lets tests both assert reachability and count a
  /// run's probes to position `fire_after` for an exact replay.
  uint64_t hits(const std::string& site) const;

 private:
  struct SiteState {
    SiteConfig config;
    uint64_t probes = 0;
  };

  FaultInjector() = default;
  bool FireDecision(const char* site) PCQE_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::unordered_map<std::string, SiteState> sites_ PCQE_GUARDED_BY(mu_);
  std::atomic<bool> enabled_{false};
};

/// Returns the injected Status from the enclosing function when `site` is
/// armed and firing; a single relaxed load otherwise. Use only in functions
/// returning `Status` or `Result<T>`.
#define PCQE_INJECT_FAULT(site)                                          \
  do {                                                                   \
    if (::pcqe::FaultInjector::Global().enabled()) {                     \
      PCQE_RETURN_NOT_OK(::pcqe::FaultInjector::Global().Probe(site));   \
    }                                                                    \
  } while (false)

}  // namespace pcqe

#endif  // PCQE_COMMON_FAULT_INJECTION_H_
