// Copyright (c) PCQE contributors.
// Small string helpers used across modules (no external dependencies).

#ifndef PCQE_COMMON_STRING_UTIL_H_
#define PCQE_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace pcqe {

/// printf-style formatting into a `std::string`.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep ", ").
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

/// Lowercases ASCII characters; non-ASCII bytes pass through unchanged.
std::string ToLowerAscii(std::string_view s);

/// Uppercases ASCII characters; non-ASCII bytes pass through unchanged.
std::string ToUpperAscii(std::string_view s);

/// Case-insensitive ASCII equality, used for SQL keywords and identifiers.
bool EqualsIgnoreCaseAscii(std::string_view a, std::string_view b);

/// Strips leading and trailing ASCII whitespace.
std::string_view TrimAscii(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double compactly for human-facing tables: trims trailing zeros
/// ("0.0580" -> "0.058", "3.0" -> "3").
std::string FormatDouble(double v, int max_decimals = 6);

/// Escapes `s` for inclusion inside a JSON string literal: quotes,
/// backslashes and control characters (the latter as `\u00XX`).
std::string JsonEscape(std::string_view s);

}  // namespace pcqe

#endif  // PCQE_COMMON_STRING_UTIL_H_
