#include "common/status.h"

namespace pcqe {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kInfeasible:
      return "infeasible";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kBindError:
      return "bind_error";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotImplemented:
      return "not_implemented";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace pcqe
