// Copyright (c) PCQE contributors.
// Result<T>: value-or-Status, the Arrow `Result` idiom.

#ifndef PCQE_COMMON_RESULT_H_
#define PCQE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace pcqe {

/// \brief Holds either a value of type `T` or a non-OK `Status`.
///
/// Usage:
/// \code
///   Result<Table> r = catalog.GetTable("proposal");
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
/// \endcode
/// or, inside a function returning `Status`/`Result`:
/// \code
///   PCQE_ASSIGN_OR_RETURN(Table t, catalog.GetTable("proposal"));
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, mirroring Arrow/Abseil).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and is normalized to `kInternal`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  /// True iff a value is held.
  [[nodiscard]] bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held, the error otherwise.
  [[nodiscard]] Status status() const { return ok() ? Status::OK() : status_; }

  /// Returns the held value; calling this on an error result is fatal in all
  /// build types (the error status is logged before aborting).
  [[nodiscard]] const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  [[nodiscard]] T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  [[nodiscard]] T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  /// Returns the held value or `fallback` when this is an error.
  [[nodiscard]] T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  /// Dereference sugar; must hold a value. The rvalue overload moves the
  /// value out, so `T v = *SomeFactory();` works for move-only `T`.
  [[nodiscard]] const T& operator*() const& { return ValueOrDie(); }
  [[nodiscard]] T& operator*() & { return ValueOrDie(); }
  // Deliberately fatal on error, same contract as ValueOrDie itself.
  [[nodiscard]] T operator*() && {
    return std::move(*this).ValueOrDie();  // pcqe-lint: allow(valueordie-unchecked)
  }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    PCQE_CHECK(ok()) << "ValueOrDie() on error Result: " << status_.ToString();
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace pcqe

#endif  // PCQE_COMMON_RESULT_H_
