// Copyright (c) PCQE contributors.
// Result<T>: value-or-Status, the Arrow `Result` idiom.

#ifndef PCQE_COMMON_RESULT_H_
#define PCQE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pcqe {

/// \brief Holds either a value of type `T` or a non-OK `Status`.
///
/// Usage:
/// \code
///   Result<Table> r = catalog.GetTable("proposal");
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
/// \endcode
/// or, inside a function returning `Status`/`Result`:
/// \code
///   PCQE_ASSIGN_OR_RETURN(Table t, catalog.GetTable("proposal"));
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, mirroring Arrow/Abseil).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and is normalized to `kInternal`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  /// True iff a value is held.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const { return ok() ? Status::OK() : status_; }

  /// Returns the held value; must not be called on an error result.
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie() on error Result");
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie() on error Result");
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok() && "ValueOrDie() on error Result");
    return std::move(*value_);
  }

  /// Returns the held value or `fallback` when this is an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  /// Dereference sugar; must hold a value. The rvalue overload moves the
  /// value out, so `T v = *SomeFactory();` works for move-only `T`.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace pcqe

#endif  // PCQE_COMMON_RESULT_H_
