// Copyright (c) PCQE contributors.
// Shared fixed-size worker pool for the CPU-bound solver fan-outs.
//
// The solvers split work into lanes (D&C groups, branch-and-bound root
// ranges, gain-precompute chunks); every lane's output goes to a slot owned
// by that lane alone and is combined by the caller in a fixed order, so
// results never depend on scheduling. `ParallelFor` blocks until the whole
// index range is done and the *calling thread claims indices too* — progress
// is guaranteed even when every pool worker is busy, which also makes nested
// fan-outs deadlock-free.

#ifndef PCQE_COMMON_THREAD_POOL_H_
#define PCQE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace pcqe {

/// \brief Worker-lane budget for a solver invocation.
///
/// Plumbed through `GreedyOptions` / `HeuristicOptions` / `DncOptions` and
/// `PcqeEngine::solver_parallelism`. The solvers are engineered so the
/// returned solution is identical at every setting; the knob trades wall
/// clock only.
struct SolverParallelism {
  /// 0 resolves to `std::thread::hardware_concurrency()` (min 1); 1 runs
  /// fully sequential without touching the pool; N caps fan-out at N lanes.
  size_t threads = 0;

  /// The effective lane count (always >= 1).
  size_t Resolve() const;
};

/// \brief Fixed-size pool of `std::jthread` workers over one task queue.
///
/// Tasks must not throw. On destruction the queue is drained (submitted work
/// always runs) and the workers join via `std::jthread`.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Tasks currently waiting in the queue (not yet claimed by a worker).
  /// A point-in-time observation for telemetry gauges — stale by the time
  /// the caller reads it.
  size_t queue_depth() const;

  /// Workers currently executing a task. Same point-in-time caveat; the
  /// caller lane of a `ParallelFor` is not counted (it is not a pool
  /// worker).
  size_t busy_workers() const { return busy_.load(std::memory_order_relaxed); }

  /// Enqueues a fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Runs `fn(i)` for every i in [0, n), spread over at most `lanes`
  /// concurrent lanes (the caller is one of them), and blocks until all n
  /// calls returned. Indices are claimed dynamically; `fn` must therefore
  /// tolerate any execution order. `lanes` 0 means workers + 1; `lanes` <= 1
  /// runs inline, in index order, without touching the queue.
  void ParallelFor(size_t n, size_t lanes, const std::function<void(size_t)>& fn);

  /// \brief The process-wide pool the solvers share.
  ///
  /// Sized `max(hardware_concurrency, 8) - 1` workers so that requesting up
  /// to 8 lanes fans out for real even on small CI boxes — oversubscribed
  /// lanes just time-slice, while thread-count sweeps and race detection
  /// stay meaningful there. Constructed on first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop(std::stop_token stop);

  // Wait predicate for WorkerLoop: invoked by `cv_.wait` with `mu_` held,
  // through a release/re-acquire cycle the analysis cannot model, so the
  // check is opted out instead of annotated PCQE_REQUIRES(mu_).
  bool HasQueuedTask() const PCQE_NO_THREAD_SAFETY_ANALYSIS {
    return !queue_.empty();
  }

  mutable Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ PCQE_GUARDED_BY(mu_);
  std::atomic<size_t> busy_{0};  // workers inside a task
  std::vector<std::jthread> workers_;
};

/// `ThreadPool::Shared().ParallelFor` with the lane budget of `parallelism`;
/// a budget of 1 (or n <= 1) runs inline without instantiating the pool.
void ParallelFor(const SolverParallelism& parallelism, size_t n,
                 const std::function<void(size_t)>& fn);

/// Splits [0, n) into at most `parallelism.Resolve()` contiguous chunks and
/// runs `fn(chunk_index, begin, end)` for each, blocking until done. Chunk
/// boundaries depend only on n and the resolved budget — never on
/// scheduling — so per-chunk scratch state yields reproducible results. A
/// budget of 1 makes the single call `fn(0, 0, n)` inline.
void ParallelForChunks(const SolverParallelism& parallelism, size_t n,
                       const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace pcqe

#endif  // PCQE_COMMON_THREAD_POOL_H_
