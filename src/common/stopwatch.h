// Copyright (c) PCQE contributors.
// Wall-clock stopwatch for benches and the per-group time budgets in the
// divide-and-conquer solver.

#ifndef PCQE_COMMON_STOPWATCH_H_
#define PCQE_COMMON_STOPWATCH_H_

#include <chrono>

namespace pcqe {

/// \brief Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  /// Starts (or restarts) at construction.
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last `Restart()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pcqe

#endif  // PCQE_COMMON_STOPWATCH_H_
