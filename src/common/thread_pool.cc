#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace pcqe {

size_t SolverParallelism::Resolve() const {
  if (threads != 0) return threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t num_workers) {
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { WorkerLoop(std::move(stop)); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::jthread& worker : workers_) worker.request_stop();
  cv_.notify_all();
  // ~jthread joins each worker; WorkerLoop drains the queue first, so every
  // submitted task has run by the time the pool is gone.
}

void ThreadPool::WorkerLoop(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      if (!cv_.wait(lock, stop, [this] { return HasQueuedTask(); })) {
        return;  // stop requested and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

namespace {

/// Completion state shared between the caller and its helper lanes. Held by
/// shared_ptr: a helper enqueued behind long tasks may wake after every
/// index is claimed (it then touches only `next`/`n`), so it must not
/// dangle once the caller unblocks.
struct ForState {
  ForState(size_t n_in, const std::function<void(size_t)>& fn_in)
      : n(n_in), fn(&fn_in) {}

  // Wait predicate for ParallelFor: invoked by `cv.wait` with `mu` held, so
  // the guarded read is opted out of the analysis (see ThreadPool::
  // HasQueuedTask for the rationale).
  bool AllDone() const PCQE_NO_THREAD_SAFETY_ANALYSIS { return completed == n; }

  const size_t n;
  const std::function<void(size_t)>* fn;  // outlives all fn calls: the caller
                                          // blocks until completed == n
  std::atomic<size_t> next{0};
  Mutex mu;
  std::condition_variable_any cv;
  size_t completed PCQE_GUARDED_BY(mu) = 0;
};

void RunLane(ForState& state) {
  size_t done = 0;
  for (;;) {
    size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state.n) break;
    (*state.fn)(i);
    ++done;
  }
  if (done != 0) {
    MutexLock lock(state.mu);
    state.completed += done;
    if (state.completed == state.n) state.cv.notify_all();
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t n, size_t lanes,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  lanes = std::min(lanes == 0 ? num_workers() + 1 : lanes, n);
  if (lanes <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ForState>(n, fn);
  for (size_t extra = 1; extra < lanes; ++extra) {
    Submit([state] { RunLane(*state); });
  }
  RunLane(*state);
  MutexLock lock(state->mu);
  state->cv.wait(lock, [&] { return state->AllDone(); });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    size_t hw = std::thread::hardware_concurrency();
    return std::max<size_t>(hw == 0 ? 1 : hw, 8) - 1;
  }());
  return pool;
}

void ParallelFor(const SolverParallelism& parallelism, size_t n,
                 const std::function<void(size_t)>& fn) {
  size_t lanes = parallelism.Resolve();
  if (lanes <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::Shared().ParallelFor(n, lanes, fn);
}

void ParallelForChunks(const SolverParallelism& parallelism, size_t n,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t lanes = std::min(parallelism.Resolve(), n);
  if (lanes <= 1) {
    fn(0, 0, n);
    return;
  }
  ThreadPool::Shared().ParallelFor(lanes, lanes, [&](size_t chunk) {
    fn(chunk, chunk * n / lanes, (chunk + 1) * n / lanes);
  });
}

}  // namespace pcqe
