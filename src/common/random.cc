#include "common/random.h"

#include <algorithm>

#include "common/logging.h"

namespace pcqe {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(gen_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(gen_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(gen_);
}

double Rng::ClampedGaussian(double mean, double stddev, double lo, double hi) {
  return std::clamp(Gaussian(mean, stddev), lo, hi);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(gen_);
}

std::vector<size_t> Rng::Sample(size_t n, size_t k) {
  PCQE_CHECK(k <= n) << "Sample(" << n << ", " << k << "): k exceeds population";
  // Partial Fisher-Yates over an index vector: O(n) setup, exact uniformity.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace pcqe
