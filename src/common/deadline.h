// Copyright (c) PCQE contributors.
// Deadline / CancelToken / SolveControl: the one cooperative-cancellation
// vocabulary shared by the service, the engine and all three solvers.
//
// A `Deadline` is an absolute point on the steady clock (infinite by
// default), so it composes across layers without re-arming: the service
// stamps it at admission, the engine forwards it into solver options, and
// every solver phase compares against the same instant. `SolveControl`
// bundles the deadline with an optional caller-owned `CancelToken` and a
// fault-injection site, and is the only thing solver loops poll — a raw
// `steady_clock::now()` comparison in src/strategy/ or src/service/ is a
// lint error (`deadline` rule in tools/pcqe_lint.py).

#ifndef PCQE_COMMON_DEADLINE_H_
#define PCQE_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/fault_injection.h"

namespace pcqe {

/// \brief An absolute budget on the steady clock; infinite by default.
///
/// Value type, trivially copyable; pass by value. `Expired()` is one clock
/// read — cheap enough for amortized per-node checks but still worth
/// striding (see `SolveControl::CheckEvery`).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default-constructed deadlines never expire.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point at) { return Deadline(at); }
  static Deadline AfterMillis(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  static Deadline AfterSeconds(double seconds) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }

  /// The earlier of two deadlines (infinite is later than everything).
  static Deadline Sooner(Deadline a, Deadline b) {
    return a.at_ <= b.at_ ? a : b;
  }

  bool infinite() const { return at_ == Clock::time_point::max(); }
  bool Expired() const { return !infinite() && Clock::now() >= at_; }

  /// Seconds until expiry: negative once expired, +infinity when infinite.
  double RemainingSeconds() const {
    if (infinite()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

  Clock::time_point time_point() const { return at_; }

 private:
  explicit Deadline(Clock::time_point at) : at_(at) {}

  Clock::time_point at_ = Clock::time_point::max();
};

/// \brief Caller-owned cooperative cancellation flag.
///
/// The requester keeps the token alive for the duration of the call and may
/// `RequestCancel()` from any thread; solvers observe it within a bounded
/// number of steps and return their best anytime result tagged `partial`.
class CancelToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Why a `SolveControl` tripped.
enum class StopCause : uint8_t {
  kNone = 0,
  kDeadline = 1,
  kCancelled = 2,
};

/// \brief The poll object solver loops check at node/phase boundaries.
///
/// Bundles a `Deadline`, an optional `CancelToken` and a fault-injection
/// site (a `fault_sites::k*Deadline` constant) behind one `active()` flag
/// computed at construction: an inert control (no deadline, no token, no
/// armed injector) costs a single branch per check, which keeps the
/// un-deadlined determinism contract untouched.
///
/// `StopNow()` is thread-safe (the first observed cause wins via CAS) and
/// is what parallel lanes share; `CheckEvery()` adds a plain stride counter
/// and is for sequential loops only.
class SolveControl {
 public:
  /// Inert: never stops.
  SolveControl() = default;

  SolveControl(Deadline deadline, const CancelToken* cancel,
               const char* fault_site = nullptr)
      : deadline_(deadline),
        cancel_(cancel),
        fault_site_(fault_site),
        active_(cancel != nullptr || !deadline.infinite() ||
                (fault_site != nullptr && FaultInjector::Global().enabled())) {}

  bool active() const { return active_; }

  /// Full check: cancel token, deadline clock, injected deadline. Latches
  /// the first cause; later calls return true without re-probing.
  bool StopNow() {
    if (!active_) return false;
    if (cause_.load(std::memory_order_relaxed) != 0) return true;
    StopCause cause = StopCause::kNone;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      cause = StopCause::kCancelled;
    } else if (deadline_.Expired()) {
      cause = StopCause::kDeadline;
    } else if (fault_site_ != nullptr &&
               FaultInjector::Global().DeadlineFires(fault_site_)) {
      cause = StopCause::kDeadline;
    }
    if (cause == StopCause::kNone) return false;
    uint8_t expected = 0;
    cause_.compare_exchange_strong(expected, static_cast<uint8_t>(cause),
                                   std::memory_order_relaxed);
    return true;
  }

  /// Sequential-loop check: the cancel flag every call, the clock (and the
  /// injector) only every `stride` calls. Not thread-safe.
  bool CheckEvery(uint32_t stride) {
    if (!active_) return false;
    if (cause_.load(std::memory_order_relaxed) != 0) return true;
    if (cancel_ != nullptr && cancel_->cancelled()) return StopNow();
    if (++tick_ % stride != 0) return false;
    return StopNow();
  }

  bool stopped() const { return cause_.load(std::memory_order_relaxed) != 0; }

  StopCause cause() const {
    return static_cast<StopCause>(cause_.load(std::memory_order_relaxed));
  }

 private:
  Deadline deadline_;
  const CancelToken* cancel_ = nullptr;
  const char* fault_site_ = nullptr;
  bool active_ = false;
  uint32_t tick_ = 0;
  std::atomic<uint8_t> cause_{0};
};

}  // namespace pcqe

#endif  // PCQE_COMMON_DEADLINE_H_
