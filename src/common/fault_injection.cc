// Copyright (c) PCQE contributors.

#include "common/fault_injection.h"

#include "common/string_util.h"

namespace pcqe {
namespace {

/// splitmix64: the firing decision must be a pure function of
/// (site, probe index, seed) so armed runs replay bit-for-bit.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(const char* site) {
  // FNV-1a over the site name.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

const std::vector<const char*>& FaultInjector::KnownSites() {
  static const std::vector<const char*>* sites = new std::vector<const char*>{
      fault_sites::kHeuristicWave,  fault_sites::kHeuristicDeadline,
      fault_sites::kGreedySolve,    fault_sites::kGreedyDeadline,
      fault_sites::kDncGroup,       fault_sites::kDncDeadline,
      fault_sites::kEngineEvaluate, fault_sites::kCatalogAccept,
      fault_sites::kCacheLookup,    fault_sites::kAdmission,
      fault_sites::kWorkerProcess,  fault_sites::kIndexRebuild,
      fault_sites::kWalAppend,      fault_sites::kWalSync,
      fault_sites::kCheckpoint,     fault_sites::kManifest,
      fault_sites::kRecoveryReplay,
  };
  return *sites;
}

void FaultInjector::Arm(const std::string& site, SiteConfig config) {
  MutexLock guard(mu_);
  sites_[site] = SiteState{std::move(config), 0};
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  MutexLock guard(mu_);
  sites_.erase(site);
  if (sites_.empty()) enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  MutexLock guard(mu_);
  sites_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::FireDecision(const char* site) {
  MutexLock guard(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  SiteState& state = it->second;
  const uint64_t index = state.probes++;
  const SiteConfig& config = state.config;
  if (index < config.fire_after) return false;
  if (config.fire_count != UINT64_MAX &&
      index - config.fire_after >= config.fire_count) {
    return false;
  }
  if (config.probability < 1.0) {
    uint64_t h = Mix64(HashSite(site) ^ Mix64(config.seed) ^ index);
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    if (u >= config.probability) return false;
  }
  return true;
}

Status FaultInjector::Probe(const char* site) {
  if (!enabled()) return Status::OK();
  if (!FireDecision(site)) return Status::OK();
  MutexLock guard(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::OK();
  const SiteConfig& config = it->second.config;
  std::string message = config.message.empty()
                            ? StrFormat("injected fault at %s", site)
                            : config.message;
  return Status(config.code, std::move(message));
}

bool FaultInjector::DeadlineFires(const char* site) {
  if (!enabled()) return false;
  return FireDecision(site);
}

uint64_t FaultInjector::hits(const std::string& site) const {
  MutexLock guard(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.probes;
}

}  // namespace pcqe
