#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace pcqe {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCaseAscii(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimAscii(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int max_decimals) {
  std::string out = StrFormat("%.*f", max_decimals, v);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace pcqe
