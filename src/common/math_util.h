// Copyright (c) PCQE contributors.
// Probability and numeric helpers shared by the lineage evaluator and the
// strategy solvers.

#ifndef PCQE_COMMON_MATH_UTIL_H_
#define PCQE_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstddef>

namespace pcqe {

/// Absolute tolerance used when comparing confidences and costs. Confidence
/// arithmetic chains a handful of multiplications, so 1e-9 is comfortably
/// below any meaningful difference while absorbing rounding noise.
inline constexpr double kEpsilon = 1e-9;

/// True iff `a` and `b` differ by at most `eps`.
inline bool ApproxEqual(double a, double b, double eps = kEpsilon) {
  return std::fabs(a - b) <= eps;
}

/// True iff `a >= b - eps`; the comparison used for "confidence clears the
/// policy threshold" so borderline results are not lost to rounding.
inline bool ApproxGreaterEqual(double a, double b, double eps = kEpsilon) {
  return a >= b - eps;
}

/// Clamps `p` into the valid confidence range [0, 1].
inline double ClampProbability(double p) {
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

/// P(A and B) for independent events.
inline double ProbAnd(double a, double b) { return a * b; }

/// P(A or B) for independent events: a + b - a*b, computed in the
/// complement domain for numerical robustness near 1.
inline double ProbOr(double a, double b) { return 1.0 - (1.0 - a) * (1.0 - b); }

/// Number of δ-granularity steps from `from` up to at most `to`
/// (e.g. from=0.3, to=1.0, δ=0.1 → 7).
inline size_t StepsBetween(double from, double to, double delta) {
  if (to <= from || delta <= 0.0) return 0;
  return static_cast<size_t>(std::floor((to - from) / delta + kEpsilon));
}

}  // namespace pcqe

#endif  // PCQE_COMMON_MATH_UTIL_H_
