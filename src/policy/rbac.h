// Copyright (c) PCQE contributors.
// Role-based access control substrate for confidence policies.
//
// The paper positions confidence policies as "a natural extension to
// Role-based Access Control (RBAC)" [Ferraiolo et al. 2001]: a policy's
// subject specification is a role. This module provides the minimal RBAC
// machinery the framework needs — users, roles, a role hierarchy and
// user-role assignment — so policies can be resolved for a concrete user.

#ifndef PCQE_POLICY_RBAC_H_
#define PCQE_POLICY_RBAC_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pcqe {

/// \brief Users, roles, a role hierarchy and user-role assignments.
///
/// Role names are case-sensitive identifiers ("Manager", "Secretary").
/// The hierarchy follows standard RBAC semantics: a *senior* role inherits
/// everything attached to its *junior* roles, so `ActiveRoles(user)` returns
/// the user's directly assigned roles plus all transitively junior roles.
/// Because confidence policies are restrictions, policy resolution takes the
/// **maximum** threshold over active roles (see `PolicyStore`), meaning a
/// senior role is at least as constrained as the roles it inherits.
class RoleGraph {
 public:
  RoleGraph() = default;

  /// Declares a role. Returns `kAlreadyExists` on duplicates.
  [[nodiscard]] Status AddRole(const std::string& role);

  /// True iff the role was declared.
  bool HasRole(const std::string& role) const { return juniors_.count(role) > 0; }

  /// Declares `senior` to inherit from `junior`. Both must exist; cycles
  /// are rejected with `kInvalidArgument`.
  [[nodiscard]] Status AddInheritance(const std::string& senior, const std::string& junior);

  /// Declares a user. Returns `kAlreadyExists` on duplicates.
  [[nodiscard]] Status AddUser(const std::string& user);

  /// True iff the user was declared.
  bool HasUser(const std::string& user) const { return user_roles_.count(user) > 0; }

  /// Assigns `role` to `user`; both must exist.
  [[nodiscard]] Status AssignRole(const std::string& user, const std::string& role);

  /// The user's directly assigned roles, in assignment order.
  [[nodiscard]] Result<std::vector<std::string>> DirectRoles(const std::string& user) const;

  /// The user's effective roles: direct assignments closed under the
  /// junior-role relation, sorted for determinism.
  [[nodiscard]] Result<std::vector<std::string>> ActiveRoles(const std::string& user) const;

  /// \name Enumeration (for persistence and administration UIs).
  /// @{
  /// All declared roles, sorted.
  std::vector<std::string> Roles() const;
  /// All declared users, sorted.
  std::vector<std::string> Users() const;
  /// Every (senior, junior) inheritance edge, sorted.
  std::vector<std::pair<std::string, std::string>> Inheritances() const;
  /// @}

 private:
  /// DFS from `role` through junior edges into `out`.
  void CollectJuniors(const std::string& role, std::set<std::string>* out) const;

  /// True iff `from` can reach `to` through junior edges.
  bool Reaches(const std::string& from, const std::string& to) const;

  std::map<std::string, std::vector<std::string>> juniors_;     // role -> junior roles
  std::map<std::string, std::vector<std::string>> user_roles_;  // user -> direct roles
};

}  // namespace pcqe

#endif  // PCQE_POLICY_RBAC_H_
