#include "policy/rbac.h"

#include <algorithm>

#include "common/string_util.h"

namespace pcqe {

Status RoleGraph::AddRole(const std::string& role) {
  if (role.empty()) return Status::InvalidArgument("role name must be non-empty");
  if (juniors_.count(role) > 0) {
    return Status::AlreadyExists(StrFormat("role '%s' already exists", role.c_str()));
  }
  juniors_[role] = {};
  return Status::OK();
}

Status RoleGraph::AddInheritance(const std::string& senior, const std::string& junior) {
  if (juniors_.count(senior) == 0) {
    return Status::NotFound(StrFormat("role '%s' not found", senior.c_str()));
  }
  if (juniors_.count(junior) == 0) {
    return Status::NotFound(StrFormat("role '%s' not found", junior.c_str()));
  }
  if (senior == junior || Reaches(junior, senior)) {
    return Status::InvalidArgument(
        StrFormat("inheritance %s -> %s would create a cycle", senior.c_str(),
                  junior.c_str()));
  }
  std::vector<std::string>& edges = juniors_[senior];
  if (std::find(edges.begin(), edges.end(), junior) == edges.end()) {
    edges.push_back(junior);
  }
  return Status::OK();
}

Status RoleGraph::AddUser(const std::string& user) {
  if (user.empty()) return Status::InvalidArgument("user name must be non-empty");
  if (user_roles_.count(user) > 0) {
    return Status::AlreadyExists(StrFormat("user '%s' already exists", user.c_str()));
  }
  user_roles_[user] = {};
  return Status::OK();
}

Status RoleGraph::AssignRole(const std::string& user, const std::string& role) {
  auto it = user_roles_.find(user);
  if (it == user_roles_.end()) {
    return Status::NotFound(StrFormat("user '%s' not found", user.c_str()));
  }
  if (juniors_.count(role) == 0) {
    return Status::NotFound(StrFormat("role '%s' not found", role.c_str()));
  }
  if (std::find(it->second.begin(), it->second.end(), role) == it->second.end()) {
    it->second.push_back(role);
  }
  return Status::OK();
}

Result<std::vector<std::string>> RoleGraph::DirectRoles(const std::string& user) const {
  auto it = user_roles_.find(user);
  if (it == user_roles_.end()) {
    return Status::NotFound(StrFormat("user '%s' not found", user.c_str()));
  }
  return it->second;
}

Result<std::vector<std::string>> RoleGraph::ActiveRoles(const std::string& user) const {
  PCQE_ASSIGN_OR_RETURN(std::vector<std::string> direct, DirectRoles(user));
  std::set<std::string> all;
  for (const std::string& r : direct) CollectJuniors(r, &all);
  return std::vector<std::string>(all.begin(), all.end());
}

std::vector<std::string> RoleGraph::Roles() const {
  std::vector<std::string> out;
  out.reserve(juniors_.size());
  for (const auto& [role, edges] : juniors_) {
    (void)edges;
    out.push_back(role);
  }
  return out;
}

std::vector<std::string> RoleGraph::Users() const {
  std::vector<std::string> out;
  out.reserve(user_roles_.size());
  for (const auto& [user, roles] : user_roles_) {
    (void)roles;
    out.push_back(user);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> RoleGraph::Inheritances() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [senior, edges] : juniors_) {
    for (const std::string& junior : edges) out.emplace_back(senior, junior);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RoleGraph::CollectJuniors(const std::string& role, std::set<std::string>* out) const {
  if (!out->insert(role).second) return;
  auto it = juniors_.find(role);
  if (it == juniors_.end()) return;
  for (const std::string& j : it->second) CollectJuniors(j, out);
}

bool RoleGraph::Reaches(const std::string& from, const std::string& to) const {
  std::set<std::string> seen;
  CollectJuniors(from, &seen);
  return seen.count(to) > 0;
}

}  // namespace pcqe
