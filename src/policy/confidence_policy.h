// Copyright (c) PCQE contributors.
// Confidence policies — element (3), Definition 1 of the paper.

#ifndef PCQE_POLICY_CONFIDENCE_POLICY_H_
#define PCQE_POLICY_CONFIDENCE_POLICY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "policy/rbac.h"

namespace pcqe {

/// Wildcard accepted in a policy's purpose field: the policy then applies to
/// every purpose.
inline constexpr const char* kAnyPurpose = "*";

/// \brief A confidence policy `⟨r, pu, β⟩` (paper Definition 1): a user under
/// role `r` querying for purpose `pu` may only access results whose
/// confidence value is higher than `β`.
///
/// §3.2 resolves "the confidence policy associated with the role of user U,
/// his query purpose *and the data U wants to access*": the optional `table`
/// field scopes a policy to queries touching that base table. An empty
/// table scopes the policy to every query.
struct ConfidencePolicy {
  ConfidencePolicy() = default;
  ConfidencePolicy(std::string policy_role, std::string policy_purpose,
                   double policy_threshold, std::string policy_table = "")
      : role(std::move(policy_role)),
        purpose(std::move(policy_purpose)),
        threshold(policy_threshold),
        table(std::move(policy_table)) {}

  std::string role;
  std::string purpose;
  double threshold = 0.0;
  /// Base table this policy guards; empty = any data.
  std::string table;

  /// "⟨Manager, investment, 0.06⟩" or "⟨Manager, investment, 0.06 @ proposal⟩".
  std::string ToString() const;
};

/// \brief Resolution of the policies applicable to one query.
struct PolicyDecision {
  /// The binding threshold: maximum `β` over all matched policies (the most
  /// restrictive applicable policy wins), or 0 when none matched.
  double threshold = 0.0;
  /// Every policy that applied, most restrictive first.
  std::vector<ConfidencePolicy> matched;

  /// True iff a result with confidence `p` may be released. Per Definition 1
  /// the confidence must be strictly *higher* than β (the running example
  /// blocks p38 = 0.058 < 0.06 and accepts 0.064 > 0.06); equality with β is
  /// resolved against release, modulo kEpsilon rounding slack.
  bool Allows(double p) const;
};

/// \brief Store and resolver for confidence policies.
///
/// Policies are keyed by (role, purpose). Resolution for a user collects the
/// policies whose role is one of the user's *active* roles (direct plus
/// inherited juniors — a senior role carries its juniors' restrictions) and
/// whose purpose equals the query purpose or is the wildcard.
class PolicyStore {
 public:
  PolicyStore() = default;

  /// Adds a policy. The role must exist in `roles` (checked at `Resolve`
  /// time too, but failing early aids configuration hygiene); the threshold
  /// must lie in [0, 1]; duplicate (role, purpose, table) triples are
  /// rejected — update semantics would hide configuration mistakes.
  [[nodiscard]] Status AddPolicy(const RoleGraph& roles, ConfidencePolicy policy);

  /// All stored policies in insertion order.
  const std::vector<ConfidencePolicy>& policies() const { return policies_; }

  /// Resolves the decision for `user` querying with `purpose` over the
  /// given base tables (case-insensitive): table-scoped policies apply only
  /// when their table is accessed. A user with no applicable policy gets
  /// threshold 0 (unrestricted), matching the paper's model where policies
  /// add restrictions on top of ordinary access control.
  [[nodiscard]] Result<PolicyDecision> Resolve(const RoleGraph& roles, const std::string& user,
                                 const std::string& purpose,
                                 const std::vector<std::string>& tables) const;

  /// Convenience overload for contexts without table information; only
  /// unscoped policies can match.
  [[nodiscard]] Result<PolicyDecision> Resolve(const RoleGraph& roles, const std::string& user,
                                 const std::string& purpose) const {
    return Resolve(roles, user, purpose, {});
  }

 private:
  std::vector<ConfidencePolicy> policies_;
};

}  // namespace pcqe

#endif  // PCQE_POLICY_CONFIDENCE_POLICY_H_
