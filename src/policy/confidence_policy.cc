#include "policy/confidence_policy.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/string_util.h"

namespace pcqe {

std::string ConfidencePolicy::ToString() const {
  if (table.empty()) {
    return StrFormat("<%s, %s, %s>", role.c_str(), purpose.c_str(),
                     FormatDouble(threshold).c_str());
  }
  return StrFormat("<%s, %s, %s @ %s>", role.c_str(), purpose.c_str(),
                   FormatDouble(threshold).c_str(), table.c_str());
}

bool PolicyDecision::Allows(double p) const {
  // Strictly greater than beta, with epsilon slack so a value computed as
  // beta + 1e-12 by a different evaluation order is not accidentally blocked
  // while true equality stays blocked.
  return p > threshold + kEpsilon;
}

Status PolicyStore::AddPolicy(const RoleGraph& roles, ConfidencePolicy policy) {
  if (!roles.HasRole(policy.role)) {
    return Status::NotFound(StrFormat("policy role '%s' not found", policy.role.c_str()));
  }
  if (policy.purpose.empty()) {
    return Status::InvalidArgument("policy purpose must be non-empty (use \"*\" for any)");
  }
  if (policy.threshold < 0.0 || policy.threshold > 1.0) {
    return Status::InvalidArgument(
        StrFormat("policy threshold %g outside [0, 1]", policy.threshold));
  }
  for (const ConfidencePolicy& existing : policies_) {
    if (existing.role == policy.role && existing.purpose == policy.purpose &&
        EqualsIgnoreCaseAscii(existing.table, policy.table)) {
      return Status::AlreadyExists(
          StrFormat("policy for (%s, %s, %s) already exists with threshold %g",
                    policy.role.c_str(), policy.purpose.c_str(),
                    policy.table.empty() ? "*" : policy.table.c_str(),
                    existing.threshold));
    }
  }
  policies_.push_back(std::move(policy));
  return Status::OK();
}

Result<PolicyDecision> PolicyStore::Resolve(const RoleGraph& roles,
                                            const std::string& user,
                                            const std::string& purpose,
                                            const std::vector<std::string>& tables) const {
  PCQE_ASSIGN_OR_RETURN(std::vector<std::string> active, roles.ActiveRoles(user));
  PolicyDecision decision;
  for (const ConfidencePolicy& p : policies_) {
    bool role_matches =
        std::find(active.begin(), active.end(), p.role) != active.end();
    bool purpose_matches = p.purpose == kAnyPurpose || p.purpose == purpose;
    bool table_matches = p.table.empty();
    for (const std::string& t : tables) {
      if (table_matches) break;
      table_matches = EqualsIgnoreCaseAscii(p.table, t);
    }
    if (role_matches && purpose_matches && table_matches) {
      decision.matched.push_back(p);
      decision.threshold = std::max(decision.threshold, p.threshold);
    }
  }
  std::sort(decision.matched.begin(), decision.matched.end(),
            [](const ConfidencePolicy& a, const ConfidencePolicy& b) {
              return a.threshold > b.threshold;
            });
  return decision;
}

}  // namespace pcqe
