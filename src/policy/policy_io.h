// Copyright (c) PCQE contributors.
// Persistence for the access configuration: roles, users, role hierarchy,
// user-role assignments and confidence policies.

#ifndef PCQE_POLICY_POLICY_IO_H_
#define PCQE_POLICY_POLICY_IO_H_

#include <string>

#include "common/result.h"
#include "policy/confidence_policy.h"
#include "policy/rbac.h"

namespace pcqe {

/// \brief Serializes the access configuration into a line-based text form:
///
/// \code
///   role <name>
///   inherit <senior> <junior>
///   user <name>
///   assign <user> <role>
///   policy <role> <purpose> <beta>
/// \endcode
///
/// Names containing whitespace cannot be represented and are rejected with
/// `kInvalidArgument`. Lines starting with '#' are comments on parse.
[[nodiscard]] Result<std::string> SerializeAccessConfig(const RoleGraph& roles,
                                          const PolicyStore& policies);

/// Parses a configuration produced by `SerializeAccessConfig` into the given
/// (typically empty) graph/store. Directives are applied in file order, so
/// hand-written files must declare roles/users before referencing them.
[[nodiscard]] Status ParseAccessConfig(const std::string& text, RoleGraph* roles,
                         PolicyStore* policies);

/// File wrappers.
[[nodiscard]] Status SaveAccessConfig(const RoleGraph& roles, const PolicyStore& policies,
                        const std::string& path);
[[nodiscard]] Status LoadAccessConfig(const std::string& path, RoleGraph* roles,
                        PolicyStore* policies);

}  // namespace pcqe

#endif  // PCQE_POLICY_POLICY_IO_H_
