#include "policy/policy_io.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pcqe {

namespace {

bool HasWhitespace(const std::string& s) {
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) return true;
  }
  return s.empty();
}

Status CheckName(const std::string& kind, const std::string& name) {
  if (HasWhitespace(name)) {
    return Status::InvalidArgument(
        StrFormat("%s name '%s' cannot be serialized (empty or contains "
                  "whitespace)",
                  kind.c_str(), name.c_str()));
  }
  return Status::OK();
}

}  // namespace

Result<std::string> SerializeAccessConfig(const RoleGraph& roles,
                                          const PolicyStore& policies) {
  std::string out = "# pcqe access configuration\n";
  for (const std::string& role : roles.Roles()) {
    PCQE_RETURN_NOT_OK(CheckName("role", role));
    out += "role " + role + "\n";
  }
  for (const auto& [senior, junior] : roles.Inheritances()) {
    out += "inherit " + senior + " " + junior + "\n";
  }
  for (const std::string& user : roles.Users()) {
    PCQE_RETURN_NOT_OK(CheckName("user", user));
    out += "user " + user + "\n";
  }
  for (const std::string& user : roles.Users()) {
    PCQE_ASSIGN_OR_RETURN(std::vector<std::string> direct, roles.DirectRoles(user));
    for (const std::string& role : direct) {
      out += "assign " + user + " " + role + "\n";
    }
  }
  for (const ConfidencePolicy& p : policies.policies()) {
    PCQE_RETURN_NOT_OK(CheckName("purpose", p.purpose));
    out += StrFormat("policy %s %s %.17g", p.role.c_str(), p.purpose.c_str(),
                     p.threshold);
    if (!p.table.empty()) {
      PCQE_RETURN_NOT_OK(CheckName("table", p.table));
      out += " " + p.table;
    }
    out += "\n";
  }
  return out;
}

Status ParseAccessConfig(const std::string& text, RoleGraph* roles,
                         PolicyStore* policies) {
  std::istringstream lines(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::string trimmed(TrimAscii(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream words(trimmed);
    std::string directive;
    words >> directive;
    auto context = [&](Status s) {
      return s.WithContext(StrFormat("access config line %zu", line_no));
    };
    if (directive == "role") {
      std::string name;
      if (!(words >> name)) return context(Status::ParseError("role needs a name"));
      PCQE_RETURN_NOT_OK(context(roles->AddRole(name)));
    } else if (directive == "inherit") {
      std::string senior, junior;
      if (!(words >> senior >> junior)) {
        return context(Status::ParseError("inherit needs <senior> <junior>"));
      }
      PCQE_RETURN_NOT_OK(context(roles->AddInheritance(senior, junior)));
    } else if (directive == "user") {
      std::string name;
      if (!(words >> name)) return context(Status::ParseError("user needs a name"));
      PCQE_RETURN_NOT_OK(context(roles->AddUser(name)));
    } else if (directive == "assign") {
      std::string user, role;
      if (!(words >> user >> role)) {
        return context(Status::ParseError("assign needs <user> <role>"));
      }
      PCQE_RETURN_NOT_OK(context(roles->AssignRole(user, role)));
    } else if (directive == "policy") {
      std::string role, purpose, beta_text;
      if (!(words >> role >> purpose >> beta_text)) {
        return context(
            Status::ParseError("policy needs <role> <purpose> <beta> [table]"));
      }
      char* end = nullptr;
      double beta = std::strtod(beta_text.c_str(), &end);
      if (end != beta_text.c_str() + beta_text.size()) {
        return context(
            Status::ParseError(StrFormat("beta '%s' is not numeric", beta_text.c_str())));
      }
      std::string table;
      words >> table;  // optional scope
      PCQE_RETURN_NOT_OK(
          context(policies->AddPolicy(*roles, {role, purpose, beta, table})));
    } else {
      return context(
          Status::ParseError(StrFormat("unknown directive '%s'", directive.c_str())));
    }
    // Trailing junk on the line is a config mistake worth surfacing.
    std::string extra;
    if (words >> extra) {
      return context(
          Status::ParseError(StrFormat("unexpected trailing token '%s'", extra.c_str())));
    }
  }
  return Status::OK();
}

Status SaveAccessConfig(const RoleGraph& roles, const PolicyStore& policies,
                        const std::string& path) {
  PCQE_ASSIGN_OR_RETURN(std::string text, SerializeAccessConfig(roles, policies));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument(StrFormat("cannot write '%s'", path.c_str()));
  out << text;
  return out.good() ? Status::OK()
                    : Status::Internal(StrFormat("write to '%s' failed", path.c_str()));
}

Status LoadAccessConfig(const std::string& path, RoleGraph* roles,
                        PolicyStore* policies) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseAccessConfig(buffer.str(), roles, policies);
}

}  // namespace pcqe
