// Copyright (c) PCQE contributors.
// Cost functions for confidence acquisition.
//
// Section 3.2 of the paper attaches to every base tuple a cost function
// describing how expensive it is to raise that tuple's confidence (e.g. by
// buying a verification report or running an audit). Section 5.1 generates
// workloads whose cost functions are drawn from "binomial, exponential and
// logarithm" families. The paper gives no formulas, so this module defines a
// small interpretable family (see DESIGN.md §3 for the substitution note):
//
//   Linear       c(p) = a * p
//   Polynomial   c(p) = a * p^d          ("binomial" in the paper's wording)
//   Exponential  c(p) = a * e^(b*p)
//   Logarithmic  c(p) = a * ln(1 + b*p)
//   Step         c(p) = a * (number of δ acquisition actions)
//
// All families are strictly increasing on [0, 1], so the *incremental* cost
// of moving confidence from `from` to `to` is c(to) - c(from) >= 0.

#ifndef PCQE_COST_COST_FUNCTION_H_
#define PCQE_COST_COST_FUNCTION_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace pcqe {

/// \brief Enumerates the built-in cost-function families.
enum class CostFamily : int {
  kLinear = 0,
  kPolynomial = 1,
  kExponential = 2,
  kLogarithmic = 3,
  kStep = 4,
};

/// Canonical lowercase family name ("exponential", ...).
std::string CostFamilyToString(CostFamily family);

/// \brief Cost of holding a confidence level; differences give increment cost.
///
/// Implementations must be strictly increasing on [0, 1]. Thread-compatible:
/// all methods are const and instances are safely shared via
/// `std::shared_ptr<const CostFunction>`.
class CostFunction {
 public:
  virtual ~CostFunction() = default;

  /// The family tag, for printing and serialization.
  virtual CostFamily family() const = 0;

  /// Absolute cost level of holding confidence `p`, with `p` in [0, 1].
  virtual double Level(double p) const = 0;

  /// Cost of raising confidence from `from` to `to`. Returns 0 when
  /// `to <= from` (confidence is never actively lowered; decrements in the
  /// greedy refinement phase *refund* exactly this amount).
  double Increment(double from, double to) const {
    if (to <= from) return 0.0;
    return Level(to) - Level(from);
  }

  /// Human-readable description, e.g. "exponential(a=2, b=3)".
  virtual std::string ToString() const = 0;
};

/// Shared immutable handle; tuples referencing the same acquisition channel
/// share one instance.
using CostFunctionPtr = std::shared_ptr<const CostFunction>;

/// \name Factories
/// Each validates its parameters and returns `kInvalidArgument` on a
/// non-increasing configuration.
/// @{

/// Linear cost `a * p`; requires a > 0.
[[nodiscard]] Result<CostFunctionPtr> MakeLinearCost(double a);

/// Polynomial ("binomial") cost `a * p^d`; requires a > 0 and d >= 1.
[[nodiscard]] Result<CostFunctionPtr> MakePolynomialCost(double a, double degree);

/// Exponential cost `a * e^(b*p)`; requires a > 0 and b > 0.
[[nodiscard]] Result<CostFunctionPtr> MakeExponentialCost(double a, double b);

/// Logarithmic cost `a * ln(1 + b*p)`; requires a > 0 and b > 0.
[[nodiscard]] Result<CostFunctionPtr> MakeLogarithmicCost(double a, double b);

/// Step cost `a * ceil(p / delta)`; requires a > 0 and delta in (0, 1].
[[nodiscard]] Result<CostFunctionPtr> MakeStepCost(double a, double delta);

/// @}

/// The cost function assumed when a tuple has none attached: linear with
/// unit slope, so "cost" degenerates to "total confidence raised".
CostFunctionPtr DefaultCostFunction();

/// \brief Parses the textual form produced by `CostFunction::ToString`
/// ("linear(a=2)", "exponential(a=2, b=3)", ...), for persistence.
/// Returns `kParseError` on malformed input and `kInvalidArgument` for
/// out-of-range parameters.
[[nodiscard]] Result<CostFunctionPtr> ParseCostFunction(const std::string& text);

}  // namespace pcqe

#endif  // PCQE_COST_COST_FUNCTION_H_
