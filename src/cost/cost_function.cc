#include "cost/cost_function.h"

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace pcqe {

std::string CostFamilyToString(CostFamily family) {
  switch (family) {
    case CostFamily::kLinear:
      return "linear";
    case CostFamily::kPolynomial:
      return "polynomial";
    case CostFamily::kExponential:
      return "exponential";
    case CostFamily::kLogarithmic:
      return "logarithmic";
    case CostFamily::kStep:
      return "step";
  }
  return "unknown";
}

namespace {

class LinearCost final : public CostFunction {
 public:
  explicit LinearCost(double a) : a_(a) {}
  CostFamily family() const override { return CostFamily::kLinear; }
  double Level(double p) const override { return a_ * p; }
  std::string ToString() const override { return StrFormat("linear(a=%g)", a_); }

 private:
  double a_;
};

class PolynomialCost final : public CostFunction {
 public:
  PolynomialCost(double a, double degree) : a_(a), degree_(degree) {}
  CostFamily family() const override { return CostFamily::kPolynomial; }
  double Level(double p) const override { return a_ * std::pow(p, degree_); }
  std::string ToString() const override {
    return StrFormat("polynomial(a=%g, d=%g)", a_, degree_);
  }

 private:
  double a_;
  double degree_;
};

class ExponentialCost final : public CostFunction {
 public:
  ExponentialCost(double a, double b) : a_(a), b_(b) {}
  CostFamily family() const override { return CostFamily::kExponential; }
  double Level(double p) const override { return a_ * std::exp(b_ * p); }
  std::string ToString() const override {
    return StrFormat("exponential(a=%g, b=%g)", a_, b_);
  }

 private:
  double a_;
  double b_;
};

class LogarithmicCost final : public CostFunction {
 public:
  LogarithmicCost(double a, double b) : a_(a), b_(b) {}
  CostFamily family() const override { return CostFamily::kLogarithmic; }
  double Level(double p) const override { return a_ * std::log1p(b_ * p); }
  std::string ToString() const override {
    return StrFormat("logarithmic(a=%g, b=%g)", a_, b_);
  }

 private:
  double a_;
  double b_;
};

class StepCost final : public CostFunction {
 public:
  StepCost(double a, double delta) : a_(a), delta_(delta) {}
  CostFamily family() const override { return CostFamily::kStep; }
  double Level(double p) const override {
    // Tiny slack so p = k*delta counts exactly k completed actions.
    return a_ * std::ceil(p / delta_ - 1e-12);
  }
  std::string ToString() const override {
    return StrFormat("step(a=%g, delta=%g)", a_, delta_);
  }

 private:
  double a_;
  double delta_;
};

}  // namespace

Result<CostFunctionPtr> MakeLinearCost(double a) {
  if (!(a > 0.0)) return Status::InvalidArgument("linear cost requires a > 0");
  return CostFunctionPtr(std::make_shared<LinearCost>(a));
}

Result<CostFunctionPtr> MakePolynomialCost(double a, double degree) {
  if (!(a > 0.0)) return Status::InvalidArgument("polynomial cost requires a > 0");
  if (!(degree >= 1.0)) {
    return Status::InvalidArgument("polynomial cost requires degree >= 1");
  }
  return CostFunctionPtr(std::make_shared<PolynomialCost>(a, degree));
}

Result<CostFunctionPtr> MakeExponentialCost(double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    return Status::InvalidArgument("exponential cost requires a > 0 and b > 0");
  }
  return CostFunctionPtr(std::make_shared<ExponentialCost>(a, b));
}

Result<CostFunctionPtr> MakeLogarithmicCost(double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) {
    return Status::InvalidArgument("logarithmic cost requires a > 0 and b > 0");
  }
  return CostFunctionPtr(std::make_shared<LogarithmicCost>(a, b));
}

Result<CostFunctionPtr> MakeStepCost(double a, double delta) {
  if (!(a > 0.0)) return Status::InvalidArgument("step cost requires a > 0");
  if (!(delta > 0.0 && delta <= 1.0)) {
    return Status::InvalidArgument("step cost requires delta in (0, 1]");
  }
  return CostFunctionPtr(std::make_shared<StepCost>(a, delta));
}

CostFunctionPtr DefaultCostFunction() {
  static const CostFunctionPtr kDefault = *MakeLinearCost(1.0);
  return kDefault;
}

Result<CostFunctionPtr> ParseCostFunction(const std::string& text) {
  // Grammar: family '(' name '=' number (',' name '=' number)* ')'.
  size_t open = text.find('(');
  if (open == std::string::npos || text.empty() || text.back() != ')') {
    return Status::ParseError(
        StrFormat("malformed cost function '%s'", text.c_str()));
  }
  std::string family = std::string(TrimAscii(text.substr(0, open)));
  std::string body = text.substr(open + 1, text.size() - open - 2);

  // Parse "k=v" pairs.
  double a = 0.0, b = 0.0, d = 0.0, delta = 0.0;
  bool have_a = false, have_b = false, have_d = false, have_delta = false;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t comma = body.find(',', pos);
    std::string pair = std::string(
        TrimAscii(body.substr(pos, comma == std::string::npos ? std::string::npos
                                                              : comma - pos)));
    pos = comma == std::string::npos ? body.size() : comma + 1;
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError(
          StrFormat("malformed cost parameter '%s'", pair.c_str()));
    }
    std::string key = std::string(TrimAscii(pair.substr(0, eq)));
    char* end = nullptr;
    std::string value_text = std::string(TrimAscii(pair.substr(eq + 1)));
    double value = std::strtod(value_text.c_str(), &end);
    if (end != value_text.c_str() + value_text.size() || value_text.empty()) {
      return Status::ParseError(
          StrFormat("non-numeric cost parameter '%s'", pair.c_str()));
    }
    if (key == "a") {
      a = value;
      have_a = true;
    } else if (key == "b") {
      b = value;
      have_b = true;
    } else if (key == "d") {
      d = value;
      have_d = true;
    } else if (key == "delta") {
      delta = value;
      have_delta = true;
    } else {
      return Status::ParseError(
          StrFormat("unknown cost parameter '%s'", key.c_str()));
    }
  }

  if (family == "linear" && have_a && !have_b && !have_d && !have_delta) {
    return MakeLinearCost(a);
  }
  if (family == "polynomial" && have_a && have_d && !have_b && !have_delta) {
    return MakePolynomialCost(a, d);
  }
  if (family == "exponential" && have_a && have_b && !have_d && !have_delta) {
    return MakeExponentialCost(a, b);
  }
  if (family == "logarithmic" && have_a && have_b && !have_d && !have_delta) {
    return MakeLogarithmicCost(a, b);
  }
  if (family == "step" && have_a && have_delta && !have_b && !have_d) {
    return MakeStepCost(a, delta);
  }
  return Status::ParseError(
      StrFormat("unknown cost family or wrong parameters in '%s'", text.c_str()));
}

}  // namespace pcqe
