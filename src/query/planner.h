// Copyright (c) PCQE contributors.
// Planner: binds a parsed SELECT against the catalog and emits a plan.

#ifndef PCQE_QUERY_PLANNER_H_
#define PCQE_QUERY_PLANNER_H_

#include <memory>

#include "common/result.h"
#include "query/ast.h"
#include "query/plan.h"
#include "relational/catalog.h"

namespace pcqe {

/// \brief Translates a `SelectStatement` into an executable `PlanNode` tree.
///
/// Responsibilities:
/// - resolve table references (base tables and derived tables) against the
///   catalog, applying aliases as column qualifiers;
/// - fold the FROM list into a left-deep join chain (comma sources become
///   cross joins, explicit JOINs carry their ON condition);
/// - bind every expression and compute each node's output schema;
/// - expand `*`, name projected columns (alias > source name > "colN");
/// - lower set operations left-associatively and attach ORDER BY / LIMIT
///   at the top.
///
/// Errors are `kBindError` (unknown table/column, type mismatch, set-op
/// arity mismatch) or propagate from expression binding.
[[nodiscard]] Result<std::unique_ptr<PlanNode>> PlanQuery(const Catalog& catalog,
                                            const SelectStatement& stmt);

}  // namespace pcqe

#endif  // PCQE_QUERY_PLANNER_H_
