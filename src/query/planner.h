// Copyright (c) PCQE contributors.
// Planner: binds a parsed SELECT against the catalog and emits a plan.

#ifndef PCQE_QUERY_PLANNER_H_
#define PCQE_QUERY_PLANNER_H_

#include <memory>

#include "common/result.h"
#include "query/ast.h"
#include "query/plan.h"
#include "relational/catalog.h"

namespace pcqe {

/// \brief Translates a `SelectStatement` into an executable `PlanNode` tree.
///
/// Responsibilities:
/// - resolve table references (base tables and derived tables) against the
///   catalog, applying aliases as column qualifiers;
/// - fold the FROM list into a left-deep join chain (comma sources become
///   cross joins, explicit JOINs carry their ON condition);
/// - bind every expression and compute each node's output schema;
/// - expand `*`, name projected columns (alias > source name > "colN");
/// - lower set operations left-associatively and attach ORDER BY / LIMIT
///   at the top.
///
/// Errors are `kBindError` (unknown table/column, type mismatch, set-op
/// arity mismatch) or propagate from expression binding.
///
/// When `pushdown` is non-null and the plan is pushdown-safe (see
/// `IsConfidencePushdownSafe`), every base-table scan is wrapped in a
/// `kConfidencePrune` node carrying `pushdown->beta` and — when
/// `pushdown->index` is set and its rebuild succeeds — a zone-map snapshot
/// for chunk skipping. An unsafe shape leaves the plan untouched, so the
/// pushed and unpushed plans stay result-identical by construction.
[[nodiscard]] Result<std::unique_ptr<PlanNode>> PlanQuery(
    const Catalog& catalog, const SelectStatement& stmt,
    const ConfidencePushdown* pushdown = nullptr);

/// True iff pruning sub-β base tuples below this plan cannot change the
/// post-filter released set: every operator either keeps per-row confidence
/// monotone non-increasing in its inputs (scan/filter/project/join/sort/
/// union-all) or is a prune node itself. Duplicate-merging set operations
/// (OR lineage can *raise* confidence), EXCEPT (NOT raises it), LIMIT
/// (pruned rows change which rows occupy the cap) and aggregation (pruned
/// group members change group values) are unsafe.
[[nodiscard]] bool IsConfidencePushdownSafe(const PlanNode& plan);

/// Base tables `plan` scans, deduplicated case-insensitively, in plan order.
/// Policy resolution uses these to apply table-scoped confidence policies.
[[nodiscard]] std::vector<std::string> CollectScannedTables(const PlanNode& plan);

}  // namespace pcqe

#endif  // PCQE_QUERY_PLANNER_H_
