#include "query/query_engine.h"

#include <algorithm>

#include "common/string_util.h"
#include "query/parser.h"
#include "query/planner.h"

namespace pcqe {

void QueryResult::RecomputeConfidences(const ConfidenceMap& confidences) {
  for (Row& row : rows) {
    row.confidence = EvaluateIndependent(*arena, row.lineage, confidences);
  }
}

std::string QueryResult::ToTable(size_t max_rows) const {
  // Header + rows, column-aligned.
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  header.reserve(schema.num_columns() + 1);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    header.push_back(schema.column(c).QualifiedName());
  }
  header.push_back("confidence");
  cells.push_back(std::move(header));
  size_t shown = std::min(rows.size(), max_rows);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line;
    line.reserve(schema.num_columns() + 1);
    for (const Value& v : rows[r].values) line.push_back(v.ToString());
    line.push_back(FormatDouble(rows[r].confidence, 6));
    cells.push_back(std::move(line));
  }
  std::vector<size_t> widths(cells[0].size(), 0);
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) widths[c] = std::max(widths[c], line[c].size());
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += StrFormat("%-*s", static_cast<int>(widths[c] + 2), cells[r][c].c_str());
    }
    out += "\n";
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        out += std::string(widths[c], '-') + "  ";
      }
      out += "\n";
    }
  }
  if (rows.size() > shown) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - shown);
  }
  return out;
}

Result<ConfidenceMap> SnapshotConfidences(const Catalog& catalog,
                                          const QueryResult& result) {
  ConfidenceMap map(0.0);
  for (const QueryResult::Row& row : result.rows) {
    for (LineageVarId id : result.arena->Variables(row.lineage)) {
      PCQE_ASSIGN_OR_RETURN(const Tuple* t, catalog.FindTuple(id));
      map.Set(id, t->confidence());
    }
  }
  return map;
}

namespace {

void CollectScannedTables(const PlanNode& plan,
                          std::vector<std::string>* tables) {  // NOLINT(misc-no-recursion)
  if (plan.kind == PlanKind::kScan && plan.table != nullptr) {
    const std::string& name = plan.table->name();
    for (const std::string& existing : *tables) {
      if (EqualsIgnoreCaseAscii(existing, name)) return;
    }
    tables->push_back(name);
    return;
  }
  if (plan.left) CollectScannedTables(*plan.left, tables);
  if (plan.right) CollectScannedTables(*plan.right, tables);
}

}  // namespace

Result<QueryResult> RunQuery(const Catalog& catalog, const std::string& sql,
                             TraceBuilder* trace) {
  std::unique_ptr<SelectStatement> stmt;
  {
    ScopedSpan span(trace, "parse");
    PCQE_ASSIGN_OR_RETURN(stmt, ParseSelect(sql));
  }
  std::unique_ptr<PlanNode> plan;
  {
    ScopedSpan span(trace, "plan");
    PCQE_ASSIGN_OR_RETURN(plan, PlanQuery(catalog, *stmt));
  }

  QueryResult result;
  result.schema = plan->output_schema;
  result.arena = std::make_shared<LineageArena>();
  result.plan_text = plan->ToString();
  CollectScannedTables(*plan, &result.tables);

  {
    ScopedSpan span(trace, "execute");
    Executor executor(result.arena.get());
    PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> rows, executor.Run(*plan));
    result.rows.reserve(rows.size());
    for (ExecRow& row : rows) {
      result.rows.push_back({std::move(row.values), row.lineage, 0.0});
    }
    span.Annotate("rows", std::to_string(result.rows.size()));
  }

  {
    ScopedSpan span(trace, "lineage");
    PCQE_ASSIGN_OR_RETURN(ConfidenceMap confidences,
                          SnapshotConfidences(catalog, result));
    result.RecomputeConfidences(confidences);
  }
  return result;
}

}  // namespace pcqe
