#include "query/query_engine.h"

#include <algorithm>

#include "common/string_util.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/vec_executor.h"

namespace pcqe {

void QueryResult::RecomputeConfidences(const ConfidenceMap& confidences) {
  MaterializeLineage();
  for (Row& row : rows) {
    row.confidence = EvaluateIndependent(*arena, row.lineage, confidences);
  }
}

std::vector<Value> QueryResult::ValuesOfRow(size_t i) const {
  if (!defer_values || !rows[i].values.empty()) return rows[i].values;
  std::vector<Value> values;
  values.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    values.push_back(columnar->BoxedValue(c, i));
  }
  return values;
}

void QueryResult::MaterializeValues() {
  if (!defer_values) return;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].values.empty()) rows[i].values = ValuesOfRow(i);
  }
  defer_values = false;
  if (!defer_lineage) columnar.reset();
}

void QueryResult::MaterializeLineage() {
  if (!defer_lineage) return;
  arena->Reserve(rows.size());
  std::vector<LineageRef> scratch;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].lineage == kNullLineage) {
      rows[i].lineage = columnar->BoxRowLineage(arena.get(), i, &scratch);
    }
  }
  defer_lineage = false;
  if (!defer_values) columnar.reset();
}

std::string QueryResult::ToTable(size_t max_rows) const {
  // Header + rows, column-aligned.
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  header.reserve(schema.num_columns() + 1);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    header.push_back(schema.column(c).QualifiedName());
  }
  header.push_back("confidence");
  cells.push_back(std::move(header));
  size_t shown = std::min(rows.size(), max_rows);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line;
    line.reserve(schema.num_columns() + 1);
    for (const Value& v : ValuesOfRow(r)) line.push_back(v.ToString());
    line.push_back(FormatDouble(rows[r].confidence, 6));
    cells.push_back(std::move(line));
  }
  std::vector<size_t> widths(cells[0].size(), 0);
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) widths[c] = std::max(widths[c], line[c].size());
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += StrFormat("%-*s", static_cast<int>(widths[c] + 2), cells[r][c].c_str());
    }
    out += "\n";
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        out += std::string(widths[c], '-') + "  ";
      }
      out += "\n";
    }
  }
  if (rows.size() > shown) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - shown);
  }
  return out;
}

Result<ConfidenceMap> SnapshotConfidences(const Catalog& catalog,
                                          const QueryResult& result) {
  // Every interned variable refers to a base tuple the query scanned, so
  // snapshotting the arena's variable index covers all rows in one pass.
  // (Walking each row's formula with `Variables` is O(rows × arena nodes)
  // and dominated end-to-end time on large results.)
  ConfidenceMap map(0.0);
  for (const auto& [id, ref] : result.arena->variable_index()) {
    (void)ref;
    PCQE_ASSIGN_OR_RETURN(const Tuple* t, catalog.FindTuple(id));
    map.Set(id, t->confidence());
  }
  return map;
}

namespace {

/// True when the planner actually inserted a β prune node (the pushdown
/// spec alone does not imply it — unsafe shapes plan unchanged).
bool ContainsConfidencePrune(const PlanNode& plan) {  // NOLINT(misc-no-recursion)
  if (plan.kind == PlanKind::kConfidencePrune) return true;
  if (plan.left && ContainsConfidencePrune(*plan.left)) return true;
  return plan.right && ContainsConfidencePrune(*plan.right);
}

}  // namespace

Result<QueryResult> RunQuery(const Catalog& catalog, const std::string& sql,
                             TraceBuilder* trace, ExecutionMode mode,
                             bool materialize_values, OperatorProfile* profile,
                             const ConfidencePushdown* pushdown) {
  if (profile != nullptr) profile->mode = ExecutionModeToString(mode);
  std::unique_ptr<SelectStatement> stmt;
  {
    ScopedSpan span(trace, "parse");
    PCQE_ASSIGN_OR_RETURN(stmt, ParseSelect(sql));
  }
  std::unique_ptr<PlanNode> plan;
  {
    ScopedSpan span(trace, "plan");
    PCQE_ASSIGN_OR_RETURN(plan, PlanQuery(catalog, *stmt, pushdown));
  }

  QueryResult result;
  result.schema = plan->output_schema;
  result.arena = std::make_shared<LineageArena>();
  result.plan_text = plan->ToString();
  result.mode = mode;
  result.tables = CollectScannedTables(*plan);
  result.pushed_down = ContainsConfidencePrune(*plan);

  OperatorProfiler profiler(profile);

  if (mode == ExecutionMode::kVectorized) {
    VectorExecutor executor(result.arena.get(),
                            profile != nullptr ? &profiler : nullptr);
    size_t num_columns = plan->output_schema.num_columns();
    VecResult vec;
    {
      ScopedSpan span(trace, "execute");
      PCQE_ASSIGN_OR_RETURN(vec, executor.Run(*plan));
      span.Annotate("rows", std::to_string(vec.num_rows));
    }
    // ScanRowConfidence's fixed dedupe scratch bounds the factor count.
    constexpr size_t kMaxDeferredFactors = 8;
    if (!materialize_values && vec.AllScanFactors() &&
        vec.factors.size() <= kMaxDeferredFactors) {
      // Fully deferred serving path: the result stays factorized. Per-row
      // confidences fold nodelessly over the chunks' confidence vectors
      // (bit-identical to evaluating the interned formulas); values box and
      // lineage interns on demand (ValuesOfRow / MaterializeLineage), so
      // nothing per-row is allocated for rows the policy filter releases.
      ScopedSpan span(trace, "lineage");
      result.rows.resize(vec.num_rows);
      for (size_t i = 0; i < vec.num_rows; ++i) {
        result.rows[i].confidence = vec.ScanRowConfidence(i);
      }
      result.vec_stats = executor.stats();
      result.columnar = std::make_shared<const VecResult>(std::move(vec));
      result.defer_values = true;
      result.defer_lineage = true;
      return result;
    }
    {
      ScopedSpan span(trace, "execute-lineage");
      result.arena->Reserve(vec.num_rows);
      result.rows.resize(vec.num_rows);
      for (size_t i = 0; i < vec.num_rows; ++i) {
        result.rows[i].lineage = executor.RowLineage(vec, i);
      }
    }
    {
      // Confidences fold directly over the column chunks' confidence
      // vectors (memoized per lineage node) — bit-identical to the row
      // path's snapshot-then-evaluate, without building a ConfidenceMap.
      ScopedSpan span(trace, "lineage");
      for (QueryResult::Row& row : result.rows) {
        row.confidence = executor.ConfidenceOf(row.lineage);
      }
    }
    result.vec_stats = executor.stats();
    if (materialize_values) {
      ScopedSpan span(trace, "materialize");
      for (size_t i = 0; i < vec.num_rows; ++i) {
        std::vector<Value>& values = result.rows[i].values;
        values.reserve(num_columns);
        for (size_t c = 0; c < num_columns; ++c) {
          values.push_back(vec.BoxedValue(c, i));
        }
      }
    } else {
      // Values-deferred: the factorized payload boxes on demand
      // (ValuesOfRow); lineage is already interned (grouped results carry
      // per-group formulas, so deferral would save nothing).
      result.columnar = std::make_shared<const VecResult>(std::move(vec));
      result.defer_values = true;
    }
    return result;
  }

  {
    ScopedSpan span(trace, "execute");
    Executor executor(result.arena.get(), profile != nullptr ? &profiler : nullptr);
    PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> rows, executor.Run(*plan));
    result.vec_stats = executor.stats();
    result.rows.reserve(rows.size());
    for (ExecRow& row : rows) {
      result.rows.push_back({std::move(row.values), row.lineage, 0.0});
    }
    span.Annotate("rows", std::to_string(result.rows.size()));
  }

  {
    ScopedSpan span(trace, "lineage");
    PCQE_ASSIGN_OR_RETURN(ConfidenceMap confidences,
                          SnapshotConfidences(catalog, result));
    result.RecomputeConfidences(confidences);
  }
  return result;
}

}  // namespace pcqe
