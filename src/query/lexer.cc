#include "query/lexer.h"

#include <cctype>
#include <set>

#include "common/string_util.h"

namespace pcqe {

bool Token::IsKeyword(const std::string& kw) const {
  return type == TokenType::kKeyword && EqualsIgnoreCaseAscii(text, kw);
}

bool Token::IsOperator(const std::string& op) const {
  return type == TokenType::kOperator && text == op;
}

bool IsReservedWord(const std::string& upper) {
  static const std::set<std::string> kWords = {
      "SELECT", "DISTINCT", "ALL",    "FROM",  "WHERE", "AS",       "JOIN",
      "INNER",  "ON",       "AND",    "OR",    "NOT",   "LIKE",     "IS",
      "NULL",   "TRUE",     "FALSE",  "UNION", "EXCEPT", "INTERSECT",
      "ORDER",  "BY",       "ASC",    "DESC",  "LIMIT",
      "GROUP",  "HAVING",   "COUNT",  "SUM",   "AVG",   "MIN",      "MAX",
      "IN",     "BETWEEN"};
  return kWords.count(upper) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto error = [&](const std::string& msg, size_t at) {
    return Status::ParseError(StrFormat("%s at offset %zu", msg.c_str(), at));
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpperAscii(word);
      if (IsReservedWord(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    // Numbers: digits, optional fraction, optional exponent.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t exp_start = i;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        } else {
          i = exp_start;  // 'e' belongs to a following identifier, not this number
        }
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        sql.substr(start, i - start), start});
      continue;
    }
    // String literals with '' escaping.
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i++];
      }
      if (!closed) return error("unterminated string literal", start);
      tokens.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Two-character operators.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
        tokens.push_back({TokenType::kOperator, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    // Single-character operators.
    switch (c) {
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case '(':
      case ')':
      case ',':
      case '.':
      case ';':
        tokens.push_back({TokenType::kOperator, std::string(1, c), start});
        ++i;
        continue;
      default:
        return error(StrFormat("unexpected character '%c'", c), start);
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace pcqe
