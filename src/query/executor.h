// Copyright (c) PCQE contributors.
// Plan interpreter with Trio-style lineage propagation.

#ifndef PCQE_QUERY_EXECUTOR_H_
#define PCQE_QUERY_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "lineage/lineage.h"
#include "query/execution_mode.h"
#include "query/plan.h"
#include "telemetry/profile.h"

namespace pcqe {

/// \brief One in-flight row: values plus the lineage formula describing
/// which base tuples it derives from.
struct ExecRow {
  std::vector<Value> values;
  LineageRef lineage = kNullLineage;
};

/// \brief Interprets plan trees.
///
/// Lineage propagation per operator:
/// - Scan emits `Var(tuple_id)` per base tuple;
/// - Filter / Project / Sort / Limit pass lineage through;
/// - Join emits `AND(left, right)`;
/// - Distinct and Union group equal rows and emit `OR` over the group;
/// - Intersect emits `AND(or_left, or_right)` per common row;
/// - Except emits `AND(or_left, NOT(or_right))` per left row that also
///   occurs on the right (the row survives exactly in worlds where no right
///   derivation holds), and `or_left` for rows absent from the right.
///
/// All lineage nodes are allocated into the arena supplied at construction;
/// returned `LineageRef`s remain valid for that arena's lifetime.
class Executor {
 public:
  /// `arena` must outlive every row returned by `Run`. A non-null `profiler`
  /// collects one `OperatorProfile` node per executed operator
  /// (`EXPLAIN ANALYZE`); the default costs one branch per operator.
  explicit Executor(LineageArena* arena, OperatorProfiler* profiler = nullptr)
      : arena_(arena), profiler_(profiler) {}

  /// Executes `plan` and materializes all result rows.
  [[nodiscard]] Result<std::vector<ExecRow>> Run(const PlanNode& plan);

  /// Per-query counters (only `pruned_rows` is ever non-zero for this
  /// engine; the chunk-level fields belong to the vectorized interpreter).
  const VecExecStats& stats() const { return stats_; }

 private:
  /// The unprofiled interpreter switch; `Run` wraps it with profiling.
  [[nodiscard]] Result<std::vector<ExecRow>> Dispatch(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunScan(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunFilter(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunProject(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunJoin(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunDistinct(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunSetOp(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunSort(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunLimit(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunAggregate(const PlanNode& plan);
  [[nodiscard]] Result<std::vector<ExecRow>> RunConfidencePrune(const PlanNode& plan);

  LineageArena* arena_;
  OperatorProfiler* profiler_;
  VecExecStats stats_;
};

}  // namespace pcqe

#endif  // PCQE_QUERY_EXECUTOR_H_
