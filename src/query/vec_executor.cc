#include "query/vec_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "query/exec_common.h"
#include "relational/column_chunk.h"

namespace pcqe {

using exec_internal::EvalPredicate;
using exec_internal::SplitJoinPredicate;
using exec_internal::ValueVecEq;
using exec_internal::ValueVecHash;

namespace {

/// Splits an AND tree into conjuncts, left to right (same order the row
/// engine's join-predicate splitter walks).
void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {  // NOLINT(misc-no-recursion)
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kBinary && e->binary_op() == BinaryOp::kAnd) {
    FlattenConjuncts(e->left(), out);
    FlattenConjuncts(e->right(), out);
    return;
  }
  out->push_back(e);
}

/// Shape of a kernelizable comparison conjunct.
struct KernelShape {
  BinaryOp op = BinaryOp::kEq;
  size_t col_a = 0;
  /// Second column for column-column compares, else -1 (literal compare).
  int col_b = -1;
  const Value* literal = nullptr;
  /// True when the expression was `literal op column` — the comparison sign
  /// flips relative to `column op literal`.
  bool flipped = false;
};

bool IsCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Matches `col op literal`, `literal op col` or `col op col`; these cannot
/// error during evaluation, so applying them conjunct-by-conjunct preserves
/// the row engine's error behavior exactly.
std::optional<KernelShape> MatchFilterKernel(const Expr& e) {
  if (e.kind() != ExprKind::kBinary || !IsCompareOp(e.binary_op())) return std::nullopt;
  const Expr* l = e.left();
  const Expr* r = e.right();
  KernelShape shape;
  shape.op = e.binary_op();
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kColumnRef) {
    shape.col_a = l->column_index();
    shape.col_b = static_cast<int>(r->column_index());
    return shape;
  }
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
    shape.col_a = l->column_index();
    shape.literal = &r->literal();
    return shape;
  }
  if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumnRef) {
    shape.col_a = r->column_index();
    shape.literal = &l->literal();
    shape.flipped = true;
    return shape;
  }
  return std::nullopt;
}

/// Mirror of `Value::Compare`'s numeric branch: both sides as doubles,
/// sign of the difference. Kernels must match its rounding exactly.
inline int NumericCompare(double a, double b) {
  double d = a - b;
  return d < 0 ? -1 : (d > 0 ? 1 : 0);
}

/// Applies comparison `op` to a three-way result, honoring operand flip.
inline bool CompareKeeps(BinaryOp op, int c, bool flipped) {
  if (flipped) c = -c;
  switch (op) {
    case BinaryOp::kEq:
      return c == 0;
    case BinaryOp::kNe:
      return c != 0;
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLe:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    case BinaryOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

/// Resolved fast access to a borrowed typed column.
struct BorrowedColumn {
  const TableColumnData* data = nullptr;
  const std::vector<uint32_t>* sel = nullptr;
  size_t base_col = 0;
  DataType type = DataType::kNull;
};

std::optional<BorrowedColumn> ResolveBorrowed(const VecResult& r, size_t col) {
  const VecColumn& c = r.columns[col];
  if (c.borrowed_factor < 0) return std::nullopt;
  const VecFactor& f = r.factors[static_cast<size_t>(c.borrowed_factor)];
  BorrowedColumn b;
  b.data = &f.table->column_data();
  b.sel = &f.sel;
  b.base_col = c.base_col;
  b.type = f.table->schema().column(c.base_col).type;
  return b;
}

}  // namespace

Result<VecResult> VectorExecutor::Run(const PlanNode& plan) {  // NOLINT(misc-no-recursion)
  if (profiler_ == nullptr) return Dispatch(plan);
  size_t node = profiler_->Begin(plan.Summary());
  uint64_t chunks_before = stats_.chunks_scanned;
  uint64_t fallback_before = stats_.fallback_rows;
  uint64_t arena_before = arena_->size();
  uint64_t pruned_chunks_before = stats_.pruned_chunks;
  uint64_t pruned_rows_before = stats_.pruned_rows;
  Result<VecResult> result = Dispatch(plan);
  OperatorProfiler::Extra extra;
  extra.chunks = stats_.chunks_scanned - chunks_before;
  extra.fallback_rows = stats_.fallback_rows - fallback_before;
  extra.arena_nodes = arena_->size() - arena_before;
  extra.pruned_chunks = stats_.pruned_chunks - pruned_chunks_before;
  extra.pruned_rows = stats_.pruned_rows - pruned_rows_before;
  if (result.ok()) {
    for (const VecFactor& f : result->factors) {
      if (f.table != nullptr) {
        ++extra.scan_factors;
      } else {
        ++extra.mat_factors;
      }
    }
  }
  profiler_->End(node, result.ok() ? result->num_rows : 0, extra);
  return result;
}

Result<VecResult> VectorExecutor::Dispatch(
    const PlanNode& plan) {  // NOLINT(misc-no-recursion)
  switch (plan.kind) {
    case PlanKind::kScan:
      return RunScan(plan);
    case PlanKind::kFilter:
      return RunFilter(plan);
    case PlanKind::kProject:
      return RunProject(plan);
    case PlanKind::kJoin:
      return RunJoin(plan);
    case PlanKind::kSort:
      return RunSort(plan);
    case PlanKind::kLimit:
      return RunLimit(plan);
    case PlanKind::kDistinct:
    case PlanKind::kUnionAll:
    case PlanKind::kUnion:
    case PlanKind::kExcept:
    case PlanKind::kIntersect:
    case PlanKind::kAggregate:
      return RunGrouping(plan);
    case PlanKind::kConfidencePrune:
      return RunConfidencePrune(plan);
  }
  return Status::Internal("unknown plan kind");
}

Result<VecResult> VectorExecutor::RunConfidencePrune(const PlanNode& plan) {
  // Fused into the scan: the selection vector is built straight from the
  // confidence chunks instead of scanning everything and filtering after.
  PCQE_CHECK(plan.left != nullptr && plan.left->kind == PlanKind::kScan &&
             plan.left->table != nullptr);
  const Table* table = plan.left->table;
  const TableColumnData& data = table->column_data();
  tables_by_id_[table->table_id()] = table;

  // Zone-map bounds are only trusted when they describe exactly this data
  // (the cache validates version and row count at plan time; re-checking the
  // shape here keeps a stale snapshot from ever skipping live rows).
  const ConfidenceZoneMap* zones = plan.zone_map.get();
  if (zones != nullptr && (zones->num_rows != data.num_rows() ||
                           zones->chunks.size() != data.num_chunks())) {
    zones = nullptr;
  }

  VecFactor factor;
  factor.table = table;
  factor.sel.reserve(data.num_rows());
  for (size_t c = 0; c < data.num_chunks(); ++c) {
    const std::vector<double>& conf = data.confidence_chunk(c);
    auto base = static_cast<uint32_t>(c * kColumnChunkCapacity);
    if (zones != nullptr) {
      // Keep test: conf > β + ε (the exact complement of the policy filter's
      // blocking test). Chunk max at or below the bar → nothing survives.
      if (!(zones->chunks[c].max > plan.prune_beta + kEpsilon)) {
        ++stats_.pruned_chunks;
        stats_.pruned_rows += conf.size();
        continue;
      }
      if (zones->chunks[c].min > plan.prune_beta + kEpsilon) {
        // Whole chunk clears the bar: emit without per-row tests.
        ++stats_.chunks_scanned;
        stats_.rows_scanned += conf.size();
        for (uint32_t i = 0; i < conf.size(); ++i) factor.sel.push_back(base + i);
        continue;
      }
    }
    ++stats_.chunks_scanned;
    for (uint32_t i = 0; i < conf.size(); ++i) {
      if (conf[i] > plan.prune_beta + kEpsilon) {
        factor.sel.push_back(base + i);
        ++stats_.rows_scanned;
      } else {
        ++stats_.pruned_rows;
      }
    }
  }

  VecResult out;
  out.num_rows = factor.sel.size();
  out.factors.push_back(std::move(factor));
  out.columns.resize(data.num_columns());
  for (size_t c = 0; c < data.num_columns(); ++c) {
    out.columns[c].borrowed_factor = 0;
    out.columns[c].base_col = c;
  }
  return out;
}

Result<VecResult> VectorExecutor::RunScan(const PlanNode& plan) {
  PCQE_CHECK(plan.table != nullptr);
  const TableColumnData& data = plan.table->column_data();
  tables_by_id_[plan.table->table_id()] = plan.table;

  VecResult out;
  out.num_rows = data.num_rows();
  VecFactor factor;
  factor.table = plan.table;
  factor.sel.resize(out.num_rows);
  for (uint32_t i = 0; i < out.num_rows; ++i) factor.sel[i] = i;
  out.factors.push_back(std::move(factor));
  out.columns.resize(data.num_columns());
  for (size_t c = 0; c < data.num_columns(); ++c) {
    out.columns[c].borrowed_factor = 0;
    out.columns[c].base_col = c;
  }
  stats_.chunks_scanned += data.num_chunks();
  stats_.rows_scanned += data.num_rows();
  return out;
}

bool VectorExecutor::TryFilterKernel(const VecResult& r, const Expr& conjunct,
                                     std::vector<uint32_t>* candidates) {
  std::optional<KernelShape> shape = MatchFilterKernel(conjunct);
  if (!shape.has_value()) return false;

  std::vector<uint32_t> keep;
  keep.reserve(candidates->size());

  if (shape->col_b >= 0) {
    // Column-column compare: boxed path (either column layout), identical
    // semantics to Eval (NULL operand drops the row, else Value::Compare).
    size_t col_b = static_cast<size_t>(shape->col_b);
    for (uint32_t i : *candidates) {
      Value a = ColumnValue(r, shape->col_a, i);
      Value b = ColumnValue(r, col_b, i);
      if (a.is_null() || b.is_null()) continue;
      if (CompareKeeps(shape->op, a.Compare(b), false)) keep.push_back(i);
    }
    *candidates = std::move(keep);
    return true;
  }

  const Value& lit = *shape->literal;
  std::optional<BorrowedColumn> borrowed = ResolveBorrowed(r, shape->col_a);

  if (borrowed.has_value() && borrowed->type == DataType::kInt64 &&
      lit.type() == DataType::kInt64) {
    double lv = static_cast<double>(*lit.AsInt());
    for (uint32_t i : *candidates) {
      uint32_t base = (*borrowed->sel)[i];
      const ColumnChunk& ch =
          borrowed->data->chunk(borrowed->base_col, TableColumnData::ChunkOf(base));
      size_t off = TableColumnData::OffsetOf(base);
      if (ch.IsNull(off)) continue;
      int c = NumericCompare(static_cast<double>(ch.IntAt(off)), lv);
      if (CompareKeeps(shape->op, c, shape->flipped)) keep.push_back(i);
    }
  } else if (borrowed.has_value() && borrowed->type == DataType::kDouble &&
             (lit.type() == DataType::kDouble || lit.type() == DataType::kInt64)) {
    double lv = *lit.AsDouble();
    for (uint32_t i : *candidates) {
      uint32_t base = (*borrowed->sel)[i];
      const ColumnChunk& ch =
          borrowed->data->chunk(borrowed->base_col, TableColumnData::ChunkOf(base));
      size_t off = TableColumnData::OffsetOf(base);
      if (ch.IsNull(off)) continue;
      int c = NumericCompare(ch.DoubleAt(off), lv);
      if (CompareKeeps(shape->op, c, shape->flipped)) keep.push_back(i);
    }
  } else {
    // Boxed fallback kernel: any column layout / type pairing.
    for (uint32_t i : *candidates) {
      Value v = ColumnValue(r, shape->col_a, i);
      if (v.is_null() || lit.is_null()) continue;
      if (CompareKeeps(shape->op, v.Compare(lit), shape->flipped)) keep.push_back(i);
    }
  }
  *candidates = std::move(keep);
  return true;
}

Result<VecResult> VectorExecutor::RunFilter(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(VecResult in, Run(*plan.left));

  std::vector<uint32_t> candidates(in.num_rows);
  for (uint32_t i = 0; i < in.num_rows; ++i) candidates[i] = i;

  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(plan.predicate.get(), &conjuncts);
  bool all_kernels = !conjuncts.empty();
  for (const Expr* c : conjuncts) {
    if (!MatchFilterKernel(*c).has_value()) {
      all_kernels = false;
      break;
    }
  }

  if (all_kernels) {
    for (const Expr* c : conjuncts) {
      if (candidates.empty()) break;
      PCQE_CHECK(TryFilterKernel(in, *c, &candidates));
    }
  } else {
    // Whole-predicate fallback: gather each row and evaluate exactly as the
    // row engine does, so Kleene logic and evaluation errors match.
    std::vector<uint32_t> keep;
    keep.reserve(candidates.size());
    for (uint32_t i : candidates) {
      GatherRow(in, i, &row_scratch_);
      PCQE_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*plan.predicate, row_scratch_));
      if (ok) keep.push_back(i);
    }
    stats_.fallback_rows += candidates.size();
    candidates = std::move(keep);
  }

  ApplySelection(&in, candidates);
  return in;
}

Result<VecResult> VectorExecutor::RunProject(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(VecResult in, Run(*plan.left));

  std::vector<VecColumn> cols;
  cols.reserve(plan.projections.size());
  for (const auto& expr : plan.projections) {
    if (expr->kind() == ExprKind::kColumnRef) {
      // Pure column passthrough: keep borrowing (or copy the owned vector —
      // the same input column may be projected more than once).
      cols.push_back(in.columns[expr->column_index()]);
      continue;
    }
    VecColumn col;
    col.owned.reserve(in.num_rows);
    for (size_t i = 0; i < in.num_rows; ++i) {
      GatherRow(in, i, &row_scratch_);
      PCQE_ASSIGN_OR_RETURN(Value v, expr->Eval(row_scratch_));
      col.owned.push_back(std::move(v));
    }
    stats_.fallback_rows += in.num_rows;
    cols.push_back(std::move(col));
  }

  VecResult out;
  out.num_rows = in.num_rows;
  out.factors = std::move(in.factors);
  out.columns = std::move(cols);
  return out;
}

Result<VecResult> VectorExecutor::RunJoin(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(VecResult left, Run(*plan.left));
  PCQE_ASSIGN_OR_RETURN(VecResult right, Run(*plan.right));
  size_t left_width = plan.left->output_schema.num_columns();
  PCQE_DCHECK(left.columns.size() == left_width);

  std::vector<std::pair<size_t, size_t>> equi_pairs;
  std::vector<const Expr*> residual;
  SplitJoinPredicate(plan.predicate.get(), left_width, &equi_pairs, &residual);

  // Matched (left row, right row) pairs in the row engine's emission order:
  // probe rows in order, each key's matches in right-side insertion order.
  std::vector<uint32_t> lidx;
  std::vector<uint32_t> ridx;

  auto passes_residual = [&](uint32_t li, uint32_t ri) -> Result<bool> {
    if (residual.empty()) return true;
    row_scratch_.clear();
    row_scratch_.reserve(left.columns.size() + right.columns.size());
    for (size_t c = 0; c < left.columns.size(); ++c) {
      row_scratch_.push_back(ColumnValue(left, c, li));
    }
    for (size_t c = 0; c < right.columns.size(); ++c) {
      row_scratch_.push_back(ColumnValue(right, c, ri));
    }
    ++stats_.fallback_rows;
    for (const Expr* res : residual) {
      PCQE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*res, row_scratch_));
      if (!keep) return false;
    }
    return true;
  };

  auto note_group = [&](size_t group_rows) {
    ++stats_.join_groups;
    if (group_rows > stats_.max_group_rows) stats_.max_group_rows = group_rows;
  };

  if (!equi_pairs.empty()) {
    std::optional<BorrowedColumn> lcol;
    std::optional<BorrowedColumn> rcol;
    if (equi_pairs.size() == 1) {
      lcol = ResolveBorrowed(left, equi_pairs[0].first);
      rcol = ResolveBorrowed(right, equi_pairs[0].second);
    }
    bool int64_fast = lcol.has_value() && rcol.has_value() &&
                      lcol->type == DataType::kInt64 && rcol->type == DataType::kInt64;

    lidx.reserve(left.num_rows);
    ridx.reserve(left.num_rows);

    if (int64_fast) {
      // Typed single-key hash join: build over the right side, probe the
      // left in order. SQL equality never matches NULL keys.
      std::unordered_map<int64_t, std::vector<uint32_t>> build;
      build.reserve(right.num_rows);
      for (uint32_t i = 0; i < right.num_rows; ++i) {
        uint32_t base = (*rcol->sel)[i];
        const ColumnChunk& ch =
            rcol->data->chunk(rcol->base_col, TableColumnData::ChunkOf(base));
        size_t off = TableColumnData::OffsetOf(base);
        if (ch.IsNull(off)) continue;
        build[ch.IntAt(off)].push_back(i);
      }
      for (uint32_t i = 0; i < left.num_rows; ++i) {
        uint32_t base = (*lcol->sel)[i];
        const ColumnChunk& ch =
            lcol->data->chunk(lcol->base_col, TableColumnData::ChunkOf(base));
        size_t off = TableColumnData::OffsetOf(base);
        if (ch.IsNull(off)) continue;
        auto it = build.find(ch.IntAt(off));
        if (it == build.end()) continue;
        note_group(it->second.size());
        for (uint32_t ri : it->second) {
          PCQE_ASSIGN_OR_RETURN(bool ok, passes_residual(i, ri));
          if (!ok) continue;
          lidx.push_back(i);
          ridx.push_back(ri);
        }
      }
    } else {
      // Generic multi-key / boxed hash join.
      std::unordered_map<std::vector<Value>, std::vector<uint32_t>, ValueVecHash,
                         ValueVecEq>
          build;
      build.reserve(right.num_rows);
      std::vector<Value> key;
      for (uint32_t i = 0; i < right.num_rows; ++i) {
        key.clear();
        bool has_null = false;
        for (const auto& [l_idx, r_idx] : equi_pairs) {
          (void)l_idx;
          Value v = ColumnValue(right, r_idx, i);
          if (v.is_null()) has_null = true;
          key.push_back(std::move(v));
        }
        if (!has_null) build[key].push_back(i);
      }
      for (uint32_t i = 0; i < left.num_rows; ++i) {
        key.clear();
        bool has_null = false;
        for (const auto& [l_idx, r_idx] : equi_pairs) {
          (void)r_idx;
          Value v = ColumnValue(left, l_idx, i);
          if (v.is_null()) has_null = true;
          key.push_back(std::move(v));
        }
        if (has_null) continue;
        auto it = build.find(key);
        if (it == build.end()) continue;
        note_group(it->second.size());
        for (uint32_t ri : it->second) {
          PCQE_ASSIGN_OR_RETURN(bool ok, passes_residual(i, ri));
          if (!ok) continue;
          lidx.push_back(i);
          ridx.push_back(ri);
        }
      }
    }
  } else {
    // Nested loop for theta joins and cross products.
    for (uint32_t i = 0; i < left.num_rows; ++i) {
      for (uint32_t ri = 0; ri < right.num_rows; ++ri) {
        PCQE_ASSIGN_OR_RETURN(bool ok, passes_residual(i, ri));
        if (!ok) continue;
        lidx.push_back(i);
        ridx.push_back(ri);
      }
    }
    if (right.num_rows > 0) {
      note_group(right.num_rows);
    }
  }

  // Compose the factorized output: factors keep their domains, only the
  // selection vectors are rewritten (no value is copied for borrowed
  // columns — this is where the cross product stays unmaterialized).
  size_t n = lidx.size();
  VecResult out;
  out.num_rows = n;
  out.factors.reserve(left.factors.size() + right.factors.size());
  for (VecFactor& f : left.factors) {
    VecFactor nf;
    nf.table = f.table;
    nf.lineages = std::move(f.lineages);
    nf.sel.resize(n);
    for (size_t j = 0; j < n; ++j) nf.sel[j] = f.sel[lidx[j]];
    out.factors.push_back(std::move(nf));
  }
  size_t left_factor_count = left.factors.size();
  for (VecFactor& f : right.factors) {
    VecFactor nf;
    nf.table = f.table;
    nf.lineages = std::move(f.lineages);
    nf.sel.resize(n);
    for (size_t j = 0; j < n; ++j) nf.sel[j] = f.sel[ridx[j]];
    out.factors.push_back(std::move(nf));
  }

  out.columns.reserve(left.columns.size() + right.columns.size());
  for (const VecColumn& c : left.columns) {
    VecColumn nc;
    if (c.borrowed_factor >= 0) {
      nc.borrowed_factor = c.borrowed_factor;
      nc.base_col = c.base_col;
    } else {
      nc.owned.reserve(n);
      for (size_t j = 0; j < n; ++j) nc.owned.push_back(c.owned[lidx[j]]);
    }
    out.columns.push_back(std::move(nc));
  }
  for (const VecColumn& c : right.columns) {
    VecColumn nc;
    if (c.borrowed_factor >= 0) {
      nc.borrowed_factor = c.borrowed_factor + static_cast<int>(left_factor_count);
      nc.base_col = c.base_col;
    } else {
      nc.owned.reserve(n);
      for (size_t j = 0; j < n; ++j) nc.owned.push_back(c.owned[ridx[j]]);
    }
    out.columns.push_back(std::move(nc));
  }
  return out;
}

Result<VecResult> VectorExecutor::RunSort(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(VecResult in, Run(*plan.left));

  std::vector<std::vector<Value>> keys(in.num_rows);
  for (size_t i = 0; i < in.num_rows; ++i) {
    GatherRow(in, i, &row_scratch_);
    keys[i].reserve(plan.sort_keys.size());
    for (const PlanNode::SortKey& k : plan.sort_keys) {
      PCQE_ASSIGN_OR_RETURN(Value v, k.expr->Eval(row_scratch_));
      keys[i].push_back(std::move(v));
    }
  }
  std::vector<uint32_t> order(in.num_rows);
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
      int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) return plan.sort_keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  ApplySelection(&in, order);
  return in;
}

Result<VecResult> VectorExecutor::RunLimit(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(VecResult in, Run(*plan.left));
  size_t cap = static_cast<size_t>(plan.limit);
  if (in.num_rows <= cap) return in;
  for (VecFactor& f : in.factors) f.sel.resize(cap);
  for (VecColumn& c : in.columns) {
    if (c.borrowed_factor < 0) c.owned.resize(cap);
  }
  in.num_rows = cap;
  return in;
}

Result<VecResult> VectorExecutor::RunGrouping(const PlanNode& plan) {
  size_t width = plan.output_schema.num_columns();
  if (plan.kind == PlanKind::kDistinct) {
    PCQE_ASSIGN_OR_RETURN(VecResult in, Run(*plan.left));
    PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> rows, Materialize(in));
    PCQE_ASSIGN_OR_RETURN(rows, exec_internal::DistinctRows(std::move(rows), arena_));
    return WrapRows(std::move(rows), width);
  }
  if (plan.kind == PlanKind::kAggregate) {
    PCQE_ASSIGN_OR_RETURN(VecResult in, Run(*plan.left));
    PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> rows, Materialize(in));
    PCQE_ASSIGN_OR_RETURN(rows, exec_internal::AggregateRows(plan, std::move(rows), arena_));
    return WrapRows(std::move(rows), width);
  }
  // Set operations: materialize both sides in plan order.
  PCQE_ASSIGN_OR_RETURN(VecResult left, Run(*plan.left));
  PCQE_ASSIGN_OR_RETURN(VecResult right, Run(*plan.right));
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> lrows, Materialize(left));
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> rrows, Materialize(right));
  PCQE_ASSIGN_OR_RETURN(
      std::vector<ExecRow> rows,
      exec_internal::SetOpRows(plan.kind, std::move(lrows), std::move(rrows), arena_));
  return WrapRows(std::move(rows), width);
}

Value VecResult::BoxedValue(size_t col, size_t row) const {
  const VecColumn& c = columns[col];
  if (c.borrowed_factor >= 0) {
    const VecFactor& f = factors[static_cast<size_t>(c.borrowed_factor)];
    return f.table->column_data().value(c.base_col, f.sel[row]);
  }
  return c.owned[row];
}

bool VecResult::AllScanFactors() const {
  if (factors.empty()) return false;
  for (const VecFactor& f : factors) {
    if (f.table == nullptr) return false;
  }
  return true;
}

double VecResult::ScanRowConfidence(size_t row) const {
  // One leaf per factor; a repeated (table, row) leaf — a self-join row
  // matching itself — contributes once, exactly as the `And` builder's
  // first-seen dedupe makes it. Factor counts are tiny (one per scanned
  // table), so a fixed-size scratch plus a quadratic dedupe scan suffices.
  constexpr size_t kMaxFactors = 8;
  PCQE_DCHECK(factors.size() <= kMaxFactors);
  uint64_t seen[kMaxFactors];
  size_t kept = 0;
  double p = 1.0;
  for (const VecFactor& f : factors) {
    const uint32_t r = f.sel[row];
    const uint64_t id =
        (static_cast<uint64_t>(f.table->table_id()) << 32) | static_cast<uint64_t>(r);
    bool duplicate = false;
    for (size_t j = 0; j < kept; ++j) {
      if (seen[j] == id) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen[kept++] = id;
    p *= f.table->column_data().confidence(r);
    if (p == 0.0) break;
  }
  return p;
}

LineageRef VecResult::BoxRowLineage(LineageArena* arena, size_t row,
                                    std::vector<LineageRef>* scratch) const {
  PCQE_DCHECK(!factors.empty());
  auto leaf = [&](const VecFactor& f) {
    const uint32_t r = f.sel[row];
    if (f.table == nullptr) return f.lineages[r];
    return arena->Var((static_cast<LineageVarId>(f.table->table_id()) << 32) |
                      static_cast<LineageVarId>(r));
  };
  if (factors.size() == 1) return leaf(factors[0]);
  scratch->clear();
  for (const VecFactor& f : factors) scratch->push_back(leaf(f));
  return arena->And(*scratch);
}

Value VectorExecutor::ColumnValue(const VecResult& r, size_t col, size_t row) const {
  return r.BoxedValue(col, row);
}

void VectorExecutor::GatherRow(const VecResult& r, size_t row,
                               std::vector<Value>* out) const {
  out->clear();
  out->reserve(r.columns.size());
  for (size_t c = 0; c < r.columns.size(); ++c) {
    out->push_back(ColumnValue(r, c, row));
  }
}

LineageRef VectorExecutor::FactorRef(const VecFactor& f, uint32_t row) {
  if (f.table == nullptr) return f.lineages[row];
  std::vector<LineageRef>& cache = var_cache_[f.table->table_id()];
  if (cache.size() <= row) {
    cache.resize(f.table->column_data().num_rows(), kNullLineage);
  }
  LineageRef& slot = cache[row];
  if (slot == kNullLineage) {
    slot = arena_->Var((static_cast<LineageVarId>(f.table->table_id()) << 32) |
                       static_cast<LineageVarId>(row));
  }
  return slot;
}

LineageRef VectorExecutor::RowLineage(const VecResult& r, size_t row) {
  PCQE_DCHECK(!r.factors.empty());
  if (r.factors.size() == 1) {
    return FactorRef(r.factors[0], r.factors[0].sel[row]);
  }
  lineage_scratch_.clear();
  for (const VecFactor& f : r.factors) {
    lineage_scratch_.push_back(FactorRef(f, f.sel[row]));
  }
  return arena_->And(lineage_scratch_);
}

double VectorExecutor::VarConfidence(LineageVarId id) const {
  auto it = tables_by_id_.find(static_cast<uint32_t>(id >> 32));
  PCQE_CHECK(it != tables_by_id_.end()) << "lineage variable from unscanned table";
  return it->second->column_data().confidence(static_cast<size_t>(id & 0xFFFFFFFFULL));
}

double VectorExecutor::ConfidenceOf(LineageRef ref) {  // NOLINT(misc-no-recursion)
  if (conf_cache_.size() < arena_->size()) {
    conf_cache_.resize(arena_->size(), std::numeric_limits<double>::quiet_NaN());
  }
  double cached = conf_cache_[ref];
  if (!std::isnan(cached)) return cached;
  double p = 0.0;
  switch (arena_->op(ref)) {
    case LineageOp::kFalse:
      p = 0.0;
      break;
    case LineageOp::kTrue:
      p = 1.0;
      break;
    case LineageOp::kVar:
      p = VarConfidence(arena_->var(ref));
      break;
    case LineageOp::kNot:
      p = 1.0 - ConfidenceOf(arena_->children(ref)[0]);
      break;
    case LineageOp::kAnd: {
      p = 1.0;
      for (LineageRef c : arena_->children(ref)) {
        p *= ConfidenceOf(c);
        if (p == 0.0) break;
      }
      break;
    }
    case LineageOp::kOr: {
      double q = 1.0;
      for (LineageRef c : arena_->children(ref)) {
        q *= 1.0 - ConfidenceOf(c);
        if (q == 0.0) break;
      }
      p = 1.0 - q;
      break;
    }
  }
  conf_cache_[ref] = p;
  return p;
}

Result<std::vector<ExecRow>> VectorExecutor::Materialize(const VecResult& r) {
  std::vector<ExecRow> rows;
  rows.reserve(r.num_rows);
  arena_->Reserve(r.num_rows);
  for (size_t i = 0; i < r.num_rows; ++i) {
    ExecRow row;
    row.values.reserve(r.columns.size());
    for (size_t c = 0; c < r.columns.size(); ++c) {
      row.values.push_back(ColumnValue(r, c, i));
    }
    row.lineage = RowLineage(r, i);
    rows.push_back(std::move(row));
  }
  return rows;
}

VecResult VectorExecutor::WrapRows(std::vector<ExecRow> rows, size_t num_columns) {
  VecResult out;
  out.num_rows = rows.size();
  VecFactor factor;
  factor.lineages.resize(rows.size());
  factor.sel.resize(rows.size());
  out.columns.resize(num_columns);
  for (VecColumn& c : out.columns) c.owned.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    PCQE_DCHECK(rows[i].values.size() == num_columns);
    factor.lineages[i] = rows[i].lineage;
    factor.sel[i] = static_cast<uint32_t>(i);
    for (size_t c = 0; c < num_columns; ++c) {
      out.columns[c].owned.push_back(std::move(rows[i].values[c]));
    }
  }
  out.factors.push_back(std::move(factor));
  return out;
}

void VectorExecutor::ApplySelection(VecResult* r, const std::vector<uint32_t>& keep) {
  for (VecFactor& f : r->factors) {
    std::vector<uint32_t> nsel(keep.size());
    for (size_t j = 0; j < keep.size(); ++j) nsel[j] = f.sel[keep[j]];
    f.sel = std::move(nsel);
  }
  for (VecColumn& c : r->columns) {
    if (c.borrowed_factor >= 0) continue;
    std::vector<Value> nv;
    nv.reserve(keep.size());
    for (uint32_t j : keep) nv.push_back(c.owned[j]);
    c.owned = std::move(nv);
  }
  r->num_rows = keep.size();
}

}  // namespace pcqe
