// Copyright (c) PCQE contributors.
// Physical query plans interpreted by the executor.

#ifndef PCQE_QUERY_PLAN_H_
#define PCQE_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "query/confidence_index.h"
#include "query/expression.h"
#include "relational/table.h"

namespace pcqe {

/// \brief Plan operator kinds.
enum class PlanKind : uint8_t {
  kScan,      ///< base-table scan; lineage = Var(tuple id)
  kFilter,    ///< predicate; lineage unchanged
  kProject,   ///< compute output columns; lineage unchanged
  kJoin,      ///< inner join (hash fast-path); lineage = AND
  kDistinct,  ///< duplicate elimination; lineage = OR over duplicates
  kUnionAll,  ///< bag concatenation; lineage unchanged
  kUnion,     ///< set union; lineage = OR over duplicates across inputs
  kExcept,    ///< set difference; lineage = left AND NOT(right)
  kIntersect, ///< set intersection; lineage = left AND right
  kSort,      ///< order by; lineage unchanged
  kLimit,     ///< first-n; lineage unchanged
  kAggregate, ///< GROUP BY + aggregate functions; lineage = AND over group
  /// β pushdown pre-filter over a kScan child: drops base tuples whose
  /// confidence can never clear the policy threshold (confidence is monotone
  /// non-increasing under conjunction, so such tuples can only produce
  /// blocked rows). Inserted by the planner only when a request carries β
  /// and the plan shape is pushdown-safe; see confidence_index.h.
  kConfidencePrune,
};

/// Operator name ("Scan", "HashJoin"-agnostic "Join", ...).
std::string PlanKindToString(PlanKind kind);

/// \brief One node of a physical plan tree.
///
/// Plans are produced by the planner (see planner.h) with every expression
/// already bound against the child layout and `output_schema` computed, so
/// the executor is a pure interpreter. Fields are public in the spirit of a
/// plain data container; the planner is the only writer.
struct PlanNode {
  PlanKind kind;
  /// Schema of the rows this node emits (drives parent binding).
  Schema output_schema;

  /// \name Children (empty / one / two depending on `kind`).
  /// @{
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;
  /// @}

  /// kScan: the table to read. Non-owning; the catalog outlives the plan.
  const Table* table = nullptr;

  /// kFilter / kJoin: predicate, bound against `output_schema` of the child
  /// (filter) or the concatenation of both children (join).
  std::unique_ptr<Expr> predicate;

  /// kProject: one bound expression per output column.
  std::vector<std::unique_ptr<Expr>> projections;

  /// kSort: bound keys with direction.
  struct SortKey {
    std::unique_ptr<Expr> expr;
    bool ascending = true;
  };
  std::vector<SortKey> sort_keys;

  /// kLimit: row cap (>= 0).
  int64_t limit = 0;

  /// kAggregate: grouping keys, bound against the child. Empty keys mean
  /// one global group.
  std::vector<std::unique_ptr<Expr>> group_keys;

  /// kConfidencePrune: the policy threshold β; keep a base tuple iff its
  /// confidence strictly clears it (the exact complement of the policy
  /// filter's blocking test, ε included).
  double prune_beta = 0.0;

  /// kConfidencePrune: chunk-granular confidence bounds snapshotted at plan
  /// time (shared so the plan keeps its snapshot across invalidations).
  /// Null degrades to row-exact pruning — same results, no chunk skipping.
  std::shared_ptr<const ConfidenceZoneMap> zone_map;

  /// kAggregate: one aggregate computation per synthetic `__agg<i>` output
  /// column.
  struct AggregateSpec {
    AggFunc func = AggFunc::kCount;
    /// Argument, bound against the child; null for COUNT(*).
    std::unique_ptr<Expr> arg;
  };
  std::vector<AggregateSpec> aggregates;

  /// One-line operator summary without schema or children (`Scan orders`,
  /// `Filter (amount < 100)`); the label `EXPLAIN ANALYZE` profiles under.
  std::string Summary() const;

  /// Indented multi-line plan rendering for EXPLAIN-style diagnostics.
  std::string ToString(int indent = 0) const;
};

}  // namespace pcqe

#endif  // PCQE_QUERY_PLAN_H_
