#include "query/planner.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace pcqe {

namespace {

/// Cross join: pure concatenation, no predicate (executor treats a null
/// join predicate as always-true).
std::unique_ptr<PlanNode> MakeJoin(std::unique_ptr<PlanNode> left,
                                   std::unique_ptr<PlanNode> right,
                                   std::unique_ptr<Expr> condition) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kJoin;
  node->output_schema = left->output_schema.Concat(right->output_schema);
  node->left = std::move(left);
  node->right = std::move(right);
  node->predicate = std::move(condition);
  return node;
}

/// Splits an AND tree into its conjunct leaves (cloned).
void SplitConjuncts(const Expr* expr, std::vector<std::unique_ptr<Expr>>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kBinary && expr->binary_op() == BinaryOp::kAnd) {
    SplitConjuncts(expr->left(), out);
    SplitConjuncts(expr->right(), out);
    return;
  }
  out->push_back(expr->Clone());
}

/// Wraps `child` in a Filter for `predicate` (already bound to the child).
std::unique_ptr<PlanNode> MakeFilter(std::unique_ptr<PlanNode> child,
                                     std::unique_ptr<Expr> predicate) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kFilter;
  node->output_schema = child->output_schema;
  node->predicate = std::move(predicate);
  node->left = std::move(child);
  return node;
}

/// Rebuilds one predicate from conjuncts (nullptr when empty), bound
/// against `schema`.
Result<std::unique_ptr<Expr>> CombineConjuncts(
    std::vector<std::unique_ptr<Expr>> conjuncts, const Schema& schema) {
  std::unique_ptr<Expr> combined;
  for (auto& c : conjuncts) {
    combined = combined ? Expr::Binary(BinaryOp::kAnd, std::move(combined), std::move(c))
                        : std::move(c);
  }
  if (combined) PCQE_RETURN_NOT_OK(combined->Bind(schema));
  return combined;
}

class Planner {
 public:
  explicit Planner(const Catalog& catalog) : catalog_(catalog) {}

  Result<std::unique_ptr<PlanNode>> Plan(const SelectStatement& stmt) {
    PCQE_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan, PlanCore(stmt));

    // Set-operation chain, left-associative.
    const SelectStatement* cur = &stmt;
    while (cur->set_op != SetOpKind::kNone) {
      const SelectStatement& rhs_stmt = *cur->set_rhs;
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> rhs, PlanCore(rhs_stmt));
      if (rhs->output_schema.num_columns() != plan->output_schema.num_columns()) {
        return Status::BindError(StrFormat(
            "set operation inputs have different arity: %zu vs %zu",
            plan->output_schema.num_columns(), rhs->output_schema.num_columns()));
      }
      auto node = std::make_unique<PlanNode>();
      switch (cur->set_op) {
        case SetOpKind::kUnion:
          node->kind = PlanKind::kUnion;
          break;
        case SetOpKind::kUnionAll:
          node->kind = PlanKind::kUnionAll;
          break;
        case SetOpKind::kExcept:
          node->kind = PlanKind::kExcept;
          break;
        case SetOpKind::kIntersect:
          node->kind = PlanKind::kIntersect;
          break;
        case SetOpKind::kNone:
          return Status::Internal("unreachable set op");
      }
      node->output_schema = plan->output_schema;
      node->left = std::move(plan);
      node->right = std::move(rhs);
      plan = std::move(node);
      cur = cur->set_rhs.get();
    }

    // ORDER BY binds against the final output schema, so aliases introduced
    // in the select list are referencable.
    if (!stmt.order_by.empty()) {
      auto node = std::make_unique<PlanNode>();
      node->kind = PlanKind::kSort;
      node->output_schema = plan->output_schema;
      for (const OrderByItem& item : stmt.order_by) {
        PlanNode::SortKey key;
        key.expr = item.expr->Clone();
        PCQE_RETURN_NOT_OK(key.expr->Bind(node->output_schema));
        key.ascending = item.ascending;
        node->sort_keys.push_back(std::move(key));
      }
      node->left = std::move(plan);
      plan = std::move(node);
    }

    if (stmt.limit >= 0) {
      auto node = std::make_unique<PlanNode>();
      node->kind = PlanKind::kLimit;
      node->output_schema = plan->output_schema;
      node->limit = stmt.limit;
      node->left = std::move(plan);
      plan = std::move(node);
    }
    return plan;
  }

 private:
  /// Plans one SELECT core (no set ops / ORDER BY / LIMIT).
  Result<std::unique_ptr<PlanNode>> PlanCore(const SelectStatement& stmt) {
    if (stmt.from.empty()) {
      return Status::BindError("FROM clause is required");
    }

    if (stmt.where && stmt.where->ContainsAggregate()) {
      return Status::BindError("aggregates are not allowed in WHERE (use HAVING)");
    }

    // Plan every source (FROM list + explicit JOIN tables, in order).
    std::vector<std::unique_ptr<PlanNode>> sources;
    for (const TableRef& ref : stmt.from) {
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> src, PlanTableRef(ref));
      sources.push_back(std::move(src));
    }
    for (const JoinClause& join : stmt.joins) {
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> src, PlanTableRef(join.table));
      sources.push_back(std::move(src));
    }

    // Collect conjuncts from WHERE and every ON condition. All joins are
    // inner, so `A JOIN B ON c` ≡ `A, B WHERE c` and each conjunct may be
    // evaluated at the *lowest* level of the join chain where its columns
    // are in scope (predicate pushdown).
    std::vector<std::unique_ptr<Expr>> conjuncts;
    SplitConjuncts(stmt.where.get(), &conjuncts);
    for (const JoinClause& join : stmt.joins) {
      SplitConjuncts(join.condition.get(), &conjuncts);
    }

    // Validation pass against the full scope: surfaces unknown columns,
    // ambiguous references and type errors exactly as an un-pushed filter
    // would, so pushdown never changes which queries are accepted.
    Schema full_schema;
    for (const auto& src : sources) {
      full_schema = full_schema.Concat(src->output_schema);
    }
    for (const auto& conjunct : conjuncts) {
      std::unique_ptr<Expr> probe = conjunct->Clone();
      PCQE_RETURN_NOT_OK(probe->Bind(full_schema));
      if (probe->result_type() != DataType::kBool &&
          probe->result_type() != DataType::kNull) {
        return Status::BindError("WHERE/ON conditions must be BOOLEAN");
      }
    }

    // Single-source conjuncts become filters directly above their source.
    std::vector<bool> placed(conjuncts.size(), false);
    for (auto& src : sources) {
      std::vector<std::unique_ptr<Expr>> local;
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (placed[c]) continue;
        std::unique_ptr<Expr> probe = conjuncts[c]->Clone();
        if (probe->Bind(src->output_schema).ok()) {
          local.push_back(std::move(probe));
          placed[c] = true;
        }
      }
      if (!local.empty()) {
        PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> predicate,
                              CombineConjuncts(std::move(local), src->output_schema));
        src = MakeFilter(std::move(src), std::move(predicate));
      }
    }

    // Left-deep join chain; each remaining conjunct attaches to the first
    // join whose combined scope covers it (equi conjuncts there feed the
    // executor's hash-join fast path).
    std::unique_ptr<PlanNode> plan = std::move(sources[0]);
    for (size_t i = 1; i < sources.size(); ++i) {
      Schema combined = plan->output_schema.Concat(sources[i]->output_schema);
      std::vector<std::unique_ptr<Expr>> level;
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (placed[c]) continue;
        std::unique_ptr<Expr> probe = conjuncts[c]->Clone();
        if (probe->Bind(combined).ok()) {
          level.push_back(std::move(probe));
          placed[c] = true;
        }
      }
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> condition,
                            CombineConjuncts(std::move(level), combined));
      plan = MakeJoin(std::move(plan), std::move(sources[i]), std::move(condition));
    }
    // The validation pass guarantees every conjunct bound somewhere.
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      PCQE_CHECK(placed[c]) << "conjunct not placed: " << conjuncts[c]->ToString();
    }

    // Aggregation: explicit GROUP BY, or aggregate calls in SELECT/HAVING.
    bool aggregating = !stmt.group_by.empty();
    if (stmt.having) aggregating = true;
    for (const SelectItem& item : stmt.select_list) {
      if (item.expr && item.expr->ContainsAggregate()) aggregating = true;
    }
    if (aggregating) {
      PCQE_ASSIGN_OR_RETURN(plan, PlanAggregation(stmt, std::move(plan)));
      if (stmt.distinct) {
        auto node = std::make_unique<PlanNode>();
        node->kind = PlanKind::kDistinct;
        node->output_schema = plan->output_schema;
        node->left = std::move(plan);
        plan = std::move(node);
      }
      return plan;
    }

    // Select list. A lone `*` needs no projection node.
    bool lone_star = stmt.select_list.size() == 1 && stmt.select_list[0].is_star;
    if (!lone_star) {
      auto node = std::make_unique<PlanNode>();
      node->kind = PlanKind::kProject;
      const Schema& input = plan->output_schema;
      for (const SelectItem& item : stmt.select_list) {
        if (item.is_star) {
          // Expand into one column-ref projection per input column.
          for (size_t c = 0; c < input.num_columns(); ++c) {
            auto ref = Expr::ColumnRef(input.column(c).QualifiedName());
            PCQE_RETURN_NOT_OK(ref->Bind(input));
            node->projections.push_back(std::move(ref));
            node->output_schema.AddColumn(input.column(c));
          }
          continue;
        }
        std::unique_ptr<Expr> expr = item.expr->Clone();
        PCQE_RETURN_NOT_OK(expr->Bind(input));
        Column out;
        out.type = expr->result_type();
        if (!item.alias.empty()) {
          out.name = item.alias;
        } else if (expr->kind() == ExprKind::kColumnRef) {
          const Column& src = input.column(expr->column_index());
          out.name = src.name;
          out.qualifier = src.qualifier;
        } else {
          out.name = StrFormat("col%zu", node->output_schema.num_columns());
        }
        node->projections.push_back(std::move(expr));
        node->output_schema.AddColumn(std::move(out));
      }
      node->left = std::move(plan);
      plan = std::move(node);
    }

    if (stmt.distinct) {
      auto node = std::make_unique<PlanNode>();
      node->kind = PlanKind::kDistinct;
      node->output_schema = plan->output_schema;
      node->left = std::move(plan);
      plan = std::move(node);
    }
    return plan;
  }

  /// Lowers GROUP BY + aggregates: an Aggregate node computing the keys and
  /// every lifted aggregate into synthetic `__agg<i>` columns, an optional
  /// HAVING filter on top, and a projection evaluating the rewritten SELECT
  /// expressions. Column references that are neither group keys nor
  /// aggregates fail to bind against the aggregate schema, which enforces
  /// the usual SQL rule.
  Result<std::unique_ptr<PlanNode>> PlanAggregation(const SelectStatement& stmt,
                                                    std::unique_ptr<PlanNode> child) {
    const Schema input = child->output_schema;
    auto agg = std::make_unique<PlanNode>();
    agg->kind = PlanKind::kAggregate;

    // Group keys, bound against the input; key columns keep their source
    // identity so SELECT/HAVING can reference them by name. Expression keys
    // get synthetic names and are matched in SELECT/HAVING *syntactically*
    // (SQL semantics for `GROUP BY a + b`).
    std::vector<std::pair<std::string, std::string>> key_syntax;
    for (size_t k = 0; k < stmt.group_by.size(); ++k) {
      std::unique_ptr<Expr> key = stmt.group_by[k]->Clone();
      if (key->ContainsAggregate()) {
        return Status::BindError("aggregates are not allowed in GROUP BY");
      }
      PCQE_RETURN_NOT_OK(key->Bind(input));
      Column out;
      out.type = key->result_type();
      if (key->kind() == ExprKind::kColumnRef) {
        out = input.column(key->column_index());
      } else {
        out.name = StrFormat("key%zu", k);
        key_syntax.emplace_back(key->ToString(), out.name);
      }
      agg->group_keys.push_back(std::move(key));
      agg->output_schema.AddColumn(std::move(out));
    }

    // Lift aggregates out of SELECT and HAVING.
    std::vector<std::unique_ptr<Expr>> lifted;
    std::vector<std::unique_ptr<Expr>> select_rewritten;
    std::vector<std::string> select_names;
    for (const SelectItem& item : stmt.select_list) {
      if (item.is_star) {
        return Status::BindError("'*' is not allowed with GROUP BY or aggregates");
      }
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind() == ExprKind::kColumnRef ? item.expr->column_name()
                                                         : item.expr->ToString();
      }
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rewritten,
                            Expr::LiftAggregates(item.expr->Clone(), &lifted));
      rewritten = Expr::ReplaceBySyntax(std::move(rewritten), key_syntax);
      select_rewritten.push_back(std::move(rewritten));
      select_names.push_back(std::move(name));
    }
    std::unique_ptr<Expr> having_rewritten;
    if (stmt.having) {
      PCQE_ASSIGN_OR_RETURN(having_rewritten,
                            Expr::LiftAggregates(stmt.having->Clone(), &lifted));
      having_rewritten = Expr::ReplaceBySyntax(std::move(having_rewritten), key_syntax);
    }

    // Bind and type each aggregate; append its synthetic output column.
    for (size_t i = 0; i < lifted.size(); ++i) {
      PlanNode::AggregateSpec spec;
      spec.func = lifted[i]->agg_func();
      DataType out_type = DataType::kInt64;
      if (!lifted[i]->is_count_star()) {
        spec.arg = lifted[i]->left()->Clone();
        PCQE_RETURN_NOT_OK(spec.arg->Bind(input));
        DataType arg_type = spec.arg->result_type();
        switch (spec.func) {
          case AggFunc::kCount:
            out_type = DataType::kInt64;
            break;
          case AggFunc::kSum:
            if (arg_type != DataType::kInt64 && arg_type != DataType::kDouble &&
                arg_type != DataType::kNull) {
              return Status::BindError("SUM requires a numeric argument");
            }
            out_type = arg_type == DataType::kInt64 ? DataType::kInt64 : DataType::kDouble;
            break;
          case AggFunc::kAvg:
            if (arg_type != DataType::kInt64 && arg_type != DataType::kDouble &&
                arg_type != DataType::kNull) {
              return Status::BindError("AVG requires a numeric argument");
            }
            out_type = DataType::kDouble;
            break;
          case AggFunc::kMin:
          case AggFunc::kMax:
            out_type = arg_type;
            break;
        }
      }
      agg->aggregates.push_back(std::move(spec));
      agg->output_schema.AddColumn({StrFormat("__agg%zu", i), out_type, ""});
    }
    agg->left = std::move(child);
    std::unique_ptr<PlanNode> plan = std::move(agg);

    if (having_rewritten) {
      auto filter = std::make_unique<PlanNode>();
      filter->kind = PlanKind::kFilter;
      filter->output_schema = plan->output_schema;
      filter->predicate = std::move(having_rewritten);
      Status bound = filter->predicate->Bind(filter->output_schema);
      if (!bound.ok()) {
        return bound.WithContext(
            "HAVING may only reference GROUP BY keys and aggregates");
      }
      if (filter->predicate->result_type() != DataType::kBool &&
          filter->predicate->result_type() != DataType::kNull) {
        return Status::BindError("HAVING condition must be BOOLEAN");
      }
      filter->left = std::move(plan);
      plan = std::move(filter);
    }

    auto project = std::make_unique<PlanNode>();
    project->kind = PlanKind::kProject;
    for (size_t i = 0; i < select_rewritten.size(); ++i) {
      Status bound = select_rewritten[i]->Bind(plan->output_schema);
      if (!bound.ok()) {
        return bound.WithContext(
            "SELECT with GROUP BY may only reference keys and aggregates");
      }
      project->output_schema.AddColumn(
          {select_names[i], select_rewritten[i]->result_type(), ""});
      project->projections.push_back(std::move(select_rewritten[i]));
    }
    project->left = std::move(plan);
    return project;
  }

  Result<std::unique_ptr<PlanNode>> PlanTableRef(const TableRef& ref) {
    if (ref.subquery) {
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> sub, Plan(*ref.subquery));
      // The derived table's columns become visible under the alias only;
      // row layout is unchanged, so re-qualifying the schema suffices.
      sub->output_schema = sub->output_schema.WithQualifier(ref.alias);
      return sub;
    }
    auto table_result = catalog_.GetTable(ref.table_name);
    if (!table_result.ok()) {
      return Status::BindError(table_result.status().message());
    }
    const Table* table = *table_result;
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanKind::kScan;
    node->table = table;
    node->output_schema = table->schema().WithQualifier(ref.EffectiveName());
    return node;
  }

  const Catalog& catalog_;
};

/// Wraps every kScan in `plan` with a kConfidencePrune node carrying β and,
/// when an index is available, a zone-map snapshot. A failed zone-map
/// rebuild (fault injection) degrades to row-exact pruning rather than
/// failing the query.
void InsertConfidencePrunes(const Catalog& catalog,
                            const ConfidencePushdown& pushdown,
                            std::unique_ptr<PlanNode>* node) {  // NOLINT(misc-no-recursion)
  PlanNode& plan = **node;
  if (plan.kind == PlanKind::kScan) {
    auto prune = std::make_unique<PlanNode>();
    prune->kind = PlanKind::kConfidencePrune;
    prune->output_schema = plan.output_schema;
    prune->prune_beta = pushdown.beta;
    if (pushdown.index != nullptr && plan.table != nullptr) {
      Result<std::shared_ptr<const ConfidenceZoneMap>> map =
          pushdown.index->Get(catalog, *plan.table);
      if (map.ok()) prune->zone_map = std::move(*map);
    }
    prune->left = std::move(*node);
    *node = std::move(prune);
    return;
  }
  if (plan.left) InsertConfidencePrunes(catalog, pushdown, &plan.left);
  if (plan.right) InsertConfidencePrunes(catalog, pushdown, &plan.right);
}

}  // namespace

namespace {

void CollectScannedTablesInto(const PlanNode& plan,
                              std::vector<std::string>* tables) {  // NOLINT(misc-no-recursion)
  if (plan.kind == PlanKind::kScan && plan.table != nullptr) {
    const std::string& name = plan.table->name();
    for (const std::string& existing : *tables) {
      if (EqualsIgnoreCaseAscii(existing, name)) return;
    }
    tables->push_back(name);
    return;
  }
  if (plan.left) CollectScannedTablesInto(*plan.left, tables);
  if (plan.right) CollectScannedTablesInto(*plan.right, tables);
}

}  // namespace

std::vector<std::string> CollectScannedTables(const PlanNode& plan) {
  std::vector<std::string> tables;
  CollectScannedTablesInto(plan, &tables);
  return tables;
}

bool IsConfidencePushdownSafe(const PlanNode& plan) {  // NOLINT(misc-no-recursion)
  switch (plan.kind) {
    case PlanKind::kScan:
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kJoin:
    case PlanKind::kSort:
    case PlanKind::kUnionAll:
    case PlanKind::kConfidencePrune:
      break;
    case PlanKind::kDistinct:
    case PlanKind::kUnion:
    case PlanKind::kExcept:
    case PlanKind::kIntersect:
    case PlanKind::kLimit:
    case PlanKind::kAggregate:
      return false;
  }
  if (plan.left && !IsConfidencePushdownSafe(*plan.left)) return false;
  if (plan.right && !IsConfidencePushdownSafe(*plan.right)) return false;
  return true;
}

Result<std::unique_ptr<PlanNode>> PlanQuery(const Catalog& catalog,
                                            const SelectStatement& stmt,
                                            const ConfidencePushdown* pushdown) {
  Planner planner(catalog);
  PCQE_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan, planner.Plan(stmt));
  // β ≤ 0 prunes nothing (confidences are ≥ 0 and the keep test is strict):
  // skip the wrap so policy-less requests execute the exact unpushed plan.
  if (pushdown != nullptr && pushdown->beta > 0.0 &&
      IsConfidencePushdownSafe(*plan)) {
    InsertConfidencePrunes(catalog, *pushdown, &plan);
  }
  return plan;
}

}  // namespace pcqe
