// Copyright (c) PCQE contributors.
// Internals shared by the row and vectorized plan interpreters.
//
// The grouping operators (DISTINCT, set ops, GROUP BY) are implemented once,
// over materialized `ExecRow`s, and called from both engines: the bit-identity
// contract between the two engines (same values, same row order, same lineage
// structure, hence same confidences) then holds for these operators by
// construction rather than by parallel maintenance.

#ifndef PCQE_QUERY_EXEC_COMMON_H_
#define PCQE_QUERY_EXEC_COMMON_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "query/executor.h"
#include "query/plan.h"

namespace pcqe {
namespace exec_internal {

/// Hash over a row of values, consistent with `ValueVecEq`.
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& v) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& x : v) {
      h ^= x.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// SQL grouping equality (NULL equals NULL) over rows of values.
struct ValueVecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

/// Grouping of rows by value-equality, preserving first-seen order.
class RowGroups {
 public:
  /// Adds a row's lineage to its value group. Values are copied on first
  /// sight only.
  void Add(const std::vector<Value>& values, LineageRef lineage) {
    auto [it, inserted] = index_.try_emplace(values, groups_.size());
    if (inserted) {
      groups_.push_back({values, {lineage}});
    } else {
      groups_[it->second].lineages.push_back(lineage);
    }
  }

  /// Lineages of the group matching `values`, or nullptr.
  const std::vector<LineageRef>* Find(const std::vector<Value>& values) const {
    auto it = index_.find(values);
    return it == index_.end() ? nullptr : &groups_[it->second].lineages;
  }

  struct Group {
    std::vector<Value> values;
    std::vector<LineageRef> lineages;
  };
  const std::vector<Group>& groups() const { return groups_; }

 private:
  std::vector<Group> groups_;
  std::unordered_map<std::vector<Value>, size_t, ValueVecHash, ValueVecEq> index_;
};

/// Splits `predicate` into equi-join pairs usable for hashing (column =
/// column with the two sides split by `left_width`) and residual conjuncts.
void SplitJoinPredicate(const Expr* predicate, size_t left_width,
                        std::vector<std::pair<size_t, size_t>>* equi_pairs,
                        std::vector<const Expr*>* residual);

/// Evaluates a bound BOOLEAN expression against `row`, mapping NULL to
/// false (SQL WHERE semantics).
[[nodiscard]] Result<bool> EvalPredicate(const Expr& predicate, const std::vector<Value>& row);

/// DISTINCT over materialized rows: groups equal rows in first-seen order and
/// emits `OR` over each group's lineages.
[[nodiscard]] Result<std::vector<ExecRow>> DistinctRows(std::vector<ExecRow> input,
                                                        LineageArena* arena);

/// UNION [ALL] / EXCEPT / INTERSECT over materialized rows, with the lineage
/// semantics documented on `Executor`.
[[nodiscard]] Result<std::vector<ExecRow>> SetOpRows(PlanKind kind, std::vector<ExecRow> left,
                                                     std::vector<ExecRow> right,
                                                     LineageArena* arena);

/// GROUP BY + aggregate evaluation over materialized rows; `plan` supplies
/// `group_keys` and `aggregates`.
[[nodiscard]] Result<std::vector<ExecRow>> AggregateRows(const PlanNode& plan,
                                                         std::vector<ExecRow> input,
                                                         LineageArena* arena);

}  // namespace exec_internal
}  // namespace pcqe

#endif  // PCQE_QUERY_EXEC_COMMON_H_
