#include "query/confidence_index.h"

#include <utility>

#include "common/fault_injection.h"
#include "relational/column_chunk.h"

namespace pcqe {

namespace {

/// Builds the per-chunk bounds from the table's confidence chunks. Pure —
/// the caller pins the (version, row count) the map is stamped with.
Result<std::shared_ptr<const ConfidenceZoneMap>> BuildZoneMap(
    const Table& table, uint64_t version) {
  PCQE_INJECT_FAULT(fault_sites::kIndexRebuild);
  auto map = std::make_shared<ConfidenceZoneMap>();
  map->table_id = table.table_id();
  map->num_rows = table.num_tuples();
  map->confidence_version = version;
  const TableColumnData& data = table.column_data();
  map->chunks.resize(data.num_chunks());
  for (size_t c = 0; c < data.num_chunks(); ++c) {
    ConfidenceZoneMap::Bounds& bounds = map->chunks[c];
    for (double conf : data.confidence_chunk(c)) {
      if (conf < bounds.min) bounds.min = conf;
      if (conf > bounds.max) bounds.max = conf;
    }
  }
  return std::shared_ptr<const ConfidenceZoneMap>(std::move(map));
}

}  // namespace

Result<std::shared_ptr<const ConfidenceZoneMap>> ConfidenceIndexCache::Get(
    const Catalog& catalog, const Table& table, bool* rebuilt) {
  if (rebuilt != nullptr) *rebuilt = false;
  uint64_t version = catalog.confidence_version();
  {
    MutexLock guard(mu_);
    auto it = maps_.find(table.table_id());
    if (it != maps_.end() && it->second->confidence_version == version &&
        it->second->num_rows == table.num_tuples()) {
      return it->second;
    }
  }
  // Build outside the lock (the caller's shared catalog hold keeps the
  // confidences stable) and install atomically: a failed build drops the
  // stale entry and publishes nothing.
  Result<std::shared_ptr<const ConfidenceZoneMap>> built =
      BuildZoneMap(table, version);
  MutexLock guard(mu_);
  if (!built.ok()) {
    maps_.erase(table.table_id());
    return built.status();
  }
  if (rebuilt != nullptr) *rebuilt = true;
  maps_[table.table_id()] = *built;
  return *built;
}

void ConfidenceIndexCache::Invalidate() {
  MutexLock guard(mu_);
  maps_.clear();
}

}  // namespace pcqe
