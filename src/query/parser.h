// Copyright (c) PCQE contributors.
// Recursive-descent parser for the mini-SQL dialect.
//
// Supported dialect:
//   SELECT [DISTINCT] <expr [AS alias], ... | *>
//   FROM <table [AS alias] | (subquery) AS alias> [, <ref>]*
//        [JOIN <ref> ON <expr>]*
//   [WHERE <expr>]
//   [UNION [ALL] | EXCEPT | INTERSECT <select>]*
//   [ORDER BY <expr> [ASC|DESC], ...] [LIMIT <n>] [;]
//
// Expressions: literals (integers, floats, 'strings', TRUE/FALSE/NULL),
// column refs (`c` or `t.c`), comparisons (= <> != < <= > >=), arithmetic
// (+ - * /), NOT/AND/OR, LIKE, IS [NOT] NULL, unary minus, parentheses.

#ifndef PCQE_QUERY_PARSER_H_
#define PCQE_QUERY_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace pcqe {

/// Parses one SELECT statement. Trailing tokens after the statement (other
/// than one optional ';') are a parse error.
[[nodiscard]] Result<std::unique_ptr<SelectStatement>> ParseSelect(const std::string& sql);

/// Parses a standalone scalar expression against no particular schema
/// (binding happens later). Useful for building predicates in tests and
/// examples without hand-assembling `Expr` trees.
[[nodiscard]] Result<std::unique_ptr<Expr>> ParseExpression(const std::string& text);

}  // namespace pcqe

#endif  // PCQE_QUERY_PARSER_H_
