// Copyright (c) PCQE contributors.
// The execution-engine knob: row-at-a-time reference vs. vectorized core.

#ifndef PCQE_QUERY_EXECUTION_MODE_H_
#define PCQE_QUERY_EXECUTION_MODE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace pcqe {

/// \brief Which plan interpreter executes a query.
///
/// Both engines produce bit-identical results (values, row order, released
/// sets, confidences, solver costs) — `kRow` is kept as the differential
/// reference the vectorized core is continuously checked against (see
/// tests/vectorized_test.cc), and as a debugging fallback.
enum class ExecutionMode : uint8_t {
  kRow = 0,         ///< tuple-at-a-time interpreter (query/executor.h)
  kVectorized = 1,  ///< column-chunk interpreter (query/vec_executor.h)
};

/// Canonical lowercase name ("row" / "vectorized").
inline std::string ExecutionModeToString(ExecutionMode mode) {
  return mode == ExecutionMode::kRow ? "row" : "vectorized";
}

/// Parses "row", "vec" or "vectorized" (exact, lowercase).
[[nodiscard]] inline Result<ExecutionMode> ParseExecutionMode(const std::string& text) {
  if (text == "row") return ExecutionMode::kRow;
  if (text == "vec" || text == "vectorized") return ExecutionMode::kVectorized;
  return Status::InvalidArgument("unknown execution mode '" + text +
                                 "' (want row|vec|vectorized)");
}

/// \brief Counters the vectorized interpreter reports per query.
///
/// Exposed on `QueryResult` and aggregated into engine telemetry so
/// operators can observe chunk/batch behavior without tracing.
struct VecExecStats {
  /// Column chunks touched by scans.
  uint64_t chunks_scanned = 0;
  /// Base rows produced by scans.
  uint64_t rows_scanned = 0;
  /// Factorized join groups (probe keys with at least one match): lineage
  /// composition work scales with groups, not with group × member rows.
  uint64_t join_groups = 0;
  /// Largest single join group (rows sharing one key), i.e. the widest batch
  /// the factorized representation avoided materializing eagerly.
  uint64_t max_group_rows = 0;
  /// Rows that fell back to tuple-at-a-time expression evaluation inside a
  /// vectorized operator (non-kernelizable predicates/projections).
  uint64_t fallback_rows = 0;
  /// Whole column chunks skipped by β pushdown's zone-map test (their max
  /// confidence could not clear β; vectorized engine only).
  uint64_t pruned_chunks = 0;
  /// Base rows dropped by β pushdown before reaching the operators above
  /// (both engines report this; the row engine fills only this field).
  uint64_t pruned_rows = 0;

  void Merge(const VecExecStats& o) {
    chunks_scanned += o.chunks_scanned;
    rows_scanned += o.rows_scanned;
    join_groups += o.join_groups;
    if (o.max_group_rows > max_group_rows) max_group_rows = o.max_group_rows;
    fallback_rows += o.fallback_rows;
    pruned_chunks += o.pruned_chunks;
    pruned_rows += o.pruned_rows;
  }
};

}  // namespace pcqe

#endif  // PCQE_QUERY_EXECUTION_MODE_H_
