#include "query/plan.h"

#include "common/string_util.h"

namespace pcqe {

std::string PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kUnionAll:
      return "UnionAll";
    case PlanKind::kUnion:
      return "Union";
    case PlanKind::kExcept:
      return "Except";
    case PlanKind::kIntersect:
      return "Intersect";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kConfidencePrune:
      return "ConfidencePrune";
  }
  return "?";
}

std::string PlanNode::Summary() const {
  std::string line = PlanKindToString(kind);
  switch (kind) {
    case PlanKind::kScan:
      line += StrFormat(" %s", table->name().c_str());
      break;
    case PlanKind::kFilter:
    case PlanKind::kJoin:
      if (predicate) line += " " + predicate->ToString();
      break;
    case PlanKind::kProject: {
      std::vector<std::string> parts;
      parts.reserve(projections.size());
      for (const auto& e : projections) parts.push_back(e->ToString());
      line += " [" + JoinStrings(parts, ", ") + "]";
      break;
    }
    case PlanKind::kSort: {
      std::vector<std::string> parts;
      parts.reserve(sort_keys.size());
      for (const auto& k : sort_keys) {
        parts.push_back(k.expr->ToString() + (k.ascending ? " ASC" : " DESC"));
      }
      line += " [" + JoinStrings(parts, ", ") + "]";
      break;
    }
    case PlanKind::kLimit:
      line += StrFormat(" %lld", static_cast<long long>(limit));
      break;
    case PlanKind::kConfidencePrune:
      line += StrFormat(" beta=%s%s", FormatDouble(prune_beta, 6).c_str(),
                        zone_map != nullptr ? " zonemap" : "");
      break;
    case PlanKind::kAggregate: {
      std::vector<std::string> parts;
      for (const auto& k : group_keys) parts.push_back(k->ToString());
      std::vector<std::string> aggs;
      for (const AggregateSpec& a : aggregates) {
        aggs.push_back(AggFuncToString(a.func) + "(" +
                       (a.arg ? a.arg->ToString() : "*") + ")");
      }
      line += " keys=[" + JoinStrings(parts, ", ") + "] aggs=[" +
              JoinStrings(aggs, ", ") + "]";
      break;
    }
    default:
      break;
  }
  return line;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + Summary() + " -> " + output_schema.ToString();
  if (left) out += "\n" + left->ToString(indent + 1);
  if (right) out += "\n" + right->ToString(indent + 1);
  return out;
}

}  // namespace pcqe
