// Copyright (c) PCQE contributors.
// Abstract syntax tree for the mini-SQL dialect.

#ifndef PCQE_QUERY_AST_H_
#define PCQE_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "query/expression.h"

namespace pcqe {

struct SelectStatement;

/// \brief One FROM-clause source: either a named base table or a derived
/// table (parenthesized subquery), with an optional alias.
struct TableRef {
  /// Base-table name; empty when `subquery` is set.
  std::string table_name;
  /// Derived table; null when `table_name` is set.
  std::unique_ptr<SelectStatement> subquery;
  /// Alias; required for subqueries, optional for tables.
  std::string alias;

  /// Effective name used to qualify columns: the alias when present, else
  /// the table name.
  const std::string& EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }
};

/// \brief An explicit `JOIN <ref> ON <condition>` attached to the FROM list.
struct JoinClause {
  TableRef table;
  std::unique_ptr<Expr> condition;
};

/// \brief One SELECT-list item: an expression with an optional output alias,
/// or the star.
struct SelectItem {
  /// Null for `*`.
  std::unique_ptr<Expr> expr;
  std::string alias;
  bool is_star = false;
};

/// \brief One ORDER BY key.
struct OrderByItem {
  std::unique_ptr<Expr> expr;
  bool ascending = true;
};

/// \brief Set operators chaining select cores.
enum class SetOpKind : uint8_t { kNone, kUnion, kUnionAll, kExcept, kIntersect };

/// \brief A full SELECT statement.
///
/// Grammar (see parser.cc):
/// \code
///   stmt    := core (set_op core)* [ORDER BY items] [LIMIT n] [';']
///   core    := SELECT [DISTINCT] items FROM ref ((',' ref) | (JOIN ref ON expr))*
///              [WHERE expr]
/// \endcode
/// Set operations associate left and produce a chain hanging off the first
/// core: `a UNION b EXCEPT c` is `(a UNION b) EXCEPT c`.
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;        ///< comma-separated sources (cross join)
  std::vector<JoinClause> joins;     ///< explicit JOIN ... ON clauses
  std::unique_ptr<Expr> where;       ///< null when absent
  std::vector<std::unique_ptr<Expr>> group_by;  ///< empty when absent
  std::unique_ptr<Expr> having;      ///< null when absent

  /// Set-operation continuation: `set_op` applies between this statement's
  /// core result and `set_rhs` (which may itself chain further).
  SetOpKind set_op = SetOpKind::kNone;
  std::unique_ptr<SelectStatement> set_rhs;

  /// ORDER BY / LIMIT apply to the full chained result; only populated on
  /// the outermost statement.
  std::vector<OrderByItem> order_by;
  /// Negative means "no limit".
  int64_t limit = -1;
};

}  // namespace pcqe

#endif  // PCQE_QUERY_AST_H_
