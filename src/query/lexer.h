// Copyright (c) PCQE contributors.
// SQL tokenizer for the mini-SQL dialect (see parser.h for the grammar).

#ifndef PCQE_QUERY_LEXER_H_
#define PCQE_QUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pcqe {

/// \brief Token categories.
enum class TokenType : uint8_t {
  kKeyword,     ///< SELECT, FROM, WHERE, ... (uppercased in `text`)
  kIdentifier,  ///< table/column names (original case preserved)
  kInteger,     ///< 42
  kFloat,       ///< 3.14, 1e6
  kString,      ///< 'text' (quotes stripped, '' unescaped)
  kOperator,    ///< = <> != < <= > >= + - * / ( ) , . ;
  kEnd,         ///< end of input
};

/// \brief One token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     ///< normalized text (see TokenType notes)
  size_t offset = 0;    ///< byte offset in the original SQL

  /// True for a keyword token with this (case-insensitive) name.
  bool IsKeyword(const std::string& kw) const;
  /// True for an operator token with exactly this text.
  bool IsOperator(const std::string& op) const;
};

/// Words treated as reserved keywords (SELECT, DISTINCT, FROM, JOIN, ...).
/// An identifier matching one of these lexes as `kKeyword`.
bool IsReservedWord(const std::string& upper);

/// Tokenizes `sql`. The result always ends with a `kEnd` token. Returns
/// `kParseError` on malformed input (unterminated string, stray character).
[[nodiscard]] Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace pcqe

#endif  // PCQE_QUERY_LEXER_H_
