// Copyright (c) PCQE contributors.
// Vectorized plan interpreter over column chunks with factorized lineage.
//
// Where the row engine (query/executor.h) materializes every intermediate
// row as a `std::vector<Value>` plus an eagerly built lineage node, this
// engine keeps results *factorized*:
//
//  - a result is a set of **factors** — one per base-table scan (plus one per
//    group-materializing operator) — each with a selection vector mapping
//    output rows to factor-domain rows;
//  - output columns either **borrow** a base table's column chunks through a
//    factor's selection vector (zero copies through scan → filter → join →
//    sort → limit chains) or own an explicit value vector;
//  - a row's lineage is implied: the AND of one lineage leaf per factor.
//    Nothing is allocated in the arena until a row provably survives to the
//    top of the plan (or reaches a grouping operator), so a join under a
//    selective filter builds formulas once per *released group* instead of
//    once per intermediate row.
//
// Bit-identity contract with the row engine: same values, same row order,
// same lineage structure per row (hence bit-identical confidences via the
// same left-fold evaluation), same costs and released sets downstream.
// Grouping operators (DISTINCT, set ops, GROUP BY) share the row engine's
// implementation outright (query/exec_common.h); order-preserving operators
// replicate the row engine's emission order exactly.

#ifndef PCQE_QUERY_VEC_EXECUTOR_H_
#define PCQE_QUERY_VEC_EXECUTOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "lineage/lineage.h"
#include "query/execution_mode.h"
#include "query/plan.h"
#include "telemetry/profile.h"

namespace pcqe {

struct ExecRow;

/// \brief One factor of a factorized result: a lineage domain plus the
/// selection vector mapping output rows into it.
struct VecFactor {
  /// Scan factor when non-null: domain rows are table rows, the leaf for
  /// domain row r is `Var((table_id << 32) | r)`, confidences come from the
  /// table's column chunks.
  const Table* table = nullptr;
  /// Materialized factor when `table` is null: per-domain-row lineage refs
  /// built by a grouping operator.
  std::vector<LineageRef> lineages;
  /// Output row i derives from domain row `sel[i]`. Always explicit
  /// (`sel.size() == result.num_rows`).
  std::vector<uint32_t> sel;
};

/// \brief One output column: either borrowed from a scan factor's column
/// chunks (indexed through that factor's selection vector) or owned.
struct VecColumn {
  /// Index into `VecResult::factors` when borrowing, else -1.
  int borrowed_factor = -1;
  /// Base-table column index; only meaningful when borrowing.
  size_t base_col = 0;
  /// One value per output row; only populated when not borrowing.
  std::vector<Value> owned;
};

/// \brief A factorized operator result.
struct VecResult {
  size_t num_rows = 0;
  std::vector<VecFactor> factors;
  std::vector<VecColumn> columns;

  /// Boxes output column `col`, row `row` (borrowed columns read the base
  /// table's chunks through the factor's selection vector). Stateless, so
  /// deferred materialization can box rows long after the executor is gone —
  /// the scanned tables must still be alive.
  Value BoxedValue(size_t col, size_t row) const;

  /// True when every factor is a scan factor (then per-row lineage and
  /// confidence are fully implied by the factorization: nothing needs to
  /// exist in the arena for the row's confidence to be computable).
  bool AllScanFactors() const;

  /// Confidence of output row `row` without building any lineage node —
  /// the factorized form of `VectorExecutor::ConfidenceOf(RowLineage(row))`:
  /// one confidence leaf per factor, first-seen-deduped, left-folded in
  /// factor order. Bit-identical to evaluating the interned formula because
  /// the `And` builder flattens/dedupes the same leaves in the same order.
  /// Requires `AllScanFactors()`.
  double ScanRowConfidence(size_t row) const;

  /// Interns the lineage formula of output row `row` into `arena`, with the
  /// exact structure `VectorExecutor::RowLineage` (and hence the row engine)
  /// builds. Used to box deferred lineage after the executor is gone; the
  /// scanned tables must still be alive. `scratch` is caller-provided so a
  /// bulk materialization loop does not allocate per row.
  LineageRef BoxRowLineage(LineageArena* arena, size_t row,
                           std::vector<LineageRef>* scratch) const;
};

/// \brief Interprets plan trees over column chunks.
///
/// One executor instance serves one query; it owns per-query caches (interned
/// scan variables, memoized per-node confidences) keyed against the arena
/// passed at construction.
class VectorExecutor {
 public:
  /// `arena` must outlive every ref returned by `Run` and `RowLineage`. A
  /// non-null `profiler` collects one `OperatorProfile` node per executed
  /// operator (`EXPLAIN ANALYZE`); the default costs one branch per operator.
  explicit VectorExecutor(LineageArena* arena, OperatorProfiler* profiler = nullptr)
      : arena_(arena), profiler_(profiler) {}

  /// Executes `plan` into a factorized result.
  [[nodiscard]] Result<VecResult> Run(const PlanNode& plan);

  /// Boxed value of output column `col`, row `row` of `r`.
  Value ColumnValue(const VecResult& r, size_t col, size_t row) const;

  /// Builds (or reuses) the lineage formula of output row `row`: the AND of
  /// one leaf per factor, constructed with the exact child order the row
  /// engine uses, so both engines intern structurally identical nodes.
  LineageRef RowLineage(const VecResult& r, size_t row);

  /// Confidence of `ref` under tuple independence, memoized per node.
  /// Identical fold order (hence bit-identical doubles) to
  /// `EvaluateIndependent` with a snapshot of current base confidences; the
  /// leaf probabilities are read straight from the column chunks.
  double ConfidenceOf(LineageRef ref);

  const VecExecStats& stats() const { return stats_; }

 private:
  /// The unprofiled interpreter switch; `Run` wraps it with profiling.
  [[nodiscard]] Result<VecResult> Dispatch(const PlanNode& plan);

  [[nodiscard]] Result<VecResult> RunScan(const PlanNode& plan);
  /// β pushdown over a scan child, fused: builds the selection vector
  /// straight from the confidence chunks, skipping whole chunks whose
  /// zone-map max cannot clear β and keeping whole chunks whose min already
  /// does (no per-row test either way).
  [[nodiscard]] Result<VecResult> RunConfidencePrune(const PlanNode& plan);
  [[nodiscard]] Result<VecResult> RunFilter(const PlanNode& plan);
  [[nodiscard]] Result<VecResult> RunProject(const PlanNode& plan);
  [[nodiscard]] Result<VecResult> RunJoin(const PlanNode& plan);
  [[nodiscard]] Result<VecResult> RunSort(const PlanNode& plan);
  [[nodiscard]] Result<VecResult> RunLimit(const PlanNode& plan);
  /// DISTINCT / set ops / GROUP BY: materializes the factorized inputs and
  /// delegates to the row engine's shared grouping implementation.
  [[nodiscard]] Result<VecResult> RunGrouping(const PlanNode& plan);

  /// Lineage leaf of factor `f`, domain row `row` (interned Var for scan
  /// factors, stored ref for materialized factors).
  LineageRef FactorRef(const VecFactor& f, uint32_t row);

  /// Gathers output row `row` of `r` into `out` (resized to the column
  /// count) for tuple-at-a-time expression fallbacks.
  void GatherRow(const VecResult& r, size_t row, std::vector<Value>* out) const;

  /// Materializes `r` into row-engine rows (values + per-row lineage).
  [[nodiscard]] Result<std::vector<ExecRow>> Materialize(const VecResult& r);

  /// Wraps materialized rows as a single-factor result with owned columns.
  VecResult WrapRows(std::vector<ExecRow> rows, size_t num_columns);

  /// Keeps only `keep` (input row indices, ascending emission order) in `r`:
  /// composes every factor's selection vector and compacts owned columns.
  static void ApplySelection(VecResult* r, const std::vector<uint32_t>& keep);

  /// Tries to evaluate `conjunct` with a typed kernel over the candidate
  /// rows, shrinking `candidates` in place. Returns false when the conjunct
  /// has no kernel (caller falls back to expression evaluation).
  bool TryFilterKernel(const VecResult& r, const Expr& conjunct,
                       std::vector<uint32_t>* candidates);

  double VarConfidence(LineageVarId id) const;

  LineageArena* arena_;
  OperatorProfiler* profiler_;
  VecExecStats stats_;
  /// Scanned tables by table id, for Var → confidence resolution.
  std::unordered_map<uint32_t, const Table*> tables_by_id_;
  /// Interned Var refs per scanned table (kNullLineage = not yet created).
  std::unordered_map<uint32_t, std::vector<LineageRef>> var_cache_;
  /// Memoized per-node confidence, NaN = not yet computed (confidences live
  /// in [0, 1], so NaN is a safe sentinel).
  std::vector<double> conf_cache_;
  /// Reused scratch buffers (see ISSUE: no per-row allocation on hot paths).
  std::vector<LineageRef> lineage_scratch_;
  std::vector<Value> row_scratch_;
};

}  // namespace pcqe

#endif  // PCQE_QUERY_VEC_EXECUTOR_H_
