// Copyright (c) PCQE contributors.
// High-level entry point: SQL text in, confidence-annotated rows out.

#ifndef PCQE_QUERY_QUERY_ENGINE_H_
#define PCQE_QUERY_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "lineage/evaluate.h"
#include "lineage/lineage.h"
#include "query/execution_mode.h"
#include "query/executor.h"
#include "relational/catalog.h"
#include "telemetry/trace.h"

namespace pcqe {

struct VecResult;

/// \brief A fully evaluated query: schema, rows with lineage and confidence.
///
/// This is what the paper calls the set of *intermediate results* — query
/// answers with computed confidence values, before confidence-policy
/// filtering. The `arena` owns every row's lineage formula; keep the
/// `QueryResult` alive as long as lineage refs are dereferenced (the strategy
/// layer does).
struct QueryResult {
  /// One result row.
  struct Row {
    std::vector<Value> values;
    /// Lineage over base-tuple ids, allocated in `arena`.
    LineageRef lineage = kNullLineage;
    /// Confidence computed from base-tuple confidences by lineage
    /// propagation (independence semantics; see lineage/evaluate.h).
    double confidence = 0.0;
  };

  Schema schema;
  std::vector<Row> rows;
  std::shared_ptr<LineageArena> arena;
  /// EXPLAIN-style rendering of the executed plan.
  std::string plan_text;
  /// Base tables the query scanned (deduplicated, in plan order). Policy
  /// resolution uses these to apply table-scoped confidence policies.
  std::vector<std::string> tables;
  /// Which interpreter produced this result.
  ExecutionMode mode = ExecutionMode::kRow;
  /// Vectorized-interpreter counters. Under `mode == kRow` only
  /// `pruned_rows` can be non-zero (β pushdown's row-exact fallback).
  VecExecStats vec_stats;
  /// True when the executed plan carried at least one `kConfidencePrune`
  /// node, i.e. β pushdown actually applied (a pushdown request against an
  /// unsafe plan shape leaves this false). Feeds audit and telemetry.
  bool pushed_down = false;
  /// Set when the vectorized engine deferred materialization (the engine's
  /// serving configuration): the factorized payload boxes values
  /// (`ValuesOfRow` / `MaterializeValues`) and — for pure
  /// scan/filter/join/sort/limit pipelines — lineage formulas
  /// (`MaterializeLineage`) on demand. The payload borrows the scanned
  /// tables' column chunks — materialize before dropping or reloading the
  /// catalog. Null when everything is materialized eagerly (the `RunQuery`
  /// default) or `mode == kRow`.
  std::shared_ptr<const VecResult> columnar;
  /// True while `rows[i].values` is empty and boxes via `columnar`.
  bool defer_values = false;
  /// True while `rows[i].lineage` is `kNullLineage` (confidences are always
  /// computed — nodelessly, from the factorization — so policy filtering
  /// never needs the formulas; see `VecResult::ScanRowConfidence`).
  bool defer_lineage = false;

  /// True when `rows[i].values` must be boxed via `columnar` first.
  bool values_deferred() const { return defer_values; }

  /// True when `rows[i].lineage` has not been interned yet.
  bool lineage_deferred() const { return defer_lineage; }

  /// Boxed values of row `i`, whether deferred or materialized.
  std::vector<Value> ValuesOfRow(size_t i) const;

  /// Boxes every deferred row's values in place (idempotent, no-op when
  /// eager). Not synchronized: never call on a result shared across threads
  /// (the service's cache hands each request its own copy).
  void MaterializeValues();

  /// Interns every deferred row's lineage formula into `arena` (idempotent,
  /// no-op when eager), with the exact structure the eager paths build.
  /// Mutates the *shared* arena — copies of one result share it by
  /// `shared_ptr` — so this must never run concurrently with any other use
  /// of the same arena (the service materializes lineage before a result
  /// enters its shared cache for exactly this reason).
  void MaterializeLineage();

  /// Re-derives every row's confidence from `confidences` (base-tuple id →
  /// confidence). Used after data-quality improvement updates base tuples.
  /// Materializes deferred lineage first.
  void RecomputeConfidences(const ConfidenceMap& confidences);

  /// Formats rows as an aligned text table with a confidence column; deferred
  /// rows box transiently (display only shows `max_rows` rows).
  std::string ToTable(size_t max_rows = 50) const;
};

/// Builds a `ConfidenceMap` holding the current confidence of every base
/// tuple referenced by `result`, read from `catalog`. Walks the arena's
/// variable index, so a lineage-deferred result must `MaterializeLineage()`
/// first (its arena holds no variables yet).
[[nodiscard]] Result<ConfidenceMap> SnapshotConfidences(const Catalog& catalog, const QueryResult& result);

/// Parses, plans, executes and confidence-annotates `sql` against `catalog`.
/// When `trace` is non-null, one child span per pipeline stage ("parse",
/// "plan", "execute", "lineage") is added under the currently open span.
/// `mode` selects the interpreter; both produce bit-identical results (the
/// row engine is kept as the differential reference — see
/// tests/vectorized_test.cc). With `materialize_values` false the vectorized
/// engine skips per-row value boxing and — when the result is purely
/// factorized over scans — per-row lineage interning, returning a deferred
/// result (see `QueryResult::columnar`); confidences are always computed,
/// bit-identically. The row engine ignores the flag (its operators are
/// inherently materialized). A non-null `profile` enables `EXPLAIN ANALYZE`
/// collection: the executor records one `OperatorProfile` node per operator
/// (rows, chunks, factors, arena nodes, wall time); null (the default) keeps
/// the hot path allocation-free. A non-null `pushdown` asks the planner to
/// prune sub-β base tuples below joins when the plan shape allows it (see
/// planner.h) — result-identical to post-filtering by monotonicity, checked
/// continuously by tests/planner_pushdown_test.cc.
[[nodiscard]] Result<QueryResult> RunQuery(const Catalog& catalog, const std::string& sql,
                                           TraceBuilder* trace = nullptr,
                                           ExecutionMode mode = ExecutionMode::kVectorized,
                                           bool materialize_values = true,
                                           OperatorProfile* profile = nullptr,
                                           const ConfidencePushdown* pushdown = nullptr);

}  // namespace pcqe

#endif  // PCQE_QUERY_QUERY_ENGINE_H_
