// Copyright (c) PCQE contributors.
// High-level entry point: SQL text in, confidence-annotated rows out.

#ifndef PCQE_QUERY_QUERY_ENGINE_H_
#define PCQE_QUERY_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "lineage/evaluate.h"
#include "lineage/lineage.h"
#include "query/executor.h"
#include "relational/catalog.h"
#include "telemetry/trace.h"

namespace pcqe {

/// \brief A fully evaluated query: schema, rows with lineage and confidence.
///
/// This is what the paper calls the set of *intermediate results* — query
/// answers with computed confidence values, before confidence-policy
/// filtering. The `arena` owns every row's lineage formula; keep the
/// `QueryResult` alive as long as lineage refs are dereferenced (the strategy
/// layer does).
struct QueryResult {
  /// One result row.
  struct Row {
    std::vector<Value> values;
    /// Lineage over base-tuple ids, allocated in `arena`.
    LineageRef lineage = kNullLineage;
    /// Confidence computed from base-tuple confidences by lineage
    /// propagation (independence semantics; see lineage/evaluate.h).
    double confidence = 0.0;
  };

  Schema schema;
  std::vector<Row> rows;
  std::shared_ptr<LineageArena> arena;
  /// EXPLAIN-style rendering of the executed plan.
  std::string plan_text;
  /// Base tables the query scanned (deduplicated, in plan order). Policy
  /// resolution uses these to apply table-scoped confidence policies.
  std::vector<std::string> tables;

  /// Re-derives every row's confidence from `confidences` (base-tuple id →
  /// confidence). Used after data-quality improvement updates base tuples.
  void RecomputeConfidences(const ConfidenceMap& confidences);

  /// Formats rows as an aligned text table with a confidence column.
  std::string ToTable(size_t max_rows = 50) const;
};

/// Builds a `ConfidenceMap` holding the current confidence of every base
/// tuple referenced by `result`, read from `catalog`.
[[nodiscard]] Result<ConfidenceMap> SnapshotConfidences(const Catalog& catalog, const QueryResult& result);

/// Parses, plans, executes and confidence-annotates `sql` against `catalog`.
/// When `trace` is non-null, one child span per pipeline stage ("parse",
/// "plan", "execute", "lineage") is added under the currently open span.
[[nodiscard]] Result<QueryResult> RunQuery(const Catalog& catalog, const std::string& sql,
                                           TraceBuilder* trace = nullptr);

}  // namespace pcqe

#endif  // PCQE_QUERY_QUERY_ENGINE_H_
