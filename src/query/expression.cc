#include "query/expression.h"

#include "common/string_util.h"

namespace pcqe {

std::string BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

std::string AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Literal(Value v) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::ColumnRef(std::string name) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->column_name_ = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->unary_op_ = op;
  e->left_ = std::move(operand);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->binary_op_ = op;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

std::unique_ptr<Expr> Expr::Aggregate(AggFunc func, std::unique_ptr<Expr> arg) {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAggregate;
  e->agg_func_ = func;
  e->left_ = std::move(arg);
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind_ == ExprKind::kAggregate) return true;
  if (left_ && left_->ContainsAggregate()) return true;
  if (right_ && right_->ContainsAggregate()) return true;
  return false;
}

Result<std::unique_ptr<Expr>> Expr::LiftAggregates(
    std::unique_ptr<Expr> expr, std::vector<std::unique_ptr<Expr>>* lifted) {
  if (expr->kind_ == ExprKind::kAggregate) {
    if (expr->left_ && expr->left_->ContainsAggregate()) {
      return Status::BindError("aggregate calls cannot be nested");
    }
    auto ref = Expr::ColumnRef(StrFormat("__agg%zu", lifted->size()));
    lifted->push_back(std::move(expr));
    return ref;
  }
  if (expr->left_) {
    PCQE_ASSIGN_OR_RETURN(expr->left_, LiftAggregates(std::move(expr->left_), lifted));
  }
  if (expr->right_) {
    PCQE_ASSIGN_OR_RETURN(expr->right_, LiftAggregates(std::move(expr->right_), lifted));
  }
  return expr;
}

std::unique_ptr<Expr> Expr::ReplaceBySyntax(
    std::unique_ptr<Expr> expr,
    const std::vector<std::pair<std::string, std::string>>& text_to_column) {
  std::string text = expr->ToString();
  for (const auto& [pattern, column] : text_to_column) {
    if (text == pattern) return Expr::ColumnRef(column);
  }
  if (expr->left_) {
    expr->left_ = ReplaceBySyntax(std::move(expr->left_), text_to_column);
  }
  if (expr->right_) {
    expr->right_ = ReplaceBySyntax(std::move(expr->right_), text_to_column);
  }
  return expr;
}

namespace {

bool IsNumeric(DataType t) { return t == DataType::kInt64 || t == DataType::kDouble; }

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return true;
    default:
      return false;
  }
}

// Whether values of these static types may meet in a comparison. kNull is
// compatible with everything (a NULL literal compares NULL at runtime).
bool Comparable(DataType a, DataType b) {
  if (a == DataType::kNull || b == DataType::kNull) return true;
  if (a == b) return true;
  return IsNumeric(a) && IsNumeric(b);
}

}  // namespace

Status Expr::Bind(const Schema& schema) {
  switch (kind_) {
    case ExprKind::kAggregate:
      // Aggregates never reach Bind directly: the planner lifts them into
      // per-group columns first (see LiftAggregates). Hitting one here means
      // the query used an aggregate outside SELECT/HAVING.
      return Status::BindError(
          "aggregate calls are only allowed in the SELECT list and HAVING");
    case ExprKind::kLiteral:
      result_type_ = literal_.type();
      break;
    case ExprKind::kColumnRef: {
      auto idx = schema.IndexOf(column_name_);
      if (!idx.ok()) {
        // Normalize lookup failures to bind errors: the caller wrote a query
        // that does not fit the schema.
        return Status::BindError(idx.status().message());
      }
      column_index_ = *idx;
      result_type_ = schema.column(column_index_).type;
      break;
    }
    case ExprKind::kUnary: {
      PCQE_RETURN_NOT_OK(left_->Bind(schema));
      DataType t = left_->result_type_;
      switch (unary_op_) {
        case UnaryOp::kNot:
          if (t != DataType::kBool && t != DataType::kNull) {
            return Status::BindError(
                StrFormat("NOT requires BOOLEAN, got %s", DataTypeToString(t).c_str()));
          }
          result_type_ = DataType::kBool;
          break;
        case UnaryOp::kNegate:
          if (!IsNumeric(t) && t != DataType::kNull) {
            return Status::BindError(
                StrFormat("unary minus requires numeric, got %s",
                          DataTypeToString(t).c_str()));
          }
          result_type_ = t;
          break;
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          result_type_ = DataType::kBool;
          break;
      }
      break;
    }
    case ExprKind::kBinary: {
      PCQE_RETURN_NOT_OK(left_->Bind(schema));
      PCQE_RETURN_NOT_OK(right_->Bind(schema));
      DataType lt = left_->result_type_;
      DataType rt = right_->result_type_;
      if (IsComparison(binary_op_)) {
        if (!Comparable(lt, rt)) {
          return Status::BindError(StrFormat(
              "cannot compare %s with %s", DataTypeToString(lt).c_str(),
              DataTypeToString(rt).c_str()));
        }
        result_type_ = DataType::kBool;
      } else if (IsArithmetic(binary_op_)) {
        if ((!IsNumeric(lt) && lt != DataType::kNull) ||
            (!IsNumeric(rt) && rt != DataType::kNull)) {
          return Status::BindError(StrFormat(
              "arithmetic requires numeric operands, got %s %s %s",
              DataTypeToString(lt).c_str(), BinaryOpToString(binary_op_).c_str(),
              DataTypeToString(rt).c_str()));
        }
        result_type_ = (lt == DataType::kDouble || rt == DataType::kDouble ||
                        binary_op_ == BinaryOp::kDiv)
                           ? DataType::kDouble
                           : DataType::kInt64;
      } else if (binary_op_ == BinaryOp::kAnd || binary_op_ == BinaryOp::kOr) {
        auto check = [&](DataType t) {
          return t == DataType::kBool || t == DataType::kNull;
        };
        if (!check(lt) || !check(rt)) {
          return Status::BindError(StrFormat(
              "%s requires BOOLEAN operands, got %s and %s",
              BinaryOpToString(binary_op_).c_str(), DataTypeToString(lt).c_str(),
              DataTypeToString(rt).c_str()));
        }
        result_type_ = DataType::kBool;
      } else {  // LIKE
        auto check = [&](DataType t) {
          return t == DataType::kString || t == DataType::kNull;
        };
        if (!check(lt) || !check(rt)) {
          return Status::BindError("LIKE requires VARCHAR operands");
        }
        result_type_ = DataType::kBool;
      }
      break;
    }
  }
  bound_ = true;
  return Status::OK();
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> Expr::Eval(const std::vector<Value>& row) const {
  if (!bound_) return Status::Internal("Eval on unbound expression: " + ToString());
  switch (kind_) {
    case ExprKind::kAggregate:
      return Status::Internal("aggregate expression evaluated outside a group");
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kColumnRef:
      if (column_index_ >= row.size()) {
        return Status::Internal(
            StrFormat("column index %zu out of range for row of %zu values",
                      column_index_, row.size()));
      }
      return row[column_index_];
    case ExprKind::kUnary: {
      PCQE_ASSIGN_OR_RETURN(Value v, left_->Eval(row));
      switch (unary_op_) {
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
        case UnaryOp::kNot: {
          if (v.is_null()) return Value::Null();
          PCQE_ASSIGN_OR_RETURN(bool b, v.AsBool());
          return Value::Bool(!b);
        }
        case UnaryOp::kNegate: {
          if (v.is_null()) return Value::Null();
          if (v.type() == DataType::kInt64) return Value::Int(-*v.AsInt());
          PCQE_ASSIGN_OR_RETURN(double d, v.AsDouble());
          return Value::Double(-d);
        }
      }
      return Status::Internal("unreachable unary op");
    }
    case ExprKind::kBinary: {
      // Kleene AND/OR must inspect NULLs themselves; evaluate lazily.
      if (binary_op_ == BinaryOp::kAnd || binary_op_ == BinaryOp::kOr) {
        PCQE_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
        PCQE_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
        auto truth = [](const Value& v) -> int {
          if (v.is_null()) return -1;  // unknown
          return *v.AsBool() ? 1 : 0;
        };
        int a = truth(lv), b = truth(rv);
        if (binary_op_ == BinaryOp::kAnd) {
          if (a == 0 || b == 0) return Value::Bool(false);
          if (a == -1 || b == -1) return Value::Null();
          return Value::Bool(true);
        }
        if (a == 1 || b == 1) return Value::Bool(true);
        if (a == -1 || b == -1) return Value::Null();
        return Value::Bool(false);
      }

      PCQE_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
      PCQE_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
      if (lv.is_null() || rv.is_null()) return Value::Null();

      if (IsComparison(binary_op_)) {
        int c = lv.Compare(rv);
        switch (binary_op_) {
          case BinaryOp::kEq:
            return Value::Bool(c == 0);
          case BinaryOp::kNe:
            return Value::Bool(c != 0);
          case BinaryOp::kLt:
            return Value::Bool(c < 0);
          case BinaryOp::kLe:
            return Value::Bool(c <= 0);
          case BinaryOp::kGt:
            return Value::Bool(c > 0);
          case BinaryOp::kGe:
            return Value::Bool(c >= 0);
          default:
            break;
        }
      }
      if (IsArithmetic(binary_op_)) {
        bool both_int = lv.type() == DataType::kInt64 && rv.type() == DataType::kInt64 &&
                        binary_op_ != BinaryOp::kDiv;
        PCQE_ASSIGN_OR_RETURN(double a, lv.AsDouble());
        PCQE_ASSIGN_OR_RETURN(double b, rv.AsDouble());
        double out = 0.0;
        switch (binary_op_) {
          case BinaryOp::kAdd:
            out = a + b;
            break;
          case BinaryOp::kSub:
            out = a - b;
            break;
          case BinaryOp::kMul:
            out = a * b;
            break;
          case BinaryOp::kDiv:
            if (b == 0.0) return Status::InvalidArgument("division by zero");
            out = a / b;
            break;
          default:
            break;
        }
        if (both_int) return Value::Int(static_cast<int64_t>(out));
        return Value::Double(out);
      }
      // LIKE
      PCQE_ASSIGN_OR_RETURN(std::string text, lv.AsString());
      PCQE_ASSIGN_OR_RETURN(std::string pattern, rv.AsString());
      return Value::Bool(LikeMatch(text, pattern));
    }
  }
  return Status::Internal("unreachable expression kind");
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::unique_ptr<Expr>(new Expr());
  e->kind_ = kind_;
  e->literal_ = literal_;
  e->column_name_ = column_name_;
  e->column_index_ = column_index_;
  e->unary_op_ = unary_op_;
  e->binary_op_ = binary_op_;
  e->agg_func_ = agg_func_;
  e->result_type_ = result_type_;
  e->bound_ = bound_;
  if (left_) e->left_ = left_->Clone();
  if (right_) e->right_ = right_->Clone();
  return e;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kAggregate:
      return AggFuncToString(agg_func_) + "(" + (left_ ? left_->ToString() : "*") + ")";
    case ExprKind::kLiteral:
      return literal_.type() == DataType::kString ? "'" + literal_.ToString() + "'"
                                                  : literal_.ToString();
    case ExprKind::kColumnRef:
      return column_name_;
    case ExprKind::kUnary:
      switch (unary_op_) {
        case UnaryOp::kNot:
          return "(NOT " + left_->ToString() + ")";
        case UnaryOp::kNegate:
          return "(-" + left_->ToString() + ")";
        case UnaryOp::kIsNull:
          return "(" + left_->ToString() + " IS NULL)";
        case UnaryOp::kIsNotNull:
          return "(" + left_->ToString() + " IS NOT NULL)";
      }
      return "?";
    case ExprKind::kBinary:
      return "(" + left_->ToString() + " " + BinaryOpToString(binary_op_) + " " +
             right_->ToString() + ")";
  }
  return "?";
}

}  // namespace pcqe
