#include "query/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "query/exec_common.h"
#include "relational/column_chunk.h"

namespace pcqe {

using exec_internal::EvalPredicate;
using exec_internal::SplitJoinPredicate;
using exec_internal::ValueVecEq;
using exec_internal::ValueVecHash;

Result<std::vector<ExecRow>> Executor::Run(const PlanNode& plan) {
  if (profiler_ == nullptr) return Dispatch(plan);
  size_t node = profiler_->Begin(plan.Summary());
  uint64_t arena_before = arena_->size();
  uint64_t pruned_before = stats_.pruned_rows;
  Result<std::vector<ExecRow>> result = Dispatch(plan);
  OperatorProfiler::Extra extra;
  extra.arena_nodes = arena_->size() - arena_before;
  extra.pruned_rows = stats_.pruned_rows - pruned_before;
  profiler_->End(node, result.ok() ? result->size() : 0, extra);
  return result;
}

Result<std::vector<ExecRow>> Executor::Dispatch(
    const PlanNode& plan) {  // NOLINT(misc-no-recursion)
  switch (plan.kind) {
    case PlanKind::kScan:
      return RunScan(plan);
    case PlanKind::kFilter:
      return RunFilter(plan);
    case PlanKind::kProject:
      return RunProject(plan);
    case PlanKind::kJoin:
      return RunJoin(plan);
    case PlanKind::kDistinct:
      return RunDistinct(plan);
    case PlanKind::kUnionAll:
    case PlanKind::kUnion:
    case PlanKind::kExcept:
    case PlanKind::kIntersect:
      return RunSetOp(plan);
    case PlanKind::kSort:
      return RunSort(plan);
    case PlanKind::kLimit:
      return RunLimit(plan);
    case PlanKind::kAggregate:
      return RunAggregate(plan);
    case PlanKind::kConfidencePrune:
      return RunConfidencePrune(plan);
  }
  return Status::Internal("unknown plan kind");
}

Result<std::vector<ExecRow>> Executor::RunConfidencePrune(const PlanNode& plan) {
  // The planner wraps scans directly, so input row i is base row i of the
  // scanned table and its confidence reads straight off the chunk column.
  PCQE_CHECK(plan.left != nullptr && plan.left->kind == PlanKind::kScan);
  const TableColumnData& data = plan.left->table->column_data();
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  std::vector<ExecRow> out;
  out.reserve(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    // Exact complement of PolicyDecision::Allows' blocking test: a base
    // tuple at or below β (mod ε) can only ever produce blocked rows.
    if (data.confidence(i) > plan.prune_beta + kEpsilon) {
      out.push_back(std::move(input[i]));
    } else {
      ++stats_.pruned_rows;
    }
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunScan(const PlanNode& plan) {
  PCQE_CHECK(plan.table != nullptr);
  std::vector<ExecRow> out;
  out.reserve(plan.table->num_tuples());
  arena_->Reserve(plan.table->num_tuples());
  for (const Tuple& t : plan.table->tuples()) {
    out.push_back({t.values(), arena_->Var(t.id())});
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunFilter(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  std::vector<ExecRow> out;
  out.reserve(input.size());
  for (ExecRow& row : input) {
    PCQE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*plan.predicate, row.values));
    if (keep) out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunProject(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  std::vector<ExecRow> out;
  out.reserve(input.size());
  for (const ExecRow& row : input) {
    ExecRow projected;
    projected.lineage = row.lineage;
    projected.values.reserve(plan.projections.size());
    for (const auto& expr : plan.projections) {
      PCQE_ASSIGN_OR_RETURN(Value v, expr->Eval(row.values));
      projected.values.push_back(std::move(v));
    }
    out.push_back(std::move(projected));
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunJoin(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> left, Run(*plan.left));
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> right, Run(*plan.right));
  size_t left_width = plan.left->output_schema.num_columns();

  std::vector<std::pair<size_t, size_t>> equi_pairs;
  std::vector<const Expr*> residual;
  SplitJoinPredicate(plan.predicate.get(), left_width, &equi_pairs, &residual);

  std::vector<ExecRow> out;
  auto emit = [&](const ExecRow& l, const ExecRow& r) -> Status {
    std::vector<Value> combined;
    combined.reserve(l.values.size() + r.values.size());
    combined.insert(combined.end(), l.values.begin(), l.values.end());
    combined.insert(combined.end(), r.values.begin(), r.values.end());
    for (const Expr* res : residual) {
      PCQE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*res, combined));
      if (!keep) return Status::OK();
    }
    out.push_back({std::move(combined), arena_->And(l.lineage, r.lineage)});
    return Status::OK();
  };

  if (!equi_pairs.empty()) {
    // Hash join on the equi columns; SQL equality never matches NULL keys.
    std::unordered_map<std::vector<Value>, std::vector<size_t>, ValueVecHash, ValueVecEq>
        build;
    build.reserve(right.size());
    for (size_t i = 0; i < right.size(); ++i) {
      std::vector<Value> key;
      key.reserve(equi_pairs.size());
      bool has_null = false;
      for (const auto& [l_idx, r_idx] : equi_pairs) {
        (void)l_idx;
        const Value& v = right[i].values[r_idx];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (!has_null) build[std::move(key)].push_back(i);
    }
    // A foreign-key-style probe emits about one row per left row; reserving
    // that floor avoids most growth reallocations of the output vector.
    out.reserve(left.size());
    std::vector<Value> key;
    for (const ExecRow& l : left) {
      key.clear();
      key.reserve(equi_pairs.size());
      bool has_null = false;
      for (const auto& [l_idx, r_idx] : equi_pairs) {
        (void)r_idx;
        const Value& v = l.values[l_idx];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (has_null) continue;
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (size_t r_i : it->second) {
        PCQE_RETURN_NOT_OK(emit(l, right[r_i]));
      }
    }
    return out;
  }

  // Nested loop for theta joins and cross products.
  for (const ExecRow& l : left) {
    for (const ExecRow& r : right) {
      PCQE_RETURN_NOT_OK(emit(l, r));
    }
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunDistinct(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  return exec_internal::DistinctRows(std::move(input), arena_);
}

Result<std::vector<ExecRow>> Executor::RunSetOp(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> left, Run(*plan.left));
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> right, Run(*plan.right));
  return exec_internal::SetOpRows(plan.kind, std::move(left), std::move(right), arena_);
}

Result<std::vector<ExecRow>> Executor::RunAggregate(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  return exec_internal::AggregateRows(plan, std::move(input), arena_);
}

Result<std::vector<ExecRow>> Executor::RunSort(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  // Precompute key tuples once (comparator re-evaluation would be O(n log n)
  // expression evals).
  std::vector<std::vector<Value>> keys(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    keys[i].reserve(plan.sort_keys.size());
    for (const PlanNode::SortKey& k : plan.sort_keys) {
      PCQE_ASSIGN_OR_RETURN(Value v, k.expr->Eval(input[i].values));
      keys[i].push_back(std::move(v));
    }
  }
  std::vector<size_t> order(input.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
      int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) return plan.sort_keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<ExecRow> out;
  out.reserve(input.size());
  for (size_t i : order) out.push_back(std::move(input[i]));
  return out;
}

Result<std::vector<ExecRow>> Executor::RunLimit(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  if (static_cast<int64_t>(input.size()) > plan.limit) {
    input.resize(static_cast<size_t>(plan.limit));
  }
  return input;
}

}  // namespace pcqe
