#include "query/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace pcqe {

namespace {

struct ValueVecHash {
  size_t operator()(const std::vector<Value>& v) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& x : v) {
      h ^= x.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct ValueVecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

/// Grouping of rows by value-equality, preserving first-seen order.
class RowGroups {
 public:
  /// Adds a row's lineage to its value group. Values are copied on first
  /// sight only.
  void Add(const std::vector<Value>& values, LineageRef lineage) {
    auto [it, inserted] = index_.try_emplace(values, groups_.size());
    if (inserted) {
      groups_.push_back({values, {lineage}});
    } else {
      groups_[it->second].lineages.push_back(lineage);
    }
  }

  /// Lineages of the group matching `values`, or nullptr.
  const std::vector<LineageRef>* Find(const std::vector<Value>& values) const {
    auto it = index_.find(values);
    return it == index_.end() ? nullptr : &groups_[it->second].lineages;
  }

  struct Group {
    std::vector<Value> values;
    std::vector<LineageRef> lineages;
  };
  const std::vector<Group>& groups() const { return groups_; }

 private:
  std::vector<Group> groups_;
  std::unordered_map<std::vector<Value>, size_t, ValueVecHash, ValueVecEq> index_;
};

/// Splits `predicate` into equi-join pairs usable for hashing (column =
/// column with the two sides split by `left_width`) and residual conjuncts.
void SplitJoinPredicate(const Expr* predicate, size_t left_width,
                        std::vector<std::pair<size_t, size_t>>* equi_pairs,
                        std::vector<const Expr*>* residual) {
  if (predicate == nullptr) return;
  if (predicate->kind() == ExprKind::kBinary &&
      predicate->binary_op() == BinaryOp::kAnd) {
    SplitJoinPredicate(predicate->left(), left_width, equi_pairs, residual);
    SplitJoinPredicate(predicate->right(), left_width, equi_pairs, residual);
    return;
  }
  if (predicate->kind() == ExprKind::kBinary &&
      predicate->binary_op() == BinaryOp::kEq &&
      predicate->left()->kind() == ExprKind::kColumnRef &&
      predicate->right()->kind() == ExprKind::kColumnRef) {
    size_t a = predicate->left()->column_index();
    size_t b = predicate->right()->column_index();
    if (a < left_width && b >= left_width) {
      equi_pairs->emplace_back(a, b - left_width);
      return;
    }
    if (b < left_width && a >= left_width) {
      equi_pairs->emplace_back(b, a - left_width);
      return;
    }
  }
  residual->push_back(predicate);
}

/// Evaluates a bound BOOLEAN expression against `row`, mapping NULL to
/// false (SQL WHERE semantics).
Result<bool> EvalPredicate(const Expr& predicate, const std::vector<Value>& row) {
  PCQE_ASSIGN_OR_RETURN(Value v, predicate.Eval(row));
  if (v.is_null()) return false;
  return v.AsBool();
}

}  // namespace

Result<std::vector<ExecRow>> Executor::Run(const PlanNode& plan) {
  switch (plan.kind) {
    case PlanKind::kScan:
      return RunScan(plan);
    case PlanKind::kFilter:
      return RunFilter(plan);
    case PlanKind::kProject:
      return RunProject(plan);
    case PlanKind::kJoin:
      return RunJoin(plan);
    case PlanKind::kDistinct:
      return RunDistinct(plan);
    case PlanKind::kUnionAll:
    case PlanKind::kUnion:
    case PlanKind::kExcept:
    case PlanKind::kIntersect:
      return RunSetOp(plan);
    case PlanKind::kSort:
      return RunSort(plan);
    case PlanKind::kLimit:
      return RunLimit(plan);
    case PlanKind::kAggregate:
      return RunAggregate(plan);
  }
  return Status::Internal("unknown plan kind");
}

Result<std::vector<ExecRow>> Executor::RunScan(const PlanNode& plan) {
  PCQE_CHECK(plan.table != nullptr);
  std::vector<ExecRow> out;
  out.reserve(plan.table->num_tuples());
  for (const Tuple& t : plan.table->tuples()) {
    out.push_back({t.values(), arena_->Var(t.id())});
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunFilter(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  std::vector<ExecRow> out;
  for (ExecRow& row : input) {
    PCQE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*plan.predicate, row.values));
    if (keep) out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunProject(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  std::vector<ExecRow> out;
  out.reserve(input.size());
  for (const ExecRow& row : input) {
    ExecRow projected;
    projected.lineage = row.lineage;
    projected.values.reserve(plan.projections.size());
    for (const auto& expr : plan.projections) {
      PCQE_ASSIGN_OR_RETURN(Value v, expr->Eval(row.values));
      projected.values.push_back(std::move(v));
    }
    out.push_back(std::move(projected));
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunJoin(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> left, Run(*plan.left));
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> right, Run(*plan.right));
  size_t left_width = plan.left->output_schema.num_columns();

  std::vector<std::pair<size_t, size_t>> equi_pairs;
  std::vector<const Expr*> residual;
  SplitJoinPredicate(plan.predicate.get(), left_width, &equi_pairs, &residual);

  std::vector<ExecRow> out;
  auto emit = [&](const ExecRow& l, const ExecRow& r) -> Status {
    std::vector<Value> combined = l.values;
    combined.insert(combined.end(), r.values.begin(), r.values.end());
    for (const Expr* res : residual) {
      PCQE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*res, combined));
      if (!keep) return Status::OK();
    }
    out.push_back({std::move(combined), arena_->And(l.lineage, r.lineage)});
    return Status::OK();
  };

  if (!equi_pairs.empty()) {
    // Hash join on the equi columns; SQL equality never matches NULL keys.
    std::unordered_map<std::vector<Value>, std::vector<size_t>, ValueVecHash, ValueVecEq>
        build;
    for (size_t i = 0; i < right.size(); ++i) {
      std::vector<Value> key;
      key.reserve(equi_pairs.size());
      bool has_null = false;
      for (const auto& [l_idx, r_idx] : equi_pairs) {
        (void)l_idx;
        const Value& v = right[i].values[r_idx];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (!has_null) build[std::move(key)].push_back(i);
    }
    for (const ExecRow& l : left) {
      std::vector<Value> key;
      key.reserve(equi_pairs.size());
      bool has_null = false;
      for (const auto& [l_idx, r_idx] : equi_pairs) {
        (void)r_idx;
        const Value& v = l.values[l_idx];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (has_null) continue;
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (size_t r_i : it->second) {
        PCQE_RETURN_NOT_OK(emit(l, right[r_i]));
      }
    }
    return out;
  }

  // Nested loop for theta joins and cross products.
  for (const ExecRow& l : left) {
    for (const ExecRow& r : right) {
      PCQE_RETURN_NOT_OK(emit(l, r));
    }
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunDistinct(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  RowGroups groups;
  for (const ExecRow& row : input) groups.Add(row.values, row.lineage);
  std::vector<ExecRow> out;
  out.reserve(groups.groups().size());
  for (const RowGroups::Group& g : groups.groups()) {
    out.push_back({g.values, arena_->Or(g.lineages)});
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunSetOp(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> left, Run(*plan.left));
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> right, Run(*plan.right));

  if (plan.kind == PlanKind::kUnionAll) {
    for (ExecRow& r : right) left.push_back(std::move(r));
    return left;
  }

  if (plan.kind == PlanKind::kUnion) {
    RowGroups groups;
    for (const ExecRow& row : left) groups.Add(row.values, row.lineage);
    for (const ExecRow& row : right) groups.Add(row.values, row.lineage);
    std::vector<ExecRow> out;
    out.reserve(groups.groups().size());
    for (const RowGroups::Group& g : groups.groups()) {
      out.push_back({g.values, arena_->Or(g.lineages)});
    }
    return out;
  }

  // EXCEPT / INTERSECT work on deduplicated sides.
  RowGroups left_groups;
  for (const ExecRow& row : left) left_groups.Add(row.values, row.lineage);
  RowGroups right_groups;
  for (const ExecRow& row : right) right_groups.Add(row.values, row.lineage);

  std::vector<ExecRow> out;
  for (const RowGroups::Group& g : left_groups.groups()) {
    const std::vector<LineageRef>* rhs = right_groups.Find(g.values);
    LineageRef left_or = arena_->Or(g.lineages);
    if (plan.kind == PlanKind::kIntersect) {
      if (rhs == nullptr) continue;
      out.push_back({g.values, arena_->And(left_or, arena_->Or(*rhs))});
    } else {  // kExcept
      LineageRef lineage = left_or;
      if (rhs != nullptr) {
        lineage = arena_->And(left_or, arena_->Not(arena_->Or(*rhs)));
        // A certain right-side derivation folds the lineage to constant
        // false: the row can never appear, so drop it like classic EXCEPT.
        if (arena_->op(lineage) == LineageOp::kFalse) continue;
      }
      out.push_back({g.values, lineage});
    }
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunAggregate(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));

  // Partition the input by key values, preserving first-seen group order.
  std::vector<std::vector<size_t>> groups;  // member row indices
  std::vector<std::vector<Value>> group_keys;
  {
    std::unordered_map<std::vector<Value>, size_t, ValueVecHash, ValueVecEq> index;
    for (size_t r = 0; r < input.size(); ++r) {
      std::vector<Value> key;
      key.reserve(plan.group_keys.size());
      for (const auto& k : plan.group_keys) {
        PCQE_ASSIGN_OR_RETURN(Value v, k->Eval(input[r].values));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = index.try_emplace(key, groups.size());
      if (inserted) {
        groups.emplace_back();
        group_keys.push_back(std::move(key));
      }
      groups[it->second].push_back(r);
    }
  }
  // A global aggregation (no keys) over empty input still produces one row
  // (COUNT(*) = 0, other aggregates NULL). Its lineage is `true`: there are
  // no base tuples whose presence could change the answer.
  if (groups.empty() && plan.group_keys.empty()) {
    groups.emplace_back();
    group_keys.emplace_back();
  }

  std::vector<ExecRow> out;
  out.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    ExecRow row;
    row.values = group_keys[g];

    for (const PlanNode::AggregateSpec& spec : plan.aggregates) {
      // Collect the aggregate input (non-NULL argument values, or the raw
      // member count for COUNT(*)).
      std::vector<Value> args;
      for (size_t r : groups[g]) {
        if (!spec.arg) continue;
        PCQE_ASSIGN_OR_RETURN(Value v, spec.arg->Eval(input[r].values));
        if (!v.is_null()) args.push_back(std::move(v));
      }
      switch (spec.func) {
        case AggFunc::kCount:
          row.values.push_back(Value::Int(static_cast<int64_t>(
              spec.arg ? args.size() : groups[g].size())));
          break;
        case AggFunc::kSum: {
          if (args.empty()) {
            row.values.push_back(Value::Null());
            break;
          }
          bool all_int = true;
          double sum = 0.0;
          int64_t isum = 0;
          for (const Value& v : args) {
            if (v.type() == DataType::kInt64) {
              isum += *v.AsInt();
            } else {
              all_int = false;
            }
            PCQE_ASSIGN_OR_RETURN(double d, v.AsDouble());
            sum += d;
          }
          row.values.push_back(all_int ? Value::Int(isum) : Value::Double(sum));
          break;
        }
        case AggFunc::kAvg: {
          if (args.empty()) {
            row.values.push_back(Value::Null());
            break;
          }
          double sum = 0.0;
          for (const Value& v : args) {
            PCQE_ASSIGN_OR_RETURN(double d, v.AsDouble());
            sum += d;
          }
          row.values.push_back(Value::Double(sum / static_cast<double>(args.size())));
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          if (args.empty()) {
            row.values.push_back(Value::Null());
            break;
          }
          Value best = args[0];
          for (const Value& v : args) {
            int c = v.Compare(best);
            if ((spec.func == AggFunc::kMin && c < 0) ||
                (spec.func == AggFunc::kMax && c > 0)) {
              best = v;
            }
          }
          row.values.push_back(std::move(best));
          break;
        }
      }
    }

    // Conservative lineage: the aggregate value is exactly right iff every
    // contributing row's derivation holds, i.e. the conjunction of member
    // lineages. An empty (global) group is certain.
    std::vector<LineageRef> members;
    members.reserve(groups[g].size());
    for (size_t r : groups[g]) members.push_back(input[r].lineage);
    row.lineage = members.empty() ? arena_->True() : arena_->And(members);
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<ExecRow>> Executor::RunSort(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  // Precompute key tuples once (comparator re-evaluation would be O(n log n)
  // expression evals).
  std::vector<std::vector<Value>> keys(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    keys[i].reserve(plan.sort_keys.size());
    for (const PlanNode::SortKey& k : plan.sort_keys) {
      PCQE_ASSIGN_OR_RETURN(Value v, k.expr->Eval(input[i].values));
      keys[i].push_back(std::move(v));
    }
  }
  std::vector<size_t> order(input.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
      int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) return plan.sort_keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<ExecRow> out;
  out.reserve(input.size());
  for (size_t i : order) out.push_back(std::move(input[i]));
  return out;
}

Result<std::vector<ExecRow>> Executor::RunLimit(const PlanNode& plan) {
  PCQE_ASSIGN_OR_RETURN(std::vector<ExecRow> input, Run(*plan.left));
  if (static_cast<int64_t>(input.size()) > plan.limit) {
    input.resize(static_cast<size_t>(plan.limit));
  }
  return input;
}

}  // namespace pcqe
