// Copyright (c) PCQE contributors.
// Scalar expressions: the WHERE/ON/SELECT-list language.

#ifndef PCQE_QUERY_EXPRESSION_H_
#define PCQE_QUERY_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pcqe {

/// \brief Expression node kinds.
enum class ExprKind : uint8_t { kLiteral, kColumnRef, kUnary, kBinary, kAggregate };

/// \brief Aggregate functions.
enum class AggFunc : uint8_t { kCount, kSum, kAvg, kMin, kMax };

/// Canonical uppercase name ("COUNT", ...).
std::string AggFuncToString(AggFunc func);

/// \brief Unary operators.
enum class UnaryOp : uint8_t { kNot, kNegate, kIsNull, kIsNotNull };

/// \brief Binary operators.
enum class BinaryOp : uint8_t {
  kEq, kNe, kLt, kLe, kGt, kGe,      // comparison
  kAdd, kSub, kMul, kDiv,            // arithmetic
  kAnd, kOr,                         // logical (Kleene three-valued)
  kLike,                             // SQL LIKE with % and _
};

/// Symbolic form ("=", "AND", ...) for diagnostics.
std::string BinaryOpToString(BinaryOp op);

/// \brief A mutable expression tree.
///
/// Lifecycle: build (parser or the factory helpers below) → `Bind` against a
/// schema (resolves column references to indices and infers `result_type`) →
/// `Eval` per row. Unbound expressions fail evaluation with `kInternal`.
///
/// Evaluation uses SQL three-valued semantics: comparisons and arithmetic
/// with a NULL operand yield NULL; AND/OR follow Kleene logic; a WHERE
/// predicate keeps a row only when it evaluates to (non-NULL) true.
class Expr {
 public:
  /// \name Factories.
  /// @{
  static std::unique_ptr<Expr> Literal(Value v);
  static std::unique_ptr<Expr> ColumnRef(std::string name);
  static std::unique_ptr<Expr> Unary(UnaryOp op, std::unique_ptr<Expr> operand);
  static std::unique_ptr<Expr> Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);
  /// Aggregate call; `arg` is null for COUNT(*).
  static std::unique_ptr<Expr> Aggregate(AggFunc func, std::unique_ptr<Expr> arg);
  /// @}

  ExprKind kind() const { return kind_; }

  /// Literal payload; only for `kLiteral`.
  const Value& literal() const { return literal_; }

  /// Column name as written ("c" or "t.c"); only for `kColumnRef`.
  const std::string& column_name() const { return column_name_; }

  /// Resolved column index; only valid after `Bind` on a `kColumnRef`.
  size_t column_index() const { return column_index_; }

  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

  /// Aggregate function; only for `kAggregate`.
  AggFunc agg_func() const { return agg_func_; }
  /// True for COUNT(*); only for `kAggregate`.
  bool is_count_star() const { return kind_ == ExprKind::kAggregate && left_ == nullptr; }

  /// True when any node in this tree is an aggregate call.
  bool ContainsAggregate() const;

  /// \brief Rewrites `expr` so every aggregate subtree is replaced by a
  /// column reference `__agg<i>` (i = position in `lifted`), moving the
  /// aggregate nodes into `lifted`.
  ///
  /// The aggregation planner lifts aggregates out of SELECT and HAVING
  /// expressions, evaluates them per group into synthetic `__agg<i>`
  /// columns, and evaluates the rewritten expressions on top. Nested
  /// aggregates (an aggregate whose argument contains an aggregate) are a
  /// bind error.
  [[nodiscard]] static Result<std::unique_ptr<Expr>> LiftAggregates(
      std::unique_ptr<Expr> expr, std::vector<std::unique_ptr<Expr>>* lifted);

  /// \brief Replaces every subtree whose textual form equals a key of
  /// `text_to_column` with a column reference to the mapped name.
  ///
  /// Used to resolve SELECT/HAVING expressions against GROUP BY *expression*
  /// keys (SQL matches them syntactically): `GROUP BY a + b` makes `a + b`
  /// in the select list refer to the computed key column.
  static std::unique_ptr<Expr> ReplaceBySyntax(
      std::unique_ptr<Expr> expr,
      const std::vector<std::pair<std::string, std::string>>& text_to_column);

  /// Static type after `Bind`; `kNull` for expressions that can only be NULL.
  DataType result_type() const { return result_type_; }

  /// Resolves column references against `schema` and type-checks the tree.
  /// Idempotent; re-binding against a different schema is allowed (used when
  /// one predicate template is evaluated against several inputs).
  [[nodiscard]] Status Bind(const Schema& schema);

  /// Evaluates against one row laid out per the bound schema.
  [[nodiscard]] Result<Value> Eval(const std::vector<Value>& row) const;

  /// Deep copy (unbound state is preserved; binding state is copied too).
  std::unique_ptr<Expr> Clone() const;

  /// Parenthesized text form, e.g. "((t.funding < 1000000) AND (t.x = 3))".
  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  Value literal_;
  std::string column_name_;
  size_t column_index_ = static_cast<size_t>(-1);
  UnaryOp unary_op_ = UnaryOp::kNot;
  BinaryOp binary_op_ = BinaryOp::kEq;
  AggFunc agg_func_ = AggFunc::kCount;
  std::unique_ptr<Expr> left_;
  std::unique_ptr<Expr> right_;
  DataType result_type_ = DataType::kNull;
  bool bound_ = false;
};

/// Matches SQL LIKE patterns: '%' any run, '_' any single char. Exposed for
/// direct testing.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace pcqe

#endif  // PCQE_QUERY_EXPRESSION_H_
