#include "query/parser.h"

#include <cstdlib>

#include "common/string_util.h"
#include "query/lexer.h"

namespace pcqe {

namespace {

/// Token-stream cursor with SQL-flavored error reporting.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseStatement() {
    PCQE_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> stmt, ParseSetChain());
    // ORDER BY / LIMIT attach to the outermost statement.
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      PCQE_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        OrderByItem item;
        PCQE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Peek().IsKeyword("ASC")) {
          Advance();
        } else if (Peek().IsKeyword("DESC")) {
          Advance();
          item.ascending = false;
        }
        stmt->order_by.push_back(std::move(item));
        if (!Peek().IsOperator(",")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      stmt->limit = std::strtoll(Peek().text.c_str(), nullptr, 10);
      if (stmt->limit < 0) return Error("LIMIT must be non-negative");
      Advance();
    }
    if (Peek().IsOperator(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

  Result<std::unique_ptr<Expr>> ParseStandaloneExpr() {
    PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    std::string got = t.type == TokenType::kEnd ? "end of input" : "'" + t.text + "'";
    return Status::ParseError(
        StrFormat("%s (got %s at offset %zu)", msg.c_str(), got.c_str(), t.offset));
  }

  Status Expect(const std::string& keyword) {
    if (!Peek().IsKeyword(keyword)) return Error("expected " + keyword);
    Advance();
    return Status::OK();
  }

  Status ExpectOperator(const std::string& op) {
    if (!Peek().IsOperator(op)) return Error("expected '" + op + "'");
    Advance();
    return Status::OK();
  }

  // core (set_op core)*
  Result<std::unique_ptr<SelectStatement>> ParseSetChain() {
    PCQE_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> stmt, ParseCore());
    SelectStatement* tail = stmt.get();
    while (true) {
      SetOpKind op = SetOpKind::kNone;
      if (Peek().IsKeyword("UNION")) {
        Advance();
        op = SetOpKind::kUnion;
        if (Peek().IsKeyword("ALL")) {
          Advance();
          op = SetOpKind::kUnionAll;
        }
      } else if (Peek().IsKeyword("EXCEPT")) {
        Advance();
        op = SetOpKind::kExcept;
      } else if (Peek().IsKeyword("INTERSECT")) {
        Advance();
        op = SetOpKind::kIntersect;
      } else {
        break;
      }
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> rhs, ParseCore());
      tail->set_op = op;
      tail->set_rhs = std::move(rhs);
      tail = tail->set_rhs.get();
    }
    return stmt;
  }

  // SELECT [DISTINCT] items FROM refs [WHERE expr]
  Result<std::unique_ptr<SelectStatement>> ParseCore() {
    PCQE_RETURN_NOT_OK(Expect("SELECT"));
    auto stmt = std::make_unique<SelectStatement>();
    if (Peek().IsKeyword("DISTINCT")) {
      Advance();
      stmt->distinct = true;
    } else if (Peek().IsKeyword("ALL")) {
      Advance();
    }

    // Select list.
    while (true) {
      SelectItem item;
      if (Peek().IsOperator("*")) {
        Advance();
        item.is_star = true;
      } else {
        PCQE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Peek().IsKeyword("AS")) {
          Advance();
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected alias identifier after AS");
          }
          item.alias = Peek().text;
          Advance();
        } else if (Peek().type == TokenType::kIdentifier) {
          // Bare alias: SELECT a b
          item.alias = Peek().text;
          Advance();
        }
      }
      stmt->select_list.push_back(std::move(item));
      if (!Peek().IsOperator(",")) break;
      Advance();
    }

    PCQE_RETURN_NOT_OK(Expect("FROM"));
    PCQE_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt->from.push_back(std::move(first));
    while (true) {
      if (Peek().IsOperator(",")) {
        Advance();
        PCQE_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        continue;
      }
      if (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
        if (Peek().IsKeyword("INNER")) Advance();
        PCQE_RETURN_NOT_OK(Expect("JOIN"));
        JoinClause join;
        PCQE_ASSIGN_OR_RETURN(join.table, ParseTableRef());
        PCQE_RETURN_NOT_OK(Expect("ON"));
        PCQE_ASSIGN_OR_RETURN(join.condition, ParseExpr());
        stmt->joins.push_back(std::move(join));
        continue;
      }
      break;
    }

    if (Peek().IsKeyword("WHERE")) {
      Advance();
      PCQE_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      PCQE_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> key, ParseExpr());
        stmt->group_by.push_back(std::move(key));
        if (!Peek().IsOperator(",")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("HAVING")) {
      Advance();
      PCQE_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Peek().IsOperator("(")) {
      Advance();
      PCQE_ASSIGN_OR_RETURN(ref.subquery, ParseSetChain());
      PCQE_RETURN_NOT_OK(ExpectOperator(")"));
      // Alias mandatory for derived tables.
      if (Peek().IsKeyword("AS")) Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Error("derived table requires an alias");
      }
      ref.alias = Peek().text;
      Advance();
      return ref;
    }
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected table name");
    }
    ref.table_name = Peek().text;
    Advance();
    if (Peek().IsKeyword("AS")) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected alias identifier after AS");
      }
      ref.alias = Peek().text;
      Advance();
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Peek().text;
      Advance();
    }
    return ref;
  }

  // Expression precedence (loosest to tightest):
  //   OR < AND < NOT < comparison/LIKE/IS < + - < * / < unary - < primary
  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      Advance();
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAnd());
      left = Expr::Binary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseNot());
    while (Peek().IsKeyword("AND")) {
      Advance();
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseNot());
      left = Expr::Binary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAdditive());
    // IS [NOT] NULL
    if (Peek().IsKeyword("IS")) {
      Advance();
      bool negated = false;
      if (Peek().IsKeyword("NOT")) {
        Advance();
        negated = true;
      }
      PCQE_RETURN_NOT_OK(Expect("NULL"));
      return Expr::Unary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                         std::move(left));
    }
    // [NOT] LIKE / IN / BETWEEN.
    bool negated = false;
    if (Peek().IsKeyword("NOT") && (Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("IN") ||
                                    Peek(1).IsKeyword("BETWEEN"))) {
      Advance();
      negated = true;
    }
    if (Peek().IsKeyword("LIKE")) {
      Advance();
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> pattern, ParseAdditive());
      std::unique_ptr<Expr> like =
          Expr::Binary(BinaryOp::kLike, std::move(left), std::move(pattern));
      return negated ? Expr::Unary(UnaryOp::kNot, std::move(like)) : std::move(like);
    }
    if (Peek().IsKeyword("IN")) {
      // x IN (a, b, c) desugars to (x = a OR x = b OR x = c).
      Advance();
      PCQE_RETURN_NOT_OK(ExpectOperator("("));
      std::unique_ptr<Expr> disjunction;
      while (true) {
        PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> item, ParseExpr());
        std::unique_ptr<Expr> eq =
            Expr::Binary(BinaryOp::kEq, left->Clone(), std::move(item));
        disjunction = disjunction ? Expr::Binary(BinaryOp::kOr, std::move(disjunction),
                                                 std::move(eq))
                                  : std::move(eq);
        if (!Peek().IsOperator(",")) break;
        Advance();
      }
      PCQE_RETURN_NOT_OK(ExpectOperator(")"));
      return negated ? Expr::Unary(UnaryOp::kNot, std::move(disjunction))
                     : std::move(disjunction);
    }
    if (Peek().IsKeyword("BETWEEN")) {
      // x BETWEEN lo AND hi desugars to (x >= lo AND x <= hi).
      Advance();
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lo, ParseAdditive());
      PCQE_RETURN_NOT_OK(Expect("AND"));
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> hi, ParseAdditive());
      // Clone before moving `left`: argument evaluation order is
      // unspecified, so `left->Clone()` and `std::move(left)` must not
      // share one full-expression.
      std::unique_ptr<Expr> left_copy = left->Clone();
      std::unique_ptr<Expr> range = Expr::Binary(
          BinaryOp::kAnd, Expr::Binary(BinaryOp::kGe, std::move(left_copy), std::move(lo)),
          Expr::Binary(BinaryOp::kLe, std::move(left), std::move(hi)));
      return negated ? Expr::Unary(UnaryOp::kNot, std::move(range)) : std::move(range);
    }
    if (negated) return Error("expected LIKE, IN or BETWEEN after NOT");
    static const struct {
      const char* text;
      BinaryOp op;
    } kComparisons[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
                        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                        {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& c : kComparisons) {
      if (Peek().IsOperator(c.text)) {
        Advance();
        PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAdditive());
        return Expr::Binary(c.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseMultiplicative());
    while (Peek().IsOperator("+") || Peek().IsOperator("-")) {
      BinaryOp op = Peek().IsOperator("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseMultiplicative());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseUnary());
    while (Peek().IsOperator("*") || Peek().IsOperator("/")) {
      BinaryOp op = Peek().IsOperator("*") ? BinaryOp::kMul : BinaryOp::kDiv;
      Advance();
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseUnary());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Peek().IsOperator("-")) {
      Advance();
      PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNegate, std::move(operand));
    }
    if (Peek().IsOperator("+")) {
      Advance();
      return ParseUnary();
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        int64_t v = std::strtoll(t.text.c_str(), nullptr, 10);
        Advance();
        return Expr::Literal(Value::Int(v));
      }
      case TokenType::kFloat: {
        double v = std::strtod(t.text.c_str(), nullptr);
        Advance();
        return Expr::Literal(Value::Double(v));
      }
      case TokenType::kString: {
        std::string v = t.text;
        Advance();
        return Expr::Literal(Value::String(std::move(v)));
      }
      case TokenType::kKeyword: {
        // Aggregate calls: COUNT(*|expr), SUM/AVG/MIN/MAX(expr).
        static const struct {
          const char* name;
          AggFunc func;
        } kAggs[] = {{"COUNT", AggFunc::kCount},
                     {"SUM", AggFunc::kSum},
                     {"AVG", AggFunc::kAvg},
                     {"MIN", AggFunc::kMin},
                     {"MAX", AggFunc::kMax}};
        for (const auto& agg : kAggs) {
          if (!t.IsKeyword(agg.name)) continue;
          Advance();
          PCQE_RETURN_NOT_OK(ExpectOperator("("));
          if (Peek().IsOperator("*")) {
            if (agg.func != AggFunc::kCount) {
              return Error("'*' argument is only valid for COUNT");
            }
            Advance();
            PCQE_RETURN_NOT_OK(ExpectOperator(")"));
            return Expr::Aggregate(AggFunc::kCount, nullptr);
          }
          PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseExpr());
          PCQE_RETURN_NOT_OK(ExpectOperator(")"));
          return Expr::Aggregate(agg.func, std::move(arg));
        }
        if (t.IsKeyword("TRUE")) {
          Advance();
          return Expr::Literal(Value::Bool(true));
        }
        if (t.IsKeyword("FALSE")) {
          Advance();
          return Expr::Literal(Value::Bool(false));
        }
        if (t.IsKeyword("NULL")) {
          Advance();
          return Expr::Literal(Value::Null());
        }
        return Error("unexpected keyword in expression");
      }
      case TokenType::kIdentifier: {
        std::string name = t.text;
        Advance();
        if (Peek().IsOperator(".")) {
          Advance();
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected column name after '.'");
          }
          name += "." + Peek().text;
          Advance();
        }
        return Expr::ColumnRef(std::move(name));
      }
      case TokenType::kOperator:
        if (t.IsOperator("(")) {
          Advance();
          PCQE_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
          PCQE_RETURN_NOT_OK(ExpectOperator(")"));
          return inner;
        }
        return Error("unexpected operator in expression");
      case TokenType::kEnd:
        return Error("unexpected end of input in expression");
    }
    return Error("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStatement>> ParseSelect(const std::string& sql) {
  PCQE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::unique_ptr<Expr>> ParseExpression(const std::string& text) {
  PCQE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpr();
}

}  // namespace pcqe
