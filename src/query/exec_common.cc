#include "query/exec_common.h"

#include "common/logging.h"

namespace pcqe {
namespace exec_internal {

void SplitJoinPredicate(const Expr* predicate, size_t left_width,
                        std::vector<std::pair<size_t, size_t>>* equi_pairs,
                        std::vector<const Expr*>* residual) {  // NOLINT(misc-no-recursion)
  if (predicate == nullptr) return;
  if (predicate->kind() == ExprKind::kBinary &&
      predicate->binary_op() == BinaryOp::kAnd) {
    SplitJoinPredicate(predicate->left(), left_width, equi_pairs, residual);
    SplitJoinPredicate(predicate->right(), left_width, equi_pairs, residual);
    return;
  }
  if (predicate->kind() == ExprKind::kBinary &&
      predicate->binary_op() == BinaryOp::kEq &&
      predicate->left()->kind() == ExprKind::kColumnRef &&
      predicate->right()->kind() == ExprKind::kColumnRef) {
    size_t a = predicate->left()->column_index();
    size_t b = predicate->right()->column_index();
    if (a < left_width && b >= left_width) {
      equi_pairs->emplace_back(a, b - left_width);
      return;
    }
    if (b < left_width && a >= left_width) {
      equi_pairs->emplace_back(b, a - left_width);
      return;
    }
  }
  residual->push_back(predicate);
}

Result<bool> EvalPredicate(const Expr& predicate, const std::vector<Value>& row) {
  PCQE_ASSIGN_OR_RETURN(Value v, predicate.Eval(row));
  if (v.is_null()) return false;
  return v.AsBool();
}

Result<std::vector<ExecRow>> DistinctRows(std::vector<ExecRow> input, LineageArena* arena) {
  RowGroups groups;
  for (const ExecRow& row : input) groups.Add(row.values, row.lineage);
  std::vector<ExecRow> out;
  out.reserve(groups.groups().size());
  for (const RowGroups::Group& g : groups.groups()) {
    out.push_back({g.values, arena->Or(g.lineages)});
  }
  return out;
}

Result<std::vector<ExecRow>> SetOpRows(PlanKind kind, std::vector<ExecRow> left,
                                       std::vector<ExecRow> right, LineageArena* arena) {
  if (kind == PlanKind::kUnionAll) {
    left.reserve(left.size() + right.size());
    for (ExecRow& r : right) left.push_back(std::move(r));
    return left;
  }

  if (kind == PlanKind::kUnion) {
    RowGroups groups;
    for (const ExecRow& row : left) groups.Add(row.values, row.lineage);
    for (const ExecRow& row : right) groups.Add(row.values, row.lineage);
    std::vector<ExecRow> out;
    out.reserve(groups.groups().size());
    for (const RowGroups::Group& g : groups.groups()) {
      out.push_back({g.values, arena->Or(g.lineages)});
    }
    return out;
  }

  // EXCEPT / INTERSECT work on deduplicated sides.
  RowGroups left_groups;
  for (const ExecRow& row : left) left_groups.Add(row.values, row.lineage);
  RowGroups right_groups;
  for (const ExecRow& row : right) right_groups.Add(row.values, row.lineage);

  std::vector<ExecRow> out;
  for (const RowGroups::Group& g : left_groups.groups()) {
    const std::vector<LineageRef>* rhs = right_groups.Find(g.values);
    LineageRef left_or = arena->Or(g.lineages);
    if (kind == PlanKind::kIntersect) {
      if (rhs == nullptr) continue;
      out.push_back({g.values, arena->And(left_or, arena->Or(*rhs))});
    } else {  // kExcept
      LineageRef lineage = left_or;
      if (rhs != nullptr) {
        lineage = arena->And(left_or, arena->Not(arena->Or(*rhs)));
        // A certain right-side derivation folds the lineage to constant
        // false: the row can never appear, so drop it like classic EXCEPT.
        if (arena->op(lineage) == LineageOp::kFalse) continue;
      }
      out.push_back({g.values, lineage});
    }
  }
  return out;
}

Result<std::vector<ExecRow>> AggregateRows(const PlanNode& plan, std::vector<ExecRow> input,
                                           LineageArena* arena) {
  // Partition the input by key values, preserving first-seen group order.
  std::vector<std::vector<size_t>> groups;  // member row indices
  std::vector<std::vector<Value>> group_keys;
  {
    std::unordered_map<std::vector<Value>, size_t, ValueVecHash, ValueVecEq> index;
    for (size_t r = 0; r < input.size(); ++r) {
      std::vector<Value> key;
      key.reserve(plan.group_keys.size());
      for (const auto& k : plan.group_keys) {
        PCQE_ASSIGN_OR_RETURN(Value v, k->Eval(input[r].values));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = index.try_emplace(key, groups.size());
      if (inserted) {
        groups.emplace_back();
        group_keys.push_back(std::move(key));
      }
      groups[it->second].push_back(r);
    }
  }
  // A global aggregation (no keys) over empty input still produces one row
  // (COUNT(*) = 0, other aggregates NULL). Its lineage is `true`: there are
  // no base tuples whose presence could change the answer.
  if (groups.empty() && plan.group_keys.empty()) {
    groups.emplace_back();
    group_keys.emplace_back();
  }

  std::vector<ExecRow> out;
  out.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    ExecRow row;
    row.values = group_keys[g];
    row.values.reserve(group_keys[g].size() + plan.aggregates.size());

    for (const PlanNode::AggregateSpec& spec : plan.aggregates) {
      // Collect the aggregate input (non-NULL argument values, or the raw
      // member count for COUNT(*)).
      std::vector<Value> args;
      args.reserve(spec.arg ? groups[g].size() : 0);
      for (size_t r : groups[g]) {
        if (!spec.arg) continue;
        PCQE_ASSIGN_OR_RETURN(Value v, spec.arg->Eval(input[r].values));
        if (!v.is_null()) args.push_back(std::move(v));
      }
      switch (spec.func) {
        case AggFunc::kCount:
          row.values.push_back(Value::Int(static_cast<int64_t>(
              spec.arg ? args.size() : groups[g].size())));
          break;
        case AggFunc::kSum: {
          if (args.empty()) {
            row.values.push_back(Value::Null());
            break;
          }
          bool all_int = true;
          double sum = 0.0;
          int64_t isum = 0;
          for (const Value& v : args) {
            if (v.type() == DataType::kInt64) {
              isum += *v.AsInt();
            } else {
              all_int = false;
            }
            PCQE_ASSIGN_OR_RETURN(double d, v.AsDouble());
            sum += d;
          }
          row.values.push_back(all_int ? Value::Int(isum) : Value::Double(sum));
          break;
        }
        case AggFunc::kAvg: {
          if (args.empty()) {
            row.values.push_back(Value::Null());
            break;
          }
          double sum = 0.0;
          for (const Value& v : args) {
            PCQE_ASSIGN_OR_RETURN(double d, v.AsDouble());
            sum += d;
          }
          row.values.push_back(Value::Double(sum / static_cast<double>(args.size())));
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          if (args.empty()) {
            row.values.push_back(Value::Null());
            break;
          }
          Value best = args[0];
          for (const Value& v : args) {
            int c = v.Compare(best);
            if ((spec.func == AggFunc::kMin && c < 0) ||
                (spec.func == AggFunc::kMax && c > 0)) {
              best = v;
            }
          }
          row.values.push_back(std::move(best));
          break;
        }
      }
    }

    // Conservative lineage: the aggregate value is exactly right iff every
    // contributing row's derivation holds, i.e. the conjunction of member
    // lineages. An empty (global) group is certain.
    std::vector<LineageRef> members;
    members.reserve(groups[g].size());
    for (size_t r : groups[g]) members.push_back(input[r].lineage);
    row.lineage = members.empty() ? arena->True() : arena->And(members);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace exec_internal
}  // namespace pcqe
