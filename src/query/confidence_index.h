// Copyright (c) PCQE contributors.
// Per-table confidence zone maps for β pushdown (DESIGN.md §15).
//
// A `ConfidenceZoneMap` summarizes one table's confidence column at chunk
// granularity: for every `kColumnChunkCapacity`-row chunk, the min and max
// stored confidence. Because join confidence under tuple-independence is a
// product of factors ≤ 1 — monotone non-increasing under conjunction — any
// result row containing a base tuple with confidence ≤ β is itself ≤ β and
// the policy filter would block it. The planner therefore inserts a
// confidence pre-filter above each scan (plan.h `kConfidencePrune`), and the
// zone map lets the vectorized executor skip whole chunks whose max can
// never clear β (or keep whole chunks whose min already does) without
// touching a single row.
//
// Maintenance contract: a map is valid for a (table, catalog) pair iff both
//   * `num_rows` equals the table's current tuple count (inserts append
//     confidences without bumping the catalog version), and
//   * `confidence_version` equals `Catalog::confidence_version()` (every
//     `SetConfidence` — AcceptProposal, WAL replay, recovery restore — bumps
//     or re-pins it).
// `ConfidenceIndexCache::Get` checks both and rebuilds lazily on mismatch;
// a new map is built off to the side and installed atomically, so a failed
// rebuild (fault site `query.index_rebuild`) never publishes partial bounds.
// Staleness is fail-safe by construction regardless: the engine's policy
// filter re-checks every surviving row's computed confidence, so a wrong
// zone map could only ever *over*-block (a divergence the validity check
// prevents), never release a row post-filtering would block.

#ifndef PCQE_QUERY_CONFIDENCE_INDEX_H_
#define PCQE_QUERY_CONFIDENCE_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "relational/catalog.h"
#include "relational/table.h"

namespace pcqe {

/// \brief Immutable per-chunk confidence bounds for one table, pinned to the
/// (tuple count, confidence version) state it was built from.
struct ConfidenceZoneMap {
  struct Bounds {
    double min = 1.0;
    double max = 0.0;
  };

  uint32_t table_id = 0;
  /// Tuple count at build time; a mismatch means rows were appended since.
  size_t num_rows = 0;
  /// `Catalog::confidence_version()` at build time; a mismatch means some
  /// confidence changed since (accept, replay, recovery). A validity
  /// snapshot, not a counter.
  uint64_t confidence_version = 0;  // pcqe-lint: allow(telemetry)
  /// One entry per column chunk, in chunk order.
  std::vector<Bounds> chunks;
};

/// \brief Lazy, version-validated cache of zone maps, one per table.
///
/// Thread-safe; `Get` is called by concurrent readers holding the engine's
/// shared catalog lock, which guarantees the confidences it reads are stable
/// while it builds. Maps are handed out as `shared_ptr<const>` so a plan
/// keeps its snapshot alive across a concurrent invalidation.
class ConfidenceIndexCache {
 public:
  ConfidenceIndexCache() = default;
  ConfidenceIndexCache(const ConfidenceIndexCache&) = delete;
  ConfidenceIndexCache& operator=(const ConfidenceIndexCache&) = delete;

  /// Returns a zone map valid for `table` under `catalog`'s current
  /// confidence version, rebuilding it if the cached one is missing or
  /// stale. `rebuilt`, when non-null, is set to whether this call built a
  /// fresh map (telemetry feeds off it). On a rebuild failure (fault
  /// injection) nothing is installed and the stale entry, if any, is
  /// dropped.
  [[nodiscard]] Result<std::shared_ptr<const ConfidenceZoneMap>> Get(
      const Catalog& catalog, const Table& table, bool* rebuilt = nullptr);

  /// Drops every cached map (e.g. after out-of-band catalog edits like bulk
  /// loads that the version counter does not cover).
  void Invalidate();

 private:
  mutable Mutex mu_;
  std::map<uint32_t, std::shared_ptr<const ConfidenceZoneMap>> maps_
      PCQE_GUARDED_BY(mu_);
};

/// \brief Planner input: push the policy threshold `beta` below joins.
///
/// `index` may be null (no zone maps: the prune nodes fall back to row-exact
/// confidence tests, still result-identical, just without chunk skipping).
struct ConfidencePushdown {
  double beta = 0.0;
  ConfidenceIndexCache* index = nullptr;
};

}  // namespace pcqe

#endif  // PCQE_QUERY_CONFIDENCE_INDEX_H_
