#include "lineage/lineage.h"

#include <algorithm>

#include "common/string_util.h"

namespace pcqe {

LineageRef LineageArena::Append(Node node) {
  PCQE_CHECK(nodes_.size() < kNullLineage) << "lineage arena overflow";
  nodes_.push_back(std::move(node));
  return static_cast<LineageRef>(nodes_.size() - 1);
}

LineageRef LineageArena::False() {
  if (false_ref_ == kNullLineage) false_ref_ = Append({LineageOp::kFalse, 0, {}});
  return false_ref_;
}

LineageRef LineageArena::True() {
  if (true_ref_ == kNullLineage) true_ref_ = Append({LineageOp::kTrue, 0, {}});
  return true_ref_;
}

LineageRef LineageArena::Var(LineageVarId id) {
  auto it = std::lower_bound(var_index_.begin(), var_index_.end(),
                             std::make_pair(id, LineageRef{0}),
                             [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it != var_index_.end() && it->first == id) return it->second;
  LineageRef ref = Append({LineageOp::kVar, id, {}});
  var_index_.insert(it, {id, ref});
  return ref;
}

LineageRef LineageArena::Intern(LineageOp op, std::vector<LineageRef> children) {
  // Canonical key: children sorted, so commutatively equal formulas share a
  // node; the stored child order (first creation) is preserved for display.
  std::vector<LineageRef> key = children;
  std::sort(key.begin(), key.end());
  auto it = composite_index_.find({op, key});
  if (it != composite_index_.end()) return it->second;
  LineageRef ref = Append({op, 0, std::move(children)});
  composite_index_.emplace(std::make_pair(op, std::move(key)), ref);
  return ref;
}

namespace {

/// Stable dedupe preserving first occurrence (children lists are short, so
/// the quadratic scan beats hashing).
void DedupeStable(std::vector<LineageRef>* v) {
  std::vector<LineageRef> out;
  out.reserve(v->size());
  for (LineageRef c : *v) {
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  *v = std::move(out);
}

}  // namespace

LineageRef LineageArena::And(const std::vector<LineageRef>& children) {
  std::vector<LineageRef> flat;
  flat.reserve(children.size());
  for (LineageRef c : children) {
    PCQE_DCHECK(c < nodes_.size());
    switch (nodes_[c].op) {
      case LineageOp::kTrue:
        break;  // neutral element
      case LineageOp::kFalse:
        return False();  // absorbing element
      case LineageOp::kAnd:
        for (LineageRef g : nodes_[c].children) flat.push_back(g);
        break;
      default:
        flat.push_back(c);
    }
  }
  DedupeStable(&flat);
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  return Intern(LineageOp::kAnd, std::move(flat));
}

LineageRef LineageArena::Or(const std::vector<LineageRef>& children) {
  std::vector<LineageRef> flat;
  flat.reserve(children.size());
  for (LineageRef c : children) {
    PCQE_DCHECK(c < nodes_.size());
    switch (nodes_[c].op) {
      case LineageOp::kFalse:
        break;  // neutral element
      case LineageOp::kTrue:
        return True();  // absorbing element
      case LineageOp::kOr:
        for (LineageRef g : nodes_[c].children) flat.push_back(g);
        break;
      default:
        flat.push_back(c);
    }
  }
  DedupeStable(&flat);
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  return Intern(LineageOp::kOr, std::move(flat));
}

LineageRef LineageArena::Not(LineageRef child) {
  PCQE_DCHECK(child < nodes_.size());
  switch (nodes_[child].op) {
    case LineageOp::kTrue:
      return False();
    case LineageOp::kFalse:
      return True();
    case LineageOp::kNot:
      return nodes_[child].children[0];  // double negation
    default:
      return Intern(LineageOp::kNot, {child});
  }
}

void LineageArena::CountOccurrences(
    LineageRef ref, std::vector<uint32_t>* counts_by_node,
    std::vector<std::pair<LineageVarId, uint32_t>>* var_counts) const {
  // Children always have smaller arena indices than their parents, so one
  // high-to-low sweep propagates tree-position multiplicities through DAG
  // sharing in O(nodes + edges).
  counts_by_node->assign(nodes_.size(), 0);
  (*counts_by_node)[ref] = 1;
  for (size_t i = ref + 1; i-- > 0;) {
    uint32_t count = (*counts_by_node)[i];
    if (count == 0) continue;
    const Node& node = nodes_[i];
    if (node.op == LineageOp::kVar) {
      var_counts->emplace_back(node.var, count);
      continue;
    }
    for (LineageRef c : node.children) {
      // Saturating add: multiplicity beyond 2 is indistinguishable for our
      // purposes ("shared" vs "read-once").
      uint32_t& slot = (*counts_by_node)[c];
      slot = (slot > 0xFFFF) ? slot : slot + count;
    }
  }
}

std::vector<LineageVarId> LineageArena::Variables(LineageRef ref) const {
  std::vector<uint32_t> counts;
  std::vector<std::pair<LineageVarId, uint32_t>> var_counts;
  CountOccurrences(ref, &counts, &var_counts);
  // var_counts was emitted in descending node order; restore first-creation
  // (ascending node) order, which matches first-seen order for interned vars.
  std::reverse(var_counts.begin(), var_counts.end());
  std::vector<LineageVarId> out;
  out.reserve(var_counts.size());
  for (const auto& [id, n] : var_counts) {
    (void)n;
    out.push_back(id);
  }
  return out;
}

std::vector<LineageVarId> LineageArena::SharedVariables(LineageRef ref) const {
  std::vector<uint32_t> counts;
  std::vector<std::pair<LineageVarId, uint32_t>> var_counts;
  CountOccurrences(ref, &counts, &var_counts);
  std::reverse(var_counts.begin(), var_counts.end());
  std::vector<LineageVarId> out;
  for (const auto& [id, n] : var_counts) {
    if (n > 1) out.push_back(id);
  }
  return out;
}

LineageRef LineageArena::CopyFrom(const LineageArena& src,
                                  LineageRef ref) {  // NOLINT(misc-no-recursion)
  switch (src.op(ref)) {
    case LineageOp::kFalse:
      return False();
    case LineageOp::kTrue:
      return True();
    case LineageOp::kVar:
      return Var(src.var(ref));
    case LineageOp::kNot:
      return Not(CopyFrom(src, src.children(ref)[0]));
    case LineageOp::kAnd:
    case LineageOp::kOr: {
      std::vector<LineageRef> kids;
      kids.reserve(src.children(ref).size());
      for (LineageRef c : src.children(ref)) kids.push_back(CopyFrom(src, c));
      return src.op(ref) == LineageOp::kAnd ? And(kids) : Or(kids);
    }
  }
  return False();
}

std::string LineageArena::ToString(LineageRef ref) const {
  const Node& node = nodes_[ref];
  switch (node.op) {
    case LineageOp::kFalse:
      return "false";
    case LineageOp::kTrue:
      return "true";
    case LineageOp::kVar:
      return StrFormat("t%llu", static_cast<unsigned long long>(node.var));
    case LineageOp::kNot:
      return "!" + ToString(node.children[0]);
    case LineageOp::kAnd:
    case LineageOp::kOr: {
      const char* sep = node.op == LineageOp::kAnd ? " & " : " | ";
      std::vector<std::string> parts;
      parts.reserve(node.children.size());
      for (LineageRef c : node.children) parts.push_back(ToString(c));
      return "(" + JoinStrings(parts, sep) + ")";
    }
  }
  return "?";
}

}  // namespace pcqe
