#include "lineage/lineage.h"

#include <algorithm>

#include "common/string_util.h"

namespace pcqe {

LineageRef LineageArena::Append(Node node) {
  PCQE_CHECK(nodes_.size() < kNullLineage) << "lineage arena overflow";
  nodes_.push_back(std::move(node));
  return static_cast<LineageRef>(nodes_.size() - 1);
}

void LineageArena::Reserve(size_t nodes) {
  nodes_.reserve(nodes_.size() + nodes);
  composite_index_.reserve(composite_index_.size() + nodes);
  binary_and_index_.reserve(binary_and_index_.size() + nodes);
  var_index_.reserve(var_index_.size() + nodes);
}

LineageRef LineageArena::False() {
  if (false_ref_ == kNullLineage) false_ref_ = Append({LineageOp::kFalse, 0, {}});
  return false_ref_;
}

LineageRef LineageArena::True() {
  if (true_ref_ == kNullLineage) true_ref_ = Append({LineageOp::kTrue, 0, {}});
  return true_ref_;
}

LineageRef LineageArena::Var(LineageVarId id) {
  auto [it, inserted] = var_index_.try_emplace(id, kNullLineage);
  if (inserted) it->second = Append({LineageOp::kVar, id, {}});
  return it->second;
}

LineageRef LineageArena::Intern(LineageOp op, const std::vector<LineageRef>& children) {
  if (children.size() == 2 && op != LineageOp::kNot) {
    // Binary AND/OR fast path: the canonical sorted key packs into one word.
    const uint64_t lo = std::min(children[0], children[1]);
    const uint64_t hi = std::max(children[0], children[1]);
    auto& index = op == LineageOp::kAnd ? binary_and_index_ : binary_or_index_;
    auto [it, inserted] = index.try_emplace((lo << 32) | hi, kNullLineage);
    if (inserted) it->second = Append({op, 0, children});
    return it->second;
  }
  // Canonical key: children sorted, so commutatively equal formulas share a
  // node; the stored child order (first creation) is preserved for display.
  // The key is built in a reused scratch pair so an interning *hit* — the
  // common case once a workload's formulas repeat — allocates nothing.
  composite_key_scratch_.first = op;
  composite_key_scratch_.second.assign(children.begin(), children.end());
  std::sort(composite_key_scratch_.second.begin(), composite_key_scratch_.second.end());
  auto it = composite_index_.find(composite_key_scratch_);
  if (it != composite_index_.end()) return it->second;
  LineageRef ref = Append({op, 0, children});
  composite_index_.emplace(composite_key_scratch_, ref);
  return ref;
}

namespace {

/// Stable in-place dedupe preserving first occurrence (children lists are
/// short, so the quadratic scan beats hashing, and compacting in place keeps
/// the caller's scratch buffer allocation-free).
void DedupeStable(std::vector<LineageRef>* v) {
  size_t kept = 0;
  for (size_t i = 0; i < v->size(); ++i) {
    LineageRef c = (*v)[i];
    bool seen = false;
    for (size_t j = 0; j < kept; ++j) {
      if ((*v)[j] == c) {
        seen = true;
        break;
      }
    }
    if (!seen) (*v)[kept++] = c;
  }
  v->resize(kept);
}

}  // namespace

LineageRef LineageArena::And(const std::vector<LineageRef>& children) {
  std::vector<LineageRef>& flat = flat_scratch_;
  flat.clear();
  flat.reserve(children.size());
  for (LineageRef c : children) {
    PCQE_DCHECK(c < nodes_.size());
    switch (nodes_[c].op) {
      case LineageOp::kTrue:
        break;  // neutral element
      case LineageOp::kFalse:
        return False();  // absorbing element
      case LineageOp::kAnd:
        for (LineageRef g : nodes_[c].children) flat.push_back(g);
        break;
      default:
        flat.push_back(c);
    }
  }
  DedupeStable(&flat);
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  return Intern(LineageOp::kAnd, flat);
}

LineageRef LineageArena::Or(const std::vector<LineageRef>& children) {
  std::vector<LineageRef>& flat = flat_scratch_;
  flat.clear();
  flat.reserve(children.size());
  for (LineageRef c : children) {
    PCQE_DCHECK(c < nodes_.size());
    switch (nodes_[c].op) {
      case LineageOp::kFalse:
        break;  // neutral element
      case LineageOp::kTrue:
        return True();  // absorbing element
      case LineageOp::kOr:
        for (LineageRef g : nodes_[c].children) flat.push_back(g);
        break;
      default:
        flat.push_back(c);
    }
  }
  DedupeStable(&flat);
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  return Intern(LineageOp::kOr, flat);
}

LineageRef LineageArena::And(LineageRef a, LineageRef b) {
  binary_scratch_.clear();
  binary_scratch_.push_back(a);
  binary_scratch_.push_back(b);
  return And(binary_scratch_);
}

LineageRef LineageArena::Or(LineageRef a, LineageRef b) {
  binary_scratch_.clear();
  binary_scratch_.push_back(a);
  binary_scratch_.push_back(b);
  return Or(binary_scratch_);
}

LineageRef LineageArena::Not(LineageRef child) {
  PCQE_DCHECK(child < nodes_.size());
  switch (nodes_[child].op) {
    case LineageOp::kTrue:
      return False();
    case LineageOp::kFalse:
      return True();
    case LineageOp::kNot:
      return nodes_[child].children[0];  // double negation
    default:
      return Intern(LineageOp::kNot, {child});
  }
}

void LineageArena::CountOccurrences(
    LineageRef ref, std::vector<uint32_t>* counts_by_node,
    std::vector<std::pair<LineageVarId, uint32_t>>* var_counts) const {
  // Children always have smaller arena indices than their parents, so one
  // high-to-low sweep propagates tree-position multiplicities through DAG
  // sharing in O(nodes + edges).
  counts_by_node->assign(nodes_.size(), 0);
  (*counts_by_node)[ref] = 1;
  for (size_t i = ref + 1; i-- > 0;) {
    uint32_t count = (*counts_by_node)[i];
    if (count == 0) continue;
    const Node& node = nodes_[i];
    if (node.op == LineageOp::kVar) {
      var_counts->emplace_back(node.var, count);
      continue;
    }
    for (LineageRef c : node.children) {
      // Saturating add: multiplicity beyond 2 is indistinguishable for our
      // purposes ("shared" vs "read-once").
      uint32_t& slot = (*counts_by_node)[c];
      slot = (slot > 0xFFFF) ? slot : slot + count;
    }
  }
}

std::vector<LineageVarId> LineageArena::Variables(LineageRef ref) const {
  std::vector<uint32_t> counts;
  std::vector<std::pair<LineageVarId, uint32_t>> var_counts;
  CountOccurrences(ref, &counts, &var_counts);
  // var_counts was emitted in descending node order; restore first-creation
  // (ascending node) order, which matches first-seen order for interned vars.
  std::reverse(var_counts.begin(), var_counts.end());
  std::vector<LineageVarId> out;
  out.reserve(var_counts.size());
  for (const auto& [id, n] : var_counts) {
    (void)n;
    out.push_back(id);
  }
  return out;
}

std::vector<LineageVarId> LineageArena::SharedVariables(LineageRef ref) const {
  std::vector<uint32_t> counts;
  std::vector<std::pair<LineageVarId, uint32_t>> var_counts;
  CountOccurrences(ref, &counts, &var_counts);
  std::reverse(var_counts.begin(), var_counts.end());
  std::vector<LineageVarId> out;
  for (const auto& [id, n] : var_counts) {
    if (n > 1) out.push_back(id);
  }
  return out;
}

LineageRef LineageArena::CopyFrom(const LineageArena& src,
                                  LineageRef ref) {  // NOLINT(misc-no-recursion)
  switch (src.op(ref)) {
    case LineageOp::kFalse:
      return False();
    case LineageOp::kTrue:
      return True();
    case LineageOp::kVar:
      return Var(src.var(ref));
    case LineageOp::kNot:
      return Not(CopyFrom(src, src.children(ref)[0]));
    case LineageOp::kAnd:
    case LineageOp::kOr: {
      std::vector<LineageRef> kids;
      kids.reserve(src.children(ref).size());
      for (LineageRef c : src.children(ref)) kids.push_back(CopyFrom(src, c));
      return src.op(ref) == LineageOp::kAnd ? And(kids) : Or(kids);
    }
  }
  return False();
}

std::string LineageArena::ToString(LineageRef ref) const {
  const Node& node = nodes_[ref];
  switch (node.op) {
    case LineageOp::kFalse:
      return "false";
    case LineageOp::kTrue:
      return "true";
    case LineageOp::kVar:
      return StrFormat("t%llu", static_cast<unsigned long long>(node.var));
    case LineageOp::kNot:
      return "!" + ToString(node.children[0]);
    case LineageOp::kAnd:
    case LineageOp::kOr: {
      const char* sep = node.op == LineageOp::kAnd ? " & " : " | ";
      std::vector<std::string> parts;
      parts.reserve(node.children.size());
      for (LineageRef c : node.children) parts.push_back(ToString(c));
      return "(" + JoinStrings(parts, sep) + ")";
    }
  }
  return "?";
}

}  // namespace pcqe
