#include "lineage/sensitivity.h"

#include <algorithm>
#include <cmath>

namespace pcqe {

double Sensitivity(const LineageArena& arena, LineageRef ref, const ConfidenceMap& probs,
                   LineageVarId var) {
  auto pinned = [&](double value) {
    return EvaluateIndependent(arena, ref, [&](LineageVarId id) {
      return id == var ? value : probs.Get(id);
    });
  };
  return pinned(1.0) - pinned(0.0);
}

std::vector<InfluenceEntry> RankInfluence(const LineageArena& arena, LineageRef ref,
                                          const ConfidenceMap& probs, size_t top_k) {
  std::vector<InfluenceEntry> entries;
  for (LineageVarId var : arena.Variables(ref)) {
    InfluenceEntry entry;
    entry.var = var;
    entry.sensitivity = Sensitivity(arena, ref, probs, var);
    entry.headroom = 1.0 - probs.Get(var);
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const InfluenceEntry& a, const InfluenceEntry& b) {
              double pa = std::fabs(a.potential());
              double pb = std::fabs(b.potential());
              if (pa != pb) return pa > pb;
              return std::fabs(a.sensitivity) > std::fabs(b.sensitivity);
            });
  if (top_k > 0 && entries.size() > top_k) entries.resize(top_k);
  return entries;
}

}  // namespace pcqe
