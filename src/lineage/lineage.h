// Copyright (c) PCQE contributors.
// Boolean lineage formulas over base tuples — element (2) of the framework.
//
// Every query result carries a lineage formula describing which base tuples
// it derives from: joins conjoin lineages, duplicate elimination and union
// disjoin them, and set difference negates the subtrahend's lineage
// (Trio-style propagation; see Das Sarma/Theobald/Widom 2007 and
// Dalvi/Suciu 2004, the paper's references [15] and [6]). The paper's running
// example is the formula `(p02 OR p03) AND p13`.

#ifndef PCQE_LINEAGE_LINEAGE_H_
#define PCQE_LINEAGE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"

namespace pcqe {

/// Lineage formulas reference base tuples by their catalog-wide id.
/// (Duplicated from relational/tuple.h to keep this library dependency-free;
/// the two are the same 64-bit id space.)
using LineageVarId = uint64_t;

/// Index of a node inside a `LineageArena`.
using LineageRef = uint32_t;

/// Sentinel for "no lineage".
inline constexpr LineageRef kNullLineage = ~0U;

/// \brief Node kinds of a lineage formula.
enum class LineageOp : uint8_t {
  kFalse = 0,  ///< Constant false (empty disjunction).
  kTrue = 1,   ///< Constant true (certain derivation, e.g. a literal row).
  kVar = 2,    ///< A base-tuple variable.
  kAnd = 3,    ///< Conjunction of >= 2 children.
  kOr = 4,     ///< Disjunction of >= 2 children.
  kNot = 5,    ///< Negation of exactly 1 child.
};

/// \brief Arena that owns lineage DAG nodes.
///
/// Nodes are immutable once created and referenced by index, so formulas
/// share subtrees freely (a DAG, not a tree). Builders perform light
/// normalization: nested same-op children are flattened, constants are
/// folded, and single-child AND/OR collapse to the child. The arena is the
/// unit of lifetime: all refs returned by one arena are valid for as long as
/// that arena lives.
class LineageArena {
 public:
  LineageArena() = default;

  /// Number of nodes allocated.
  size_t size() const { return nodes_.size(); }

  /// Pre-sizes internal tables for about `nodes` nodes. Batch producers (the
  /// vectorized executor, workload generators) call this once instead of
  /// paying incremental rehashes per row.
  void Reserve(size_t nodes);

  /// Constant-false formula.
  LineageRef False();

  /// Constant-true formula.
  LineageRef True();

  /// A base-tuple variable. Repeated calls with the same id return the same
  /// node, so variable identity is preserved across the DAG.
  LineageRef Var(LineageVarId id);

  /// Conjunction. Flattens nested ANDs, drops `true`, folds to `false` when
  /// any child is `false`. An empty conjunction is `true`.
  LineageRef And(const std::vector<LineageRef>& children);

  /// Binary convenience overload (allocation-free: uses a reused scratch).
  LineageRef And(LineageRef a, LineageRef b);

  /// Disjunction. Flattens nested ORs, drops `false`, folds to `true` when
  /// any child is `true`, dedupes identical child refs. An empty
  /// disjunction is `false`.
  LineageRef Or(const std::vector<LineageRef>& children);

  /// Binary convenience overload (allocation-free: uses a reused scratch).
  LineageRef Or(LineageRef a, LineageRef b);

  /// Negation, with double-negation and constant folding.
  LineageRef Not(LineageRef child);

  /// Node kind of `ref`.
  LineageOp op(LineageRef ref) const { return nodes_[ref].op; }

  /// Variable id; only valid when `op(ref) == kVar`.
  LineageVarId var(LineageRef ref) const {
    PCQE_DCHECK(nodes_[ref].op == LineageOp::kVar);
    return nodes_[ref].var;
  }

  /// Children span; empty for constants and variables.
  const std::vector<LineageRef>& children(LineageRef ref) const {
    return nodes_[ref].children;
  }

  /// Distinct variable ids appearing under `ref`, in first-seen order.
  std::vector<LineageVarId> Variables(LineageRef ref) const;

  /// All interned variables as (id, ref) pairs (unordered). Confidence
  /// snapshots iterate this once instead of re-walking every row's formula
  /// (which is O(rows × arena) on large results).
  const std::unordered_map<LineageVarId, LineageRef>& variable_index() const {
    return var_index_;
  }

  /// Variable ids that appear in strictly more than one *position* under
  /// `ref` (counting DAG sharing as multiple occurrences). For these, the
  /// independence assumption of `EvaluateIndependent` is an approximation.
  std::vector<LineageVarId> SharedVariables(LineageRef ref) const;

  /// True iff no variable occurs more than once under `ref`; for read-once
  /// formulas the independent evaluation is exact.
  bool IsReadOnce(LineageRef ref) const { return SharedVariables(ref).empty(); }

  /// Textual form, e.g. "((t2 | t3) & t13)" with variables as "t<id>".
  std::string ToString(LineageRef ref) const;

  /// Deep-copies the formula `ref` of `src` into this arena, preserving
  /// structure and variable ids. Used to pool lineages from several query
  /// results (each with its own arena) into one combined arena for a
  /// multi-query increment problem.
  LineageRef CopyFrom(const LineageArena& src, LineageRef ref);

 private:
  struct Node {
    LineageOp op;
    LineageVarId var = 0;
    std::vector<LineageRef> children;
  };

  LineageRef Append(Node node);
  /// Returns the existing node for (op, children-as-a-set) or creates one.
  LineageRef Intern(LineageOp op, const std::vector<LineageRef>& children);
  void CountOccurrences(LineageRef ref, std::vector<uint32_t>* counts_by_node,
                        std::vector<std::pair<LineageVarId, uint32_t>>* var_counts) const;

  /// Hash of a composite key (op, sorted children) — FNV-1a over the child
  /// refs, seeded with the op, so the unordered interning index never
  /// compares more than one bucket chain per insert (the old ordered map
  /// paid O(log n) vector comparisons per node, the hot cost of per-row
  /// `And` construction at million-row scale).
  struct CompositeKeyHash {
    size_t operator()(const std::pair<LineageOp, std::vector<LineageRef>>& key) const {
      uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(key.first);
      for (LineageRef c : key.second) {
        h ^= c;
        h *= 0x100000001b3ULL;
      }
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  std::vector<Node> nodes_;
  // Interning of constants and variables.
  LineageRef false_ref_ = kNullLineage;
  LineageRef true_ref_ = kNullLineage;
  // Hashed, not sorted: a sorted vector pays an O(n) middle insert whenever
  // var ids from different tables intern interleaved (exactly what lazy
  // factorized join lineage does), which is quadratic at scale.
  std::unordered_map<LineageVarId, LineageRef> var_index_;
  // Binary AND/OR composites — by far the hottest interning shape (one per
  // join output row) — key as a packed `(min << 32) | max` word instead of a
  // heap-allocated child vector: the miss path (every distinct join pair is
  // a miss) then pays one integer-map insert, no key allocation, no sort, no
  // byte-wise hash. Disjoint from `composite_index_`, which keeps every
  // composite with != 2 children.
  std::unordered_map<uint64_t, LineageRef> binary_and_index_;
  std::unordered_map<uint64_t, LineageRef> binary_or_index_;
  // Interning of composites, keyed by (op, sorted children): commutatively
  // equal formulas resolve to one node.
  std::unordered_map<std::pair<LineageOp, std::vector<LineageRef>>, LineageRef,
                     CompositeKeyHash>
      composite_index_;
  // Scratch buffers reused across calls so per-row formula construction does
  // not allocate for the flatten pass or for interning hits.
  std::vector<LineageRef> flat_scratch_;
  std::vector<LineageRef> binary_scratch_;
  std::pair<LineageOp, std::vector<LineageRef>> composite_key_scratch_;
};

}  // namespace pcqe

#endif  // PCQE_LINEAGE_LINEAGE_H_
