// Copyright (c) PCQE contributors.
// Confidence evaluation over lineage formulas.

#ifndef PCQE_LINEAGE_EVALUATE_H_
#define PCQE_LINEAGE_EVALUATE_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "lineage/lineage.h"

namespace pcqe {

/// \brief Maps base-tuple variables to confidence values.
///
/// Thin wrapper over a hash map plus a default for unmapped variables
/// (useful in tests; production paths always populate every variable).
class ConfidenceMap {
 public:
  /// `fallback` is returned for unmapped variables.
  explicit ConfidenceMap(double fallback = 0.0) : fallback_(fallback) {}

  /// Sets the confidence of variable `id`.
  void Set(LineageVarId id, double p) { map_[id] = p; }

  /// Confidence of `id`, or the fallback.
  double Get(LineageVarId id) const {
    auto it = map_.find(id);
    return it == map_.end() ? fallback_ : it->second;
  }

  double operator()(LineageVarId id) const { return Get(id); }

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<LineageVarId, double> map_;
  double fallback_;
};

/// \brief Evaluates P(formula) assuming all variables are independent **and**
/// every internal combination is independent.
///
/// AND multiplies child probabilities, OR combines via
/// `1 - Π(1 - p_i)`, NOT complements. This is the paper's semantics (its
/// running example computes `p38 = (p02 + p03 − p02·p03) · p13`) and is exact
/// whenever the formula is read-once (each variable occurs at most once).
/// For formulas with shared variables it is an approximation; use
/// `EvaluateExact` to quantify the gap.
///
/// `probs` is any callable `double(LineageVarId)`.
template <typename ProbFn>
double EvaluateIndependent(const LineageArena& arena, LineageRef ref, const ProbFn& probs) {
  switch (arena.op(ref)) {
    case LineageOp::kFalse:
      return 0.0;
    case LineageOp::kTrue:
      return 1.0;
    case LineageOp::kVar:
      return probs(arena.var(ref));
    case LineageOp::kNot:
      return 1.0 - EvaluateIndependent(arena, arena.children(ref)[0], probs);
    case LineageOp::kAnd: {
      double p = 1.0;
      for (LineageRef c : arena.children(ref)) {
        p *= EvaluateIndependent(arena, c, probs);
        if (p == 0.0) break;
      }
      return p;
    }
    case LineageOp::kOr: {
      double q = 1.0;  // probability all children are false
      for (LineageRef c : arena.children(ref)) {
        q *= 1.0 - EvaluateIndependent(arena, c, probs);
        if (q == 0.0) break;
      }
      return 1.0 - q;
    }
  }
  return 0.0;
}

/// \brief Options for `EvaluateExact`.
struct ExactEvalOptions {
  /// Maximum number of shared variables to condition on; the evaluation
  /// enumerates 2^shared assignments, so this bounds work at 2^budget.
  size_t max_shared_variables = 20;
};

/// \brief Exact P(formula) under variable independence (but *without* the
/// internal-independence approximation).
///
/// Conditions on every shared variable (Shannon expansion): for each of the
/// 2^s truth assignments of the s shared variables, the residual formula is
/// read-once, so `EvaluateIndependent` on it is exact; results are weighted
/// by the assignment probability. Returns `kResourceExhausted` when `s`
/// exceeds `options.max_shared_variables`.
[[nodiscard]] Result<double> EvaluateExact(const LineageArena& arena, LineageRef ref,
                             const ConfidenceMap& probs,
                             const ExactEvalOptions& options = {});

}  // namespace pcqe

#endif  // PCQE_LINEAGE_EVALUATE_H_
