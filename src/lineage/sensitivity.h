// Copyright (c) PCQE contributors.
// Sensitivity analysis: which base tuples most influence a result's
// confidence. The human-facing companion of strategy finding — the paper's
// framework reports *what* to improve; this explains *why* a result is
// stuck below the policy threshold.

#ifndef PCQE_LINEAGE_SENSITIVITY_H_
#define PCQE_LINEAGE_SENSITIVITY_H_

#include <vector>

#include "lineage/evaluate.h"
#include "lineage/lineage.h"

namespace pcqe {

/// \brief Partial influence of one base tuple on a formula's confidence.
struct InfluenceEntry {
  LineageVarId var = 0;
  /// ∂P(f)/∂p_var under the independence semantics: P(f | var=1) −
  /// P(f | var=0). Exact for read-once lineage (where P is multilinear in
  /// each variable); an approximation when `var` occurs more than once.
  /// Negative under negated occurrences (raising the tuple *lowers* the
  /// result).
  double sensitivity = 0.0;
  /// Headroom 1 − p_var: how much the variable could still rise.
  double headroom = 0.0;
  /// sensitivity × headroom: the confidence available by driving this
  /// tuple to certainty, to first order. The ranking key.
  double potential() const { return sensitivity * headroom; }
};

/// Sensitivity of `ref` to variable `var` at the current confidences.
double Sensitivity(const LineageArena& arena, LineageRef ref, const ConfidenceMap& probs,
                   LineageVarId var);

/// \brief Ranks every variable of `ref` by |potential| (descending), keeping
/// the top `top_k` (0 = all). Ties break toward higher |sensitivity|.
std::vector<InfluenceEntry> RankInfluence(const LineageArena& arena, LineageRef ref,
                                          const ConfidenceMap& probs, size_t top_k = 0);

}  // namespace pcqe

#endif  // PCQE_LINEAGE_SENSITIVITY_H_
