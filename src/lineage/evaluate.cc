#include "lineage/evaluate.h"

#include <unordered_map>

#include "common/string_util.h"

namespace pcqe {

Result<double> EvaluateExact(const LineageArena& arena, LineageRef ref,
                             const ConfidenceMap& probs, const ExactEvalOptions& options) {
  std::vector<LineageVarId> shared = arena.SharedVariables(ref);
  if (shared.size() > options.max_shared_variables) {
    return Status::ResourceExhausted(
        StrFormat("exact evaluation would condition on %zu shared variables "
                  "(budget %zu)",
                  shared.size(), options.max_shared_variables));
  }

  if (shared.empty()) {
    return EvaluateIndependent(arena, ref, probs);
  }

  std::unordered_map<LineageVarId, bool> fixed;
  fixed.reserve(shared.size());

  double total = 0.0;
  const size_t combos = size_t{1} << shared.size();
  for (size_t mask = 0; mask < combos; ++mask) {
    fixed.clear();
    double weight = 1.0;
    for (size_t i = 0; i < shared.size(); ++i) {
      bool value = (mask >> i) & 1;
      fixed[shared[i]] = value;
      double p = probs.Get(shared[i]);
      weight *= value ? p : (1.0 - p);
    }
    if (weight == 0.0) continue;
    // With all shared variables pinned, every remaining variable occurs
    // once, so the independent evaluation of the conditioned formula is
    // exact.
    auto conditioned = [&](LineageVarId id) -> double {
      auto it = fixed.find(id);
      if (it != fixed.end()) return it->second ? 1.0 : 0.0;
      return probs.Get(id);
    };
    total += weight * EvaluateIndependent(arena, ref, conditioned);
  }
  return total;
}

}  // namespace pcqe
