#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "cost/cost_function.h"

namespace pcqe {

namespace {

/// Draws one of the paper's three cost families with random coefficients.
CostFunctionPtr RandomCostFunction(Rng* rng, double cost_scale) {
  double a = rng->Uniform(1.0, std::max(1.0 + kEpsilon, cost_scale));
  switch (rng->UniformInt(0, 2)) {
    case 0:  // "binomial": polynomial of degree 2 or 3
      return *MakePolynomialCost(a, static_cast<double>(rng->UniformInt(2, 3)));
    case 1:
      return *MakeExponentialCost(a, rng->Uniform(1.0, 3.0));
    default:
      return *MakeLogarithmicCost(a, rng->Uniform(5.0, 20.0));
  }
}

/// Base-tuple population: ids 0..k-1, confidence "around 0.1", random cost.
std::vector<BaseTupleSpec> GenerateBases(const WorkloadParams& params, Rng* rng) {
  const size_t k = params.num_base_tuples;
  std::vector<BaseTupleSpec> bases;
  bases.reserve(k);
  double lo = std::clamp(params.confidence_center - params.confidence_spread, 0.01, 0.99);
  double hi = std::clamp(params.confidence_center + params.confidence_spread, 0.01, 0.99);
  for (size_t i = 0; i < k; ++i) {
    BaseTupleSpec spec;
    spec.id = static_cast<LineageVarId>(i);
    spec.confidence = rng->Uniform(lo, hi);
    spec.max_confidence = 1.0;
    spec.cost = RandomCostFunction(rng, params.cost_scale);
    bases.push_back(std::move(spec));
  }
  return bases;
}

/// `n` result lineages (AND over OR-groups) over pools of the k-sized
/// base-tuple index space.
std::vector<LineageRef> GenerateResults(const WorkloadParams& params, size_t n,
                                        LineageArena* arena, Rng* rng) {
  const size_t k = params.num_base_tuples;
  const size_t m = std::min(params.bases_per_result, k);

  size_t pool_size = std::max<size_t>(
      m, static_cast<size_t>(std::llround(static_cast<double>(m) * params.pool_factor)));
  pool_size = std::min(pool_size, k);
  size_t num_pools = std::max<size_t>(1, k / pool_size);

  auto sample_bases = [&](size_t pool, size_t span_pools) {
    size_t begin = (pool % num_pools) * pool_size;
    size_t span = std::min(pool_size * span_pools, k - begin);
    if (span < m) {  // tail pool too small: extend backwards
      begin = k - std::min(k, std::max(span, m));
      span = k - begin;
    }
    std::vector<size_t> offsets = rng->Sample(span, m);
    std::vector<LineageVarId> ids;
    ids.reserve(m);
    for (size_t o : offsets) ids.push_back(static_cast<LineageVarId>(begin + o));
    return ids;
  };

  const size_t group_size = std::max<size_t>(1, params.or_group_size);
  std::vector<LineageRef> results;
  results.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    size_t pool =
        static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(num_pools) - 1));
    bool bridge = rng->Bernoulli(params.bridge_fraction) && num_pools > 1;
    std::vector<LineageVarId> vars = sample_bases(pool, bridge ? 2 : 1);
    rng->Shuffle(&vars);

    std::vector<LineageRef> groups;
    for (size_t i = 0; i < vars.size(); i += group_size) {
      std::vector<LineageRef> group;
      for (size_t j = i; j < std::min(i + group_size, vars.size()); ++j) {
        group.push_back(arena->Var(vars[j]));
      }
      groups.push_back(arena->Or(group));
    }
    results.push_back(arena->And(groups));
  }
  return results;
}

size_t DerivedResultCount(const WorkloadParams& params) {
  if (params.num_results > 0) return params.num_results;
  size_t m = std::min(params.bases_per_result, params.num_base_tuples);
  return std::max<size_t>(1, 2 * params.num_base_tuples / std::max<size_t>(1, m));
}

size_t RequiredFor(double theta, size_t n) {
  size_t required = static_cast<size_t>(std::ceil(theta * static_cast<double>(n)));
  return std::min(required, n);
}

}  // namespace

Result<IncrementProblem> Workload::ToProblem() const {
  ProblemOptions options;
  options.beta = beta;
  options.delta = delta;
  return IncrementProblem::BuildSingle(arena, results, base_tuples, required, options);
}

Workload GenerateWorkload(const WorkloadParams& params) {
  PCQE_CHECK(params.num_base_tuples > 0);
  PCQE_CHECK(params.bases_per_result > 0);
  Rng rng(params.seed);

  Workload w;
  w.arena = std::make_shared<LineageArena>();
  w.beta = params.beta;
  w.delta = params.delta;
  w.base_tuples = GenerateBases(params, &rng);
  size_t n = DerivedResultCount(params);
  w.results = GenerateResults(params, n, w.arena.get(), &rng);
  w.required = RequiredFor(params.theta, n);
  return w;
}

Result<IncrementProblem> MultiQueryWorkload::ToProblem() const {
  ProblemOptions options;
  options.beta = beta;
  options.delta = delta;
  return IncrementProblem::Build(arena, results, query_of, required, base_tuples,
                                 options);
}

Result<IncrementProblem> MultiQueryWorkload::ToSingleProblem(size_t q) const {
  if (q >= required.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  std::vector<LineageRef> own;
  for (size_t r = 0; r < results.size(); ++r) {
    if (query_of[r] == q) own.push_back(results[r]);
  }
  ProblemOptions options;
  options.beta = beta;
  options.delta = delta;
  return IncrementProblem::BuildSingle(arena, own, base_tuples, required[q], options);
}

MultiQueryWorkload GenerateMultiQueryWorkload(const WorkloadParams& params,
                                              size_t num_queries) {
  PCQE_CHECK(params.num_base_tuples > 0);
  PCQE_CHECK(params.bases_per_result > 0);
  PCQE_CHECK(num_queries > 0);
  Rng rng(params.seed);

  MultiQueryWorkload w;
  w.arena = std::make_shared<LineageArena>();
  w.beta = params.beta;
  w.delta = params.delta;
  w.base_tuples = GenerateBases(params, &rng);
  size_t per_query = DerivedResultCount(params);
  for (size_t q = 0; q < num_queries; ++q) {
    std::vector<LineageRef> results =
        GenerateResults(params, per_query, w.arena.get(), &rng);
    for (LineageRef r : results) {
      w.results.push_back(r);
      w.query_of.push_back(static_cast<uint32_t>(q));
    }
    w.required.push_back(RequiredFor(params.theta, per_query));
  }
  return w;
}

}  // namespace pcqe
