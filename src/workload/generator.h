// Copyright (c) PCQE contributors.
// Synthetic workload generation per the paper's experimental setup (§5.1).
//
// "We use synthetic datasets in order to cover all general scenarios. First,
//  we generate a set of base tuples and assign a randomly generated
//  confidence value around 0.1 and a cost function to each tuple. The types
//  of cost functions include the binomial, exponential and logarithm
//  functions. Then we associate a certain number of base tuples with each
//  result tuple. [...] we use randomly generated DAGs to represent queries."

#ifndef PCQE_WORKLOAD_GENERATOR_H_
#define PCQE_WORKLOAD_GENERATOR_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "lineage/lineage.h"
#include "strategy/problem.h"

namespace pcqe {

/// \brief Generation parameters; defaults mirror the paper's Table 4
/// (data size 10K, 5 base tuples per result, δ = 0.1, θ = 50%, β = 0.6).
struct WorkloadParams {
  /// "Data size": number of distinct base tuples.
  size_t num_base_tuples = 10'000;
  /// Average base tuples per result tuple.
  size_t bases_per_result = 5;
  /// Result-tuple count; 0 derives `2 · num_base_tuples / bases_per_result`
  /// so each base tuple feeds ~2 results (creating the sharing the D&C
  /// partitioning exploits).
  size_t num_results = 0;
  /// Lineage shape: each result is an AND over OR-groups of at most this
  /// many variables. 1 gives pure conjunctions; >= bases_per_result gives a
  /// single flat disjunction.
  size_t or_group_size = 3;
  /// Base-tuple confidences are uniform in
  /// [confidence_center - spread, confidence_center + spread], clamped to
  /// [0.01, 0.99] ("around 0.1").
  double confidence_center = 0.1;
  double confidence_spread = 0.05;
  /// Confidence threshold β and grid step δ.
  double beta = 0.6;
  double delta = 0.1;
  /// Fraction θ of results the user must end up with above β.
  double theta = 0.5;
  /// Locality: base tuples are grouped into pools of
  /// `bases_per_result · pool_factor`; a result samples within one pool
  /// (or, with `bridge_fraction` probability, across two adjacent pools),
  /// which yields the natural groups §4.3 partitions on.
  double pool_factor = 3.0;
  double bridge_fraction = 0.1;
  /// Cost scale: every family draws its `a` coefficient from [1, cost_scale].
  double cost_scale = 50.0;
  /// RNG seed; equal seeds give byte-identical workloads.
  uint64_t seed = 42;
};

/// \brief A generated instance: lineage + base tuples + requirement.
struct Workload {
  std::shared_ptr<LineageArena> arena;
  std::vector<LineageRef> results;
  std::vector<BaseTupleSpec> base_tuples;
  /// ceil(theta · num_results).
  size_t required = 0;
  double beta = 0.6;
  double delta = 0.1;

  /// Packages the workload as a single-query `IncrementProblem`.
  [[nodiscard]] Result<IncrementProblem> ToProblem() const;
};

/// Generates a workload. Deterministic in `params.seed`.
Workload GenerateWorkload(const WorkloadParams& params);

/// \brief A multi-query instance (§4's extension): several queries whose
/// result lineages draw from one shared base-tuple population.
struct MultiQueryWorkload {
  std::shared_ptr<LineageArena> arena;
  std::vector<LineageRef> results;
  std::vector<uint32_t> query_of;        ///< query index per result
  std::vector<BaseTupleSpec> base_tuples;
  std::vector<size_t> required;          ///< per query: ceil(theta · results)
  double beta = 0.6;
  double delta = 0.1;

  /// Packages the workload as a multi-query `IncrementProblem`.
  [[nodiscard]] Result<IncrementProblem> ToProblem() const;

  /// The single-query sub-problem of query `q` (same arena and base
  /// tuples), for comparing a combined solve against per-query solves.
  [[nodiscard]] Result<IncrementProblem> ToSingleProblem(size_t q) const;
};

/// Generates `num_queries` queries over one shared base-tuple population;
/// `params.num_results` (or its derived default) is the per-query result
/// count. Sharing across queries comes from the same pool structure that
/// creates sharing within a query.
MultiQueryWorkload GenerateMultiQueryWorkload(const WorkloadParams& params,
                                              size_t num_queries);

}  // namespace pcqe

#endif  // PCQE_WORKLOAD_GENERATOR_H_
