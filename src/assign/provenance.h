// Copyright (c) PCQE contributors.
// Provenance model for confidence assignment.
//
// Element (1) of the paper's framework assumes every base tuple already
// carries a confidence value, "obtained by using techniques like those
// proposed by Dai et al. [5] which determine the confidence value of a data
// item based on various factors, such as the trustworthiness of data
// providers and the way in which the data has been collected". This module
// implements that substrate: data items arrive from source agents through
// paths of intermediate agents, and their trustworthiness is computed by
// the fixpoint model in trust_model.h.

#ifndef PCQE_ASSIGN_PROVENANCE_H_
#define PCQE_ASSIGN_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pcqe {

/// Identifier of a source or intermediate agent within a `ProvenanceGraph`.
using AgentId = uint32_t;

/// Identifier of a data item within a `ProvenanceGraph`.
using ItemId = uint32_t;

/// \brief An agent that originates or relays data.
struct Agent {
  std::string name;
  /// Prior trustworthiness in [0, 1] (e.g. from contracts or history).
  /// Source agents' trust is revised by the fixpoint; intermediate agents
  /// keep their prior and act as attenuation on the path.
  double prior_trust = 0.5;
  /// True for originating sources (revised by the model), false for
  /// intermediaries (fixed attenuation factors).
  bool is_source = true;
};

/// \brief One reported data item: a numeric claim about an entity, plus the
/// provenance path it arrived through.
///
/// Items claiming the same `entity` are compared: similar values corroborate
/// each other, dissimilar values conflict (the similarity kernel lives in
/// the trust model options).
struct ProvenanceItem {
  /// Key of the real-world fact this item reports (items about different
  /// entities never interact).
  std::string entity;
  /// The reported value (the model compares values numerically).
  double value = 0.0;
  /// Originating source agent.
  AgentId source = 0;
  /// Relay chain from source to the database, in order; may be empty.
  std::vector<AgentId> intermediaries;
};

/// \brief The provenance knowledge base: agents plus reported items.
class ProvenanceGraph {
 public:
  ProvenanceGraph() = default;

  /// Registers an agent; returns its id.
  [[nodiscard]] Result<AgentId> AddAgent(Agent agent);

  /// Registers an item. Its agents must exist; the source must be a source
  /// agent and the intermediaries must not be.
  [[nodiscard]] Result<ItemId> AddItem(ProvenanceItem item);

  size_t num_agents() const { return agents_.size(); }
  size_t num_items() const { return items_.size(); }
  const Agent& agent(AgentId id) const { return agents_[id]; }
  const ProvenanceItem& item(ItemId id) const { return items_[id]; }

  /// Item ids grouped by entity, in first-seen entity order.
  const std::vector<std::vector<ItemId>>& entity_groups() const { return groups_; }

 private:
  std::vector<Agent> agents_;
  std::vector<ProvenanceItem> items_;
  std::vector<std::vector<ItemId>> groups_;
  std::vector<std::string> group_entities_;
};

}  // namespace pcqe

#endif  // PCQE_ASSIGN_PROVENANCE_H_
