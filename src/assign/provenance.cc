#include "assign/provenance.h"

#include "common/string_util.h"

namespace pcqe {

Result<AgentId> ProvenanceGraph::AddAgent(Agent agent) {
  if (agent.name.empty()) return Status::InvalidArgument("agent name must be non-empty");
  if (agent.prior_trust < 0.0 || agent.prior_trust > 1.0) {
    return Status::InvalidArgument(
        StrFormat("agent '%s': prior trust %g outside [0, 1]", agent.name.c_str(),
                  agent.prior_trust));
  }
  agents_.push_back(std::move(agent));
  return static_cast<AgentId>(agents_.size() - 1);
}

Result<ItemId> ProvenanceGraph::AddItem(ProvenanceItem item) {
  if (item.entity.empty()) {
    return Status::InvalidArgument("item entity key must be non-empty");
  }
  if (item.source >= agents_.size()) {
    return Status::NotFound(StrFormat("source agent %u not found", item.source));
  }
  if (!agents_[item.source].is_source) {
    return Status::InvalidArgument(
        StrFormat("agent '%s' is an intermediary, not a source",
                  agents_[item.source].name.c_str()));
  }
  for (AgentId a : item.intermediaries) {
    if (a >= agents_.size()) {
      return Status::NotFound(StrFormat("intermediate agent %u not found", a));
    }
    if (agents_[a].is_source) {
      return Status::InvalidArgument(
          StrFormat("agent '%s' is a source, not an intermediary",
                    agents_[a].name.c_str()));
    }
  }

  ItemId id = static_cast<ItemId>(items_.size());
  // Group by entity (linear scan over distinct entities; provenance sets
  // are configuration-sized).
  size_t group = group_entities_.size();
  for (size_t g = 0; g < group_entities_.size(); ++g) {
    if (group_entities_[g] == item.entity) {
      group = g;
      break;
    }
  }
  if (group == group_entities_.size()) {
    group_entities_.push_back(item.entity);
    groups_.emplace_back();
  }
  groups_[group].push_back(id);
  items_.push_back(std::move(item));
  return id;
}

}  // namespace pcqe
