#include "assign/trust_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace pcqe {

double ValueSimilarity(double a, double b, double sigma) {
  double z = (a - b) / sigma;
  return std::exp(-z * z);
}

namespace {

Status ValidateOptions(const TrustModelOptions& options) {
  if (options.similarity_sigma <= 0.0) {
    return Status::InvalidArgument("similarity_sigma must be positive");
  }
  if (options.similarity_threshold < 0.0 || options.similarity_threshold > 1.0) {
    return Status::InvalidArgument("similarity_threshold outside [0, 1]");
  }
  if (options.weight_path <= 0.0 || options.weight_support < 0.0 ||
      options.weight_conflict < 0.0) {
    return Status::InvalidArgument(
        "weight_path must be positive; support/conflict weights non-negative");
  }
  if (options.source_damping < 0.0 || options.source_damping > 1.0) {
    return Status::InvalidArgument("source_damping outside [0, 1]");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be at least 1");
  }
  return Status::OK();
}

}  // namespace

Result<TrustReport> ComputeTrust(const ProvenanceGraph& graph,
                                 const TrustModelOptions& options) {
  PCQE_RETURN_NOT_OK(ValidateOptions(options));

  TrustReport report;
  report.agent_trust.resize(graph.num_agents());
  for (AgentId a = 0; a < graph.num_agents(); ++a) {
    report.agent_trust[a] = graph.agent(a).prior_trust;
  }
  report.item_trust.assign(graph.num_items(), 0.0);

  // Path attenuation per item is structural: Π of intermediary priors.
  // (Intermediary trust stays at its prior throughout.)
  std::vector<double> attenuation(graph.num_items(), 1.0);
  for (ItemId i = 0; i < graph.num_items(); ++i) {
    for (AgentId a : graph.item(i).intermediaries) {
      attenuation[i] *= graph.agent(a).prior_trust;
    }
  }

  // Items reported per source, for the source-revision step.
  std::vector<std::vector<ItemId>> by_source(graph.num_agents());
  for (ItemId i = 0; i < graph.num_items(); ++i) {
    by_source[graph.item(i).source].push_back(i);
  }

  // Seed item trust from path trust alone.
  for (ItemId i = 0; i < graph.num_items(); ++i) {
    report.item_trust[i] =
        report.agent_trust[graph.item(i).source] * attenuation[i];
  }

  std::vector<double> next_item(graph.num_items());
  for (report.iterations = 1; report.iterations <= options.max_iterations;
       ++report.iterations) {
    double max_delta = 0.0;

    // --- Item update: path trust + corroboration - conflict. -------------
    for (const std::vector<ItemId>& group : graph.entity_groups()) {
      for (ItemId i : group) {
        const ProvenanceItem& item = graph.item(i);
        double path = report.agent_trust[item.source] * attenuation[i];

        double support = 0.0;
        double conflict = 0.0;
        size_t peers = 0;
        for (ItemId j : group) {
          if (j == i) continue;
          // Independent re-reports corroborate; the same source repeating
          // itself does not count twice.
          if (graph.item(j).source == item.source) continue;
          ++peers;
          double sim = ValueSimilarity(item.value, graph.item(j).value,
                                       options.similarity_sigma);
          if (sim >= options.similarity_threshold) {
            support += report.item_trust[j] * sim;
          } else {
            conflict += report.item_trust[j] * (1.0 - sim);
          }
        }
        if (peers > 0) {
          support /= static_cast<double>(peers);
          conflict /= static_cast<double>(peers);
        }

        // Support pulls trust up from the path baseline (capped at 1);
        // conflict pushes toward 0. Dividing by the positive weights keeps
        // the no-signal case exactly at `path` and the result in [0, 1]
        // before clamping absorbs the conflict term.
        double raw = (options.weight_path * path +
                      options.weight_support * std::min(1.0, path + support) -
                      options.weight_conflict * conflict) /
                     (options.weight_path + options.weight_support);
        next_item[i] = ClampProbability(raw);
      }
    }
    for (ItemId i = 0; i < graph.num_items(); ++i) {
      max_delta = std::max(max_delta, std::fabs(next_item[i] - report.item_trust[i]));
      report.item_trust[i] = next_item[i];
    }

    // --- Source revision: damped pull toward the mean *source-attributable*
    // trust of its items. Path attenuation is divided back out so relayed
    // items do not unfairly drag their source down (an item trusted at
    // exactly source x attenuation is evidence the source is exactly as
    // trustworthy as believed, not less).
    for (AgentId a = 0; a < graph.num_agents(); ++a) {
      if (!graph.agent(a).is_source || by_source[a].empty()) continue;
      double mean = 0.0;
      size_t counted = 0;
      for (ItemId i : by_source[a]) {
        if (attenuation[i] <= kEpsilon) continue;  // fully attenuated: no signal
        mean += std::min(1.0, report.item_trust[i] / attenuation[i]);
        ++counted;
      }
      if (counted == 0) continue;
      mean /= static_cast<double>(counted);
      double revised = (1.0 - options.source_damping) * report.agent_trust[a] +
                       options.source_damping * mean;
      max_delta = std::max(max_delta, std::fabs(revised - report.agent_trust[a]));
      report.agent_trust[a] = revised;
    }

    if (max_delta <= options.tolerance) {
      report.converged = true;
      break;
    }
  }
  report.iterations = std::min(report.iterations, options.max_iterations);
  return report;
}

}  // namespace pcqe
