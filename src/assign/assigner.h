// Copyright (c) PCQE contributors.
// Bridges the provenance trust model to stored tables: the framework's
// "confidence assignment" component (Figure 1, top right).

#ifndef PCQE_ASSIGN_ASSIGNER_H_
#define PCQE_ASSIGN_ASSIGNER_H_

#include <vector>

#include "assign/trust_model.h"
#include "common/result.h"
#include "relational/catalog.h"

namespace pcqe {

/// \brief Maps one stored tuple to one provenance item.
struct TupleProvenance {
  BaseTupleId tuple = 0;
  ItemId item = 0;
};

/// \brief Result of an assignment run.
struct AssignmentReport {
  TrustReport trust;
  /// Tuples whose confidence was written, in input order.
  std::vector<TupleProvenance> applied;
};

/// \brief Computes trust over `graph` and writes each mapped tuple's
/// confidence.
///
/// Validation happens before any write: every tuple id must resolve and
/// every item id must exist. A tuple's `max_confidence` still caps the
/// stored value (a tuple that can never exceed 0.8 stays capped even if the
/// model reports 0.9). Returns the trust report plus the applied mapping.
[[nodiscard]] Result<AssignmentReport> AssignConfidences(Catalog* catalog, const ProvenanceGraph& graph,
                                           const std::vector<TupleProvenance>& mapping,
                                           const TrustModelOptions& options = {});

}  // namespace pcqe

#endif  // PCQE_ASSIGN_ASSIGNER_H_
