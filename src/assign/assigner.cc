#include "assign/assigner.h"

#include <algorithm>

#include "common/string_util.h"

namespace pcqe {

Result<AssignmentReport> AssignConfidences(Catalog* catalog,
                                           const ProvenanceGraph& graph,
                                           const std::vector<TupleProvenance>& mapping,
                                           const TrustModelOptions& options) {
  // Validate the whole mapping before writing anything.
  for (const TupleProvenance& m : mapping) {
    PCQE_ASSIGN_OR_RETURN(const Tuple* t, catalog->FindTuple(m.tuple));
    (void)t;
    if (m.item >= graph.num_items()) {
      return Status::NotFound(StrFormat("provenance item %u not found", m.item));
    }
  }

  AssignmentReport report;
  PCQE_ASSIGN_OR_RETURN(report.trust, ComputeTrust(graph, options));

  for (const TupleProvenance& m : mapping) {
    PCQE_ASSIGN_OR_RETURN(const Tuple* t, catalog->FindTuple(m.tuple));
    double confidence =
        std::min(report.trust.item_trust[m.item], t->max_confidence());
    // Bulk out-of-band assignment rewrites the whole confidence baseline;
    // durable deployments must checkpoint right after (the WAL only logs
    // accepts).
    PCQE_RETURN_NOT_OK(catalog->SetConfidence(  // pcqe-lint: allow(durability)
        m.tuple, confidence));
    report.applied.push_back(m);
  }
  return report;
}

}  // namespace pcqe
