// Copyright (c) PCQE contributors.
// Iterative trust computation over a provenance graph (after Dai et al.,
// "An Approach to Evaluate Data Trustworthiness Based on Data Provenance",
// SDM 2008 — the paper's reference [5] for confidence assignment).
//
// The model couples three signals into a fixpoint:
//  - *path trust*: an item is at most as trustworthy as its source, further
//    attenuated by each intermediate agent it passed through;
//  - *corroboration*: items about the same entity with similar values
//    support each other in proportion to the supporters' current trust;
//  - *conflict*: items about the same entity with dissimilar values erode
//    each other in proportion to the conflicters' current trust.
// Source trust is in turn revised toward the mean trust of the items the
// source reported (damped), and the loop repeats until convergence.

#ifndef PCQE_ASSIGN_TRUST_MODEL_H_
#define PCQE_ASSIGN_TRUST_MODEL_H_

#include <vector>

#include "assign/provenance.h"
#include "common/result.h"

namespace pcqe {

/// \brief Tuning knobs for the trust fixpoint.
struct TrustModelOptions {
  /// Gaussian similarity kernel width: sim(a, b) = exp(-((a-b)/sigma)^2).
  /// Values within ~sigma of each other corroborate; far values conflict.
  double similarity_sigma = 1.0;
  /// Similarity at or above this counts as corroboration; below, conflict.
  double similarity_threshold = 0.5;
  /// Weights of the three signals; they are normalized internally so only
  /// ratios matter.
  double weight_path = 1.0;
  double weight_support = 0.5;
  double weight_conflict = 0.5;
  /// Damping of source-trust revision per round (0 = frozen priors,
  /// 1 = full replacement).
  double source_damping = 0.5;
  /// Convergence tolerance on the max absolute trust change per round.
  double tolerance = 1e-6;
  /// Round cap; exceeding it returns the current (non-converged) state
  /// with `TrustReport::converged = false`.
  size_t max_iterations = 200;
};

/// \brief Output of the fixpoint: per-item and per-source trust.
struct TrustReport {
  /// Trust (confidence) per item, aligned with `ProvenanceGraph` item ids.
  std::vector<double> item_trust;
  /// Revised trust per agent (intermediaries keep their priors).
  std::vector<double> agent_trust;
  bool converged = false;
  size_t iterations = 0;
};

/// Runs the fixpoint. Returns `kInvalidArgument` for malformed options.
[[nodiscard]] Result<TrustReport> ComputeTrust(const ProvenanceGraph& graph,
                                 const TrustModelOptions& options = {});

/// The similarity kernel used by the model, exposed for tests:
/// `exp(-((a-b)/sigma)^2)`.
double ValueSimilarity(double a, double b, double sigma);

}  // namespace pcqe

#endif  // PCQE_ASSIGN_TRUST_MODEL_H_
