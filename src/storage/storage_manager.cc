#include "storage/storage_manager.h"

#include <filesystem>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "relational/catalog.h"
#include "relational/database_io.h"

namespace pcqe {

namespace {

std::string CheckpointName(uint64_t lsn) {
  return StrFormat("checkpoint-%06llu", static_cast<unsigned long long>(lsn));
}

std::string WalName(uint64_t lsn) {
  return StrFormat("wal-%06llu.log", static_cast<unsigned long long>(lsn));
}

}  // namespace

StorageManager::~StorageManager() {
  MutexLock lock(mu_);
  if (writer_ != nullptr && writer_->buffered() > 0) {
    // Best-effort flush of commits accepted with sync_each_commit off;
    // losing them on a clean shutdown would be gratuitous.
    Status synced = writer_->Sync();
    if (!synced.ok()) {
      PCQE_LOG(Warning) << "final WAL sync failed: " << synced.ToString();
    }
  }
}

Status StorageManager::Open(const DurabilityOptions& options, Catalog* catalog) {
  if (!options.enabled()) {
    return Status::InvalidArgument("durability options carry no directory");
  }
  if (catalog == nullptr) {
    return Status::InvalidArgument("durable storage needs a catalog");
  }
  MutexLock lock(mu_);
  return OpenLocked(options, catalog);
}

Status StorageManager::OpenLocked(const DurabilityOptions& options,
                                  Catalog* catalog) {
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal(StrFormat("cannot create storage dir '%s': %s",
                                      options.dir.c_str(), ec.message().c_str()));
  }
  options_ = options;
  catalog_ = catalog;
  writer_.reset();
  if (ManifestExists(options_.dir)) {
    return RecoverLocked();
  }
  // Fresh directory: the initial checkpoint snapshots whatever the catalog
  // holds right now (possibly empty) and starts the first segment.
  return CheckpointLocked(*catalog_);
}

Status StorageManager::LogAccept(uint64_t catalog_version,
                                 const std::vector<WalAction>& actions) {
  MutexLock lock(mu_);
  if (writer_ == nullptr) {
    return Status::Internal("durable storage is not open");
  }
  WalRecord record;
  record.lsn = next_lsn_;
  record.type = WalRecordType::kCommit;
  record.version = catalog_version + actions.size();
  record.actions = actions;

  const size_t buffer_mark = writer_->buffered();
  const uint64_t file_mark = writer_->file_size();
  Status logged = writer_->Append(record);
  if (logged.ok() && options_.sync_each_commit) {
    logged = writer_->Sync();
  }
  if (!logged.ok()) {
    writer_->Rollback(buffer_mark, file_mark);
    return logged.WithContext("accept transaction rolled back");
  }
  ++next_lsn_;
  uint64_t bytes =
      writer_->buffered() + (writer_->file_size() - file_mark) - buffer_mark;
  wal_appends_ += 1;
  wal_bytes_ += bytes;
  if (metrics_.wal_appends != nullptr) metrics_.wal_appends->Increment();
  if (metrics_.wal_bytes != nullptr) metrics_.wal_bytes->Increment(bytes);
  if (options_.sync_each_commit) {
    syncs_ += 1;
    if (metrics_.syncs != nullptr) metrics_.syncs->Increment();
  }
  return Status::OK();
}

Status StorageManager::Checkpoint(const Catalog& catalog) {
  MutexLock lock(mu_);
  if (catalog_ == nullptr) {
    return Status::Internal("durable storage is not open");
  }
  return CheckpointLocked(catalog);
}

Status StorageManager::CheckpointLocked(const Catalog& catalog) {
  PCQE_INJECT_FAULT(fault_sites::kCheckpoint);
  const uint64_t lsn = next_lsn_;
  const std::string checkpoint = CheckpointName(lsn);
  const std::string wal = WalName(lsn);

  // 1. Snapshot into a temp directory, then rename into place. A crash
  //    mid-snapshot leaves only an orphan temp dir; the old manifest still
  //    points at intact state.
  std::string tmp = options_.dir + "/" + checkpoint + ".tmp";
  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);
  std::filesystem::create_directories(tmp, ec);
  if (ec) {
    return Status::Internal(StrFormat("cannot create checkpoint dir '%s': %s",
                                      tmp.c_str(), ec.message().c_str()));
  }
  PCQE_RETURN_NOT_OK(SaveDatabase(catalog, tmp).WithContext("checkpoint snapshot"));
  std::string final_dir = options_.dir + "/" + checkpoint;
  std::filesystem::remove_all(final_dir, ec);
  std::filesystem::rename(tmp, final_dir, ec);
  if (ec) {
    return Status::Internal(StrFormat("cannot publish checkpoint '%s': %s",
                                      final_dir.c_str(), ec.message().c_str()));
  }

  // 2. Start the new segment with its synced opening version record. The
  //    manager's lock is held for the whole checkpoint, so no commit can
  //    interleave between the snapshot and the rotation.
  PCQE_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> fresh,
                        WalWriter::Create(options_.dir + "/" + wal));
  WalRecord opening;
  opening.lsn = lsn;
  opening.type = WalRecordType::kVersionSet;
  opening.version = catalog.confidence_version();
  PCQE_RETURN_NOT_OK(fresh->Append(opening));
  PCQE_RETURN_NOT_OK(fresh->Sync());

  // 3. Publish. This rename is the commit point: before it, recovery uses
  //    the previous pair; after it, the new one.
  DurabilityManifest manifest{checkpoint, wal, lsn};
  PCQE_RETURN_NOT_OK(SaveManifest(options_.dir, manifest));

  // 4. Swap in memory and retire the superseded files (best-effort; stale
  //    files are unreferenced and harmless).
  std::string old_checkpoint = manifest_.checkpoint;
  std::string old_wal = manifest_.wal;
  writer_ = std::move(fresh);
  manifest_ = manifest;
  next_lsn_ = lsn + 1;
  checkpoints_ += 1;
  if (metrics_.checkpoints != nullptr) metrics_.checkpoints->Increment();
  if (!old_checkpoint.empty() && old_checkpoint != checkpoint) {
    std::filesystem::remove_all(options_.dir + "/" + old_checkpoint, ec);
  }
  if (!old_wal.empty() && old_wal != wal) {
    std::filesystem::remove(options_.dir + "/" + old_wal, ec);
  }
  return Status::OK();
}

Status StorageManager::Recover() {
  MutexLock lock(mu_);
  if (catalog_ == nullptr) {
    return Status::Internal("durable storage is not open");
  }
  return RecoverLocked();
}

Status StorageManager::RecoverLocked() {
  writer_.reset();  // drop all non-durable buffered state — the "crash"
  RecoveryManager recovery(options_.dir);
  PCQE_ASSIGN_OR_RETURN(RecoveryReport report, recovery.Recover(catalog_));
  PCQE_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> resumed,
      WalWriter::Resume(options_.dir + "/" + report.manifest.wal,
                        report.wal_valid_bytes));
  writer_ = std::move(resumed);
  manifest_ = report.manifest;
  next_lsn_ = report.next_lsn;
  recovered_records_ += report.replayed_records;
  recovered_version_ = report.recovered_version;
  if (metrics_.recovered_records != nullptr) {
    metrics_.recovered_records->Increment(report.replayed_records);
  }
  PCQE_LOG(Info) << "recovered catalog from " << options_.dir << ": checkpoint "
                 << report.manifest.checkpoint << " + " << report.replayed_commits
                 << " commits (" << report.replayed_actions << " actions), version "
                 << report.recovered_version
                 << (report.wal_torn_bytes > 0
                         ? StrFormat(", %llu torn bytes skipped",
                                     static_cast<unsigned long long>(
                                         report.wal_torn_bytes))
                         : "");
  return Status::OK();
}

void StorageManager::AttachTelemetry(TelemetryRegistry* registry) {
  MutexLock lock(mu_);
  if (registry == nullptr) {
    metrics_ = StorageMetrics{};
    return;
  }
  metrics_.wal_appends = registry->GetCounter(
      "pcqe_storage_wal_appends_total", "Accept transactions appended to the WAL");
  metrics_.wal_bytes = registry->GetCounter("pcqe_storage_wal_bytes_total",
                                            "Bytes appended to the WAL");
  metrics_.syncs =
      registry->GetCounter("pcqe_storage_syncs_total", "WAL fsync batches");
  metrics_.checkpoints = registry->GetCounter("pcqe_storage_checkpoints_total",
                                              "Checkpoints published");
  metrics_.recovered_records = registry->GetCounter(
      "pcqe_storage_recovered_records_total", "WAL records replayed by recovery");
  // Seed with tallies accumulated before attachment (e.g. the recovery that
  // ran inside Open).
  auto seed = [](Counter* counter, uint64_t tally) {
    uint64_t published = counter->value();
    if (tally > published) counter->Increment(tally - published);
  };
  seed(metrics_.wal_appends, wal_appends_);
  seed(metrics_.wal_bytes, wal_bytes_);
  seed(metrics_.syncs, syncs_);
  seed(metrics_.checkpoints, checkpoints_);
  seed(metrics_.recovered_records, recovered_records_);
}

bool StorageManager::open() const {
  MutexLock lock(mu_);
  return writer_ != nullptr;
}

StorageSnapshot StorageManager::snapshot() const {
  MutexLock lock(mu_);
  StorageSnapshot snap;
  snap.dir = options_.dir;
  snap.checkpoint = manifest_.checkpoint;
  snap.wal = manifest_.wal;
  snap.truncate_lsn = manifest_.truncate_lsn;
  snap.next_lsn = next_lsn_;
  snap.wal_buffered_bytes = writer_ != nullptr ? writer_->buffered() : 0;
  snap.wal_file_bytes = writer_ != nullptr ? writer_->file_size() : 0;
  snap.wal_appends = wal_appends_;
  snap.wal_bytes = wal_bytes_;
  snap.syncs = syncs_;
  snap.checkpoints = checkpoints_;
  snap.recovered_records = recovered_records_;
  snap.recovered_version = recovered_version_;
  return snap;
}

}  // namespace pcqe
