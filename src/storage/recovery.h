// Copyright (c) PCQE contributors.
// Startup recovery: checkpoint load + WAL replay -> bit-identical catalog.

#ifndef PCQE_STORAGE_RECOVERY_H_
#define PCQE_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/manifest.h"

namespace pcqe {

class Catalog;

/// \brief What one recovery pass did, for logging, tests and `.wal`.
struct RecoveryReport {
  DurabilityManifest manifest;
  /// Catalog `confidence_version()` right after the checkpoint loaded.
  uint64_t checkpoint_version = 0;
  /// Intact WAL records replayed (version-set + commits).
  uint64_t replayed_records = 0;
  uint64_t replayed_commits = 0;
  uint64_t replayed_actions = 0;
  /// Final `confidence_version()` — equal to the last record's `version`.
  uint64_t recovered_version = 0;
  /// One past the highest LSN seen; where logging resumes.
  uint64_t next_lsn = 0;
  /// Intact prefix / discarded torn tail of the segment (bytes).
  uint64_t wal_valid_bytes = 0;
  uint64_t wal_torn_bytes = 0;
};

/// \brief Rebuilds a catalog from a storage directory.
///
/// Protocol: load `MANIFEST`; `Catalog::Clear()`; load the checkpoint
/// snapshot (restoring table ids and the checkpointed confidence version);
/// replay every intact WAL record in order, verifying that (a) the
/// segment opens with a version-set record matching the checkpoint and the
/// manifest's truncate LSN, (b) LSNs strictly increase, and (c) after each
/// commit the catalog's `confidence_version()` equals the version the
/// record logged — which makes "bit-identical recovery" a checked
/// invariant rather than a hope. A torn final record is skipped silently
/// (it was never acknowledged); any verification failure is `kInternal`.
class RecoveryManager {
 public:
  explicit RecoveryManager(std::string dir) : dir_(std::move(dir)) {}

  /// Replaces `catalog`'s entire contents with the recovered state.
  /// Probes `storage.recovery.replay` once per WAL record, so tests can
  /// interrupt replay mid-stream; on failure the catalog is left partially
  /// rebuilt and the caller must not serve from it.
  [[nodiscard]] Result<RecoveryReport> Recover(Catalog* catalog) const;

 private:
  std::string dir_;
};

}  // namespace pcqe

#endif  // PCQE_STORAGE_RECOVERY_H_
