#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace pcqe {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'Q', 'E', 'W', 'A', 'L', '1'};
constexpr size_t kMagicSize = sizeof(kMagic);
constexpr size_t kFrameHeaderSize = 8;  // u32 len + u32 crc
/// Sanity bound on one payload; a "length" past this is treated as a torn
/// tail, not an allocation request.
constexpr uint32_t kMaxPayload = 1u << 26;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

double GetF64(const char* p) {
  uint64_t bits = GetU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string EncodePayload(const WalRecord& record) {
  std::string payload;
  PutU64(&payload, record.lsn);
  payload.push_back(static_cast<char>(record.type));
  PutU64(&payload, record.version);
  if (record.type == WalRecordType::kCommit) {
    PutU32(&payload, static_cast<uint32_t>(record.actions.size()));
    for (const WalAction& a : record.actions) {
      PutU64(&payload, a.tuple);
      PutF64(&payload, a.from);
      PutF64(&payload, a.to);
      PutF64(&payload, a.cost);
    }
  }
  return payload;
}

constexpr size_t kPayloadFixed = 17;  // lsn + type + version
constexpr size_t kActionSize = 32;    // tuple + from + to + cost

Result<WalRecord> DecodePayload(const char* p, size_t size) {
  if (size < kPayloadFixed) {
    return Status::Internal(
        StrFormat("WAL payload of %zu bytes is shorter than the fixed header", size));
  }
  WalRecord record;
  record.lsn = GetU64(p);
  uint8_t type = static_cast<uint8_t>(p[8]);
  record.version = GetU64(p + 9);
  switch (type) {
    case static_cast<uint8_t>(WalRecordType::kVersionSet):
      record.type = WalRecordType::kVersionSet;
      if (size != kPayloadFixed) {
        return Status::Internal(
            StrFormat("version-set record carries %zu trailing bytes",
                      size - kPayloadFixed));
      }
      return record;
    case static_cast<uint8_t>(WalRecordType::kCommit): {
      record.type = WalRecordType::kCommit;
      if (size < kPayloadFixed + 4) {
        return Status::Internal("commit record truncated before its action count");
      }
      uint32_t count = GetU32(p + kPayloadFixed);
      if (size != kPayloadFixed + 4 + static_cast<size_t>(count) * kActionSize) {
        return Status::Internal(
            StrFormat("commit record of %zu bytes does not hold %u actions", size,
                      count));
      }
      record.actions.reserve(count);
      const char* a = p + kPayloadFixed + 4;
      for (uint32_t i = 0; i < count; ++i, a += kActionSize) {
        record.actions.push_back(
            {GetU64(a), GetF64(a + 8), GetF64(a + 16), GetF64(a + 24)});
      }
      return record;
    }
    default:
      return Status::Internal(StrFormat("unknown WAL record type %u", type));
  }
}

Status WriteAll(int fd, const char* data, size_t size, const std::string& path) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("write to '%s' failed: %s", path.c_str(), std::strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint32_t WalCrc32(const char* data, size_t size) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("cannot create WAL '%s': %s", path.c_str(), std::strerror(errno)));
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd, 0));
  PCQE_RETURN_NOT_OK(WriteAll(fd, kMagic, kMagicSize, path));
  if (::fsync(fd) != 0) {
    return Status::Internal(
        StrFormat("fsync of '%s' failed: %s", path.c_str(), std::strerror(errno)));
  }
  writer->file_size_ = kMagicSize;
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Resume(const std::string& path,
                                                     uint64_t valid_bytes) {
  if (valid_bytes < kMagicSize) {
    return Status::InvalidArgument(
        StrFormat("cannot resume '%s' at offset %llu (before the magic)",
                  path.c_str(),
                  static_cast<unsigned long long>(valid_bytes)));
  }
  int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("cannot reopen WAL '%s': %s", path.c_str(), std::strerror(errno)));
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd, valid_bytes));
  // Drop any torn tail so new records land on a clean boundary.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    return Status::Internal(StrFormat("cannot truncate '%s' to %llu bytes: %s",
                                      path.c_str(),
                                      static_cast<unsigned long long>(valid_bytes),
                                      std::strerror(errno)));
  }
  if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    return Status::Internal(
        StrFormat("cannot seek '%s': %s", path.c_str(), std::strerror(errno)));
  }
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(const WalRecord& record) {
  PCQE_INJECT_FAULT(fault_sites::kWalAppend);
  std::string payload = EncodePayload(record);
  PutU32(&buffer_, static_cast<uint32_t>(payload.size()));
  PutU32(&buffer_, WalCrc32(payload.data(), payload.size()));
  buffer_ += payload;
  return Status::OK();
}

Status WalWriter::Sync() {
  PCQE_INJECT_FAULT(fault_sites::kWalSync);
  PCQE_RETURN_NOT_OK(WriteAll(fd_, buffer_.data(), buffer_.size(), path_));
  if (::fsync(fd_) != 0) {
    return Status::Internal(
        StrFormat("fsync of '%s' failed: %s", path_.c_str(), std::strerror(errno)));
  }
  file_size_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

void WalWriter::Rollback(size_t buffer_mark, uint64_t file_mark) {
  if (buffer_.size() > buffer_mark) buffer_.resize(buffer_mark);
  if (fd_ >= 0 && file_size_ >= file_mark) {
    // A failed Sync may have written part of the buffer before erroring;
    // trim the file back to the durable prefix. Best-effort — a leftover
    // torn tail is exactly what ReadWal already skips.
    (void)::ftruncate(fd_, static_cast<off_t>(file_mark));
    (void)::lseek(fd_, static_cast<off_t>(file_mark), SEEK_SET);
    file_size_ = file_mark;
  }
}

Result<WalReadResult> ReadWal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrFormat("cannot open WAL '%s'", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string data = buffer.str();

  if (data.size() < kMagicSize || std::memcmp(data.data(), kMagic, kMagicSize) != 0) {
    // The magic is synced before a segment is ever referenced by a
    // manifest, so a missing/short magic is corruption, not a torn tail.
    return Status::Internal(StrFormat("'%s' is not a PCQE WAL segment", path.c_str()));
  }

  WalReadResult out;
  size_t off = kMagicSize;
  out.valid_bytes = off;
  while (data.size() - off >= kFrameHeaderSize) {
    uint32_t len = GetU32(data.data() + off);
    uint32_t crc = GetU32(data.data() + off + 4);
    if (len > kMaxPayload) break;                          // torn/garbage length
    if (data.size() - off - kFrameHeaderSize < len) break;  // torn payload
    const char* payload = data.data() + off + kFrameHeaderSize;
    if (WalCrc32(payload, len) != crc) break;  // torn or bit-rotted tail
    PCQE_ASSIGN_OR_RETURN(WalRecord record, DecodePayload(payload, len));
    out.records.push_back(std::move(record));
    off += kFrameHeaderSize + len;
    out.valid_bytes = off;
  }
  out.torn_bytes = data.size() - out.valid_bytes;
  return out;
}

}  // namespace pcqe
