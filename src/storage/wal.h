// Copyright (c) PCQE contributors.
// Append-only binary write-ahead log for catalog confidence mutations.
//
// File layout: an 8-byte magic ("PCQEWAL1") followed by framed records:
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// payload (little-endian):
//   [u64 lsn][u8 type][u64 version]
//   type kCommit additionally: [u32 count] count x { [u64 tuple]
//   [f64 from][f64 to][f64 cost] }
//
// `version` is the catalog `confidence_version()` *after* the record is
// applied, so replay can verify it reproduced the exact version history.
// A reader stops cleanly at a torn tail (short header, short payload or
// CRC mismatch at the end of the file): everything before the tear is
// intact — the invariant the whole recovery design rests on. A CRC-valid
// record whose payload does not decode is real corruption and fails hard.

#ifndef PCQE_STORAGE_WAL_H_
#define PCQE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pcqe {

/// \brief What a WAL record describes.
enum class WalRecordType : uint8_t {
  /// Opening record of a segment: asserts the catalog version at the
  /// checkpoint the segment extends. Carries no actions.
  kVersionSet = 1,
  /// One committed `AcceptProposal`: the full action list, applied
  /// atomically on replay.
  kCommit = 2,
};

/// \brief One confidence increment inside a commit record. Mirrors
/// `IncrementAction` (strategy/solution.h) but is defined here so the
/// storage layer does not depend on the solver libraries.
struct WalAction {
  uint64_t tuple = 0;  ///< catalog-wide BaseTupleId
  double from = 0.0;   ///< confidence before the increment (audit)
  double to = 0.0;     ///< confidence after the increment (replayed)
  double cost = 0.0;   ///< committed improvement cost (audit)
};

/// \brief One decoded WAL record.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kCommit;
  /// Catalog `confidence_version()` after applying this record.
  uint64_t version = 0;
  /// `kCommit` only.
  std::vector<WalAction> actions;
};

/// \brief Buffered appender over one WAL segment file.
///
/// `Append` only serializes into an in-memory buffer; `Sync` writes the
/// buffer and fsyncs, so a commit is durable exactly when `Sync` returns
/// OK. Not thread-safe — `StorageManager` serializes all access under its
/// own mutex. Probes the `storage.wal_append` / `storage.wal_sync` fault
/// sites so tests can crash a transaction at either boundary.
class WalWriter {
 public:
  /// Starts a fresh segment at `path` (truncating any existing file) and
  /// durably writes the magic.
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> Create(
      const std::string& path);

  /// Reopens an existing segment for appending. `valid_bytes` is the intact
  /// prefix reported by `ReadWal`; any torn tail past it is truncated away
  /// before the first new append.
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> Resume(
      const std::string& path, uint64_t valid_bytes);

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Serializes `record` into the buffer (probes `storage.wal_append`).
  [[nodiscard]] Status Append(const WalRecord& record);

  /// Writes the buffer to the file and fsyncs (probes `storage.wal_sync`).
  /// On success the buffer is empty and `file_size()` has advanced.
  [[nodiscard]] Status Sync();

  /// Undoes a failed transaction: drops buffered bytes past `buffer_mark`
  /// and truncates the file back to `file_mark`, covering the gray zone
  /// where a failed `Sync` wrote some bytes before erroring. Best-effort
  /// on the file side (a truncate failure leaves a torn tail the reader
  /// already skips).
  void Rollback(size_t buffer_mark, uint64_t file_mark);

  /// Bytes serialized but not yet durably written.
  size_t buffered() const { return buffer_.size(); }
  /// Durable size of the segment file (magic + synced records).
  uint64_t file_size() const { return file_size_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, uint64_t file_size)
      : path_(std::move(path)), fd_(fd), file_size_(file_size) {}

  std::string path_;
  int fd_;
  std::string buffer_;
  uint64_t file_size_;
};

/// \brief Everything `ReadWal` learned about one segment.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Offset one past the last intact record (>= 8, the magic).
  uint64_t valid_bytes = 0;
  /// Trailing bytes discarded as a torn tail (0 on a clean segment).
  uint64_t torn_bytes = 0;
};

/// \brief Reads every intact record of the segment at `path`.
///
/// `kNotFound` when the file is missing, `kInternal` on a bad magic or a
/// CRC-valid record that does not decode; a torn tail is *not* an error.
[[nodiscard]] Result<WalReadResult> ReadWal(const std::string& path);

/// CRC32 (IEEE, reflected, poly 0xEDB88320) over `data`. Exposed for
/// tests that hand-corrupt frames.
uint32_t WalCrc32(const char* data, size_t size);

}  // namespace pcqe

#endif  // PCQE_STORAGE_WAL_H_
