// Copyright (c) PCQE contributors.
// Durability manifest: the single pointer that makes a checkpoint live.
//
// A storage directory holds checkpoints (full `database_io` snapshots),
// WAL segments, and one `MANIFEST` file naming the authoritative pair.
// Recovery reads only what the manifest points at, so publishing a new
// manifest (written to a temp file, then renamed — atomic on POSIX) is the
// commit point of a checkpoint: a crash anywhere before the rename leaves
// the previous checkpoint + segment fully intact.

#ifndef PCQE_STORAGE_MANIFEST_H_
#define PCQE_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace pcqe {

inline constexpr const char* kManifestFile = "MANIFEST";

/// \brief What the `MANIFEST` file records. Text format:
///
///   PCQE_MANIFEST 1
///   checkpoint checkpoint-000001
///   wal wal-000001.log
///   truncate_lsn 1
struct DurabilityManifest {
  /// Checkpoint directory name, relative to the storage dir.
  std::string checkpoint;
  /// WAL segment file name, relative to the storage dir.
  std::string wal;
  /// LSN consumed by the checkpoint; the segment's opening version-set
  /// record carries exactly this LSN, and every record before it is
  /// subsumed by the checkpoint.
  uint64_t truncate_lsn = 0;
};

/// True when `dir` contains a `MANIFEST` (i.e. a recoverable state).
bool ManifestExists(const std::string& dir);

/// Strict parse; malformed or truncated manifests fail with
/// `kInvalidArgument` rather than recovering from the wrong state.
[[nodiscard]] Result<DurabilityManifest> LoadManifest(const std::string& dir);

/// Durably publishes `manifest`: temp file + fsync + rename + directory
/// fsync. Probes the `storage.manifest` fault site *before* touching disk,
/// so an armed test models a crash just before the commit point.
[[nodiscard]] Status SaveManifest(const std::string& dir,
                                  const DurabilityManifest& manifest);

}  // namespace pcqe

#endif  // PCQE_STORAGE_MANIFEST_H_
