#include "storage/manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace pcqe {

namespace {

/// Reads `prefix <value>` from `line`; empty optional-style failure is an
/// InvalidArgument (recovering from a half-written manifest is never safe).
Result<std::string> ManifestField(const std::string& line, const char* prefix) {
  std::string trimmed(TrimAscii(line));
  std::string want = std::string(prefix) + " ";
  if (trimmed.rfind(want, 0) != 0 || trimmed.size() <= want.size()) {
    return Status::InvalidArgument(StrFormat(
        "malformed manifest line '%s' (expected '%s <value>')", trimmed.c_str(),
        prefix));
  }
  return std::string(TrimAscii(trimmed.substr(want.size())));
}

}  // namespace

bool ManifestExists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(dir + "/" + kManifestFile, ec);
}

Result<DurabilityManifest> LoadManifest(const std::string& dir) {
  std::string path = dir + "/" + kManifestFile;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::istringstream lines(buffer.str());

  std::string line;
  if (!std::getline(lines, line) || std::string(TrimAscii(line)) != "PCQE_MANIFEST 1") {
    return Status::InvalidArgument(
        StrFormat("'%s' is not a version-1 PCQE manifest", path.c_str()));
  }
  DurabilityManifest manifest;
  if (!std::getline(lines, line)) {
    return Status::InvalidArgument("truncated manifest: missing checkpoint line");
  }
  PCQE_ASSIGN_OR_RETURN(manifest.checkpoint, ManifestField(line, "checkpoint"));
  if (!std::getline(lines, line)) {
    return Status::InvalidArgument("truncated manifest: missing wal line");
  }
  PCQE_ASSIGN_OR_RETURN(manifest.wal, ManifestField(line, "wal"));
  if (!std::getline(lines, line)) {
    return Status::InvalidArgument("truncated manifest: missing truncate_lsn line");
  }
  PCQE_ASSIGN_OR_RETURN(std::string lsn_text, ManifestField(line, "truncate_lsn"));
  errno = 0;
  char* end = nullptr;
  unsigned long long lsn = std::strtoull(lsn_text.c_str(), &end, 10);
  if (errno != 0 || end != lsn_text.c_str() + lsn_text.size()) {
    return Status::InvalidArgument(
        StrFormat("truncate_lsn '%s' is not an unsigned integer", lsn_text.c_str()));
  }
  manifest.truncate_lsn = lsn;
  return manifest;
}

Status SaveManifest(const std::string& dir, const DurabilityManifest& manifest) {
  PCQE_INJECT_FAULT(fault_sites::kManifest);
  std::string text = StrFormat(
      "PCQE_MANIFEST 1\ncheckpoint %s\nwal %s\ntruncate_lsn %llu\n",
      manifest.checkpoint.c_str(), manifest.wal.c_str(),
      static_cast<unsigned long long>(manifest.truncate_lsn));

  std::string tmp = dir + "/" + kManifestFile + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("cannot write '%s': %s", tmp.c_str(), std::strerror(errno)));
  }
  const char* data = text.data();
  size_t left = text.size();
  while (left > 0) {
    ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::Internal(
          StrFormat("write to '%s' failed: %s", tmp.c_str(), std::strerror(err)));
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    return Status::Internal(
        StrFormat("fsync of '%s' failed: %s", tmp.c_str(), std::strerror(errno)));
  }

  std::string final_path = dir + "/" + kManifestFile;
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::Internal(StrFormat("cannot publish '%s': %s", final_path.c_str(),
                                      std::strerror(errno)));
  }
  // Make the rename itself durable.
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

}  // namespace pcqe
