// Copyright (c) PCQE contributors.
// StorageManager: the durable-catalog front door — WAL logging of accepts,
// checkpoint rotation, and startup/on-demand recovery over one directory.

#ifndef PCQE_STORAGE_STORAGE_MANAGER_H_
#define PCQE_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/manifest.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "telemetry/metrics.h"

namespace pcqe {

class Catalog;

/// \brief Durability knobs, threaded through `ServiceOptions`.
struct DurabilityOptions {
  /// Storage directory (created if missing). Empty disables durability.
  std::string dir;
  /// fsync the WAL inside every `LogAccept` (the paper-grade guarantee:
  /// an acknowledged accept survives any crash). Off trades that window
  /// for accept throughput; the buffer still reaches disk at the next
  /// checkpoint or sync.
  bool sync_each_commit = true;
  bool enabled() const { return !dir.empty(); }
};

/// \brief Point-in-time introspection for tests and the shell's `.wal`.
struct StorageSnapshot {
  std::string dir;
  std::string checkpoint;
  std::string wal;
  uint64_t truncate_lsn = 0;
  uint64_t next_lsn = 0;
  uint64_t wal_buffered_bytes = 0;
  uint64_t wal_file_bytes = 0;
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t syncs = 0;
  uint64_t checkpoints = 0;
  uint64_t recovered_records = 0;
  uint64_t recovered_version = 0;
};

/// \brief Owns one storage directory: a live WAL segment plus the
/// checkpoint the manifest points at.
///
/// Locking: all state is guarded by an internal `pcqe::Mutex`. Callers
/// (the engine under `catalog_mu` exclusive for `LogAccept`, the service
/// under `catalog_mu` shared for `Checkpoint` / exclusive for `Recover`)
/// hold the engine lock *first*, making the order catalog_mu -> mu_
/// program-wide; nothing here calls back out while holding `mu_` except
/// into the borrowed catalog, which the caller's engine lock already
/// protects.
class StorageManager {
 public:
  StorageManager() = default;
  ~StorageManager();

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Opens `options.dir` against `catalog` (borrowed; must outlive the
  /// manager). With an existing `MANIFEST` this *recovers*: the catalog's
  /// contents are replaced by checkpoint + replay. A fresh directory gets
  /// an initial checkpoint of the catalog as passed. The caller must hold
  /// the catalog's writer lock (recovery rewrites it).
  [[nodiscard]] Status Open(const DurabilityOptions& options, Catalog* catalog);

  /// Logs one accept transaction: appends a commit record carrying
  /// `actions` and (by default) syncs it to disk. `catalog_version` is the
  /// version *before* the accept applies; the record logs the post-apply
  /// version so replay is self-verifying. On any failure the record is
  /// rolled back entirely — the caller then skips the catalog mutation, so
  /// an unlogged accept can never be observed.
  [[nodiscard]] Status LogAccept(uint64_t catalog_version,
                                 const std::vector<WalAction>& actions);

  /// Writes a fresh checkpoint of `catalog` and rotates to a new WAL
  /// segment, publishing both via the manifest (the commit point). A crash
  /// or injected fault anywhere before the publish leaves the previous
  /// checkpoint + segment authoritative. The caller must hold at least the
  /// catalog's reader lock across the call so the snapshot is consistent.
  [[nodiscard]] Status Checkpoint(const Catalog& catalog);

  /// Re-runs recovery on the attached catalog (checkpoint load + replay),
  /// discarding all non-durable in-memory state — the test seam that
  /// models a crash without exiting the process. Caller holds the
  /// catalog's writer lock. On failure the catalog may be partially
  /// rebuilt and the manager refuses further logging until a successful
  /// `Recover`.
  [[nodiscard]] Status Recover();

  /// Registers the `pcqe_storage_*` counters on `registry` (borrowed) and
  /// seeds them with tallies accumulated so far. Call once, after `Open`,
  /// before serving.
  void AttachTelemetry(TelemetryRegistry* registry);

  /// True between a successful `Open`/`Recover` and a failure that
  /// suspended logging.
  bool open() const;

  StorageSnapshot snapshot() const;

 private:
  [[nodiscard]] Status OpenLocked(const DurabilityOptions& options,
                                  Catalog* catalog) PCQE_REQUIRES(mu_);
  [[nodiscard]] Status RecoverLocked() PCQE_REQUIRES(mu_);
  [[nodiscard]] Status CheckpointLocked(const Catalog& catalog) PCQE_REQUIRES(mu_);

  /// Cached instrument pointers (null until `AttachTelemetry`).
  struct StorageMetrics {
    Counter* wal_appends = nullptr;
    Counter* wal_bytes = nullptr;
    Counter* syncs = nullptr;
    Counter* checkpoints = nullptr;
    Counter* recovered_records = nullptr;
  };

  mutable Mutex mu_;
  DurabilityOptions options_ PCQE_GUARDED_BY(mu_);
  Catalog* catalog_ PCQE_GUARDED_BY(mu_) = nullptr;  // borrowed
  std::unique_ptr<WalWriter> writer_ PCQE_GUARDED_BY(mu_);
  DurabilityManifest manifest_ PCQE_GUARDED_BY(mu_);
  uint64_t next_lsn_ PCQE_GUARDED_BY(mu_) = 1;

  // Plain tallies under mu_ (mirrored into telemetry counters when
  // attached, so they survive attach order and writer rotation).
  uint64_t wal_appends_ PCQE_GUARDED_BY(mu_) = 0;
  uint64_t wal_bytes_ PCQE_GUARDED_BY(mu_) = 0;
  uint64_t syncs_ PCQE_GUARDED_BY(mu_) = 0;
  uint64_t checkpoints_ PCQE_GUARDED_BY(mu_) = 0;
  uint64_t recovered_records_ PCQE_GUARDED_BY(mu_) = 0;
  uint64_t recovered_version_ PCQE_GUARDED_BY(mu_) = 0;
  StorageMetrics metrics_ PCQE_GUARDED_BY(mu_);
};

}  // namespace pcqe

#endif  // PCQE_STORAGE_STORAGE_MANAGER_H_
