#include "storage/recovery.h"

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "relational/catalog.h"
#include "relational/database_io.h"
#include "storage/wal.h"

namespace pcqe {

Result<RecoveryReport> RecoveryManager::Recover(Catalog* catalog) const {
  RecoveryReport report;
  PCQE_ASSIGN_OR_RETURN(report.manifest, LoadManifest(dir_));

  catalog->Clear();
  PCQE_RETURN_NOT_OK(
      LoadDatabase(dir_ + "/" + report.manifest.checkpoint, catalog)
          .WithContext(StrFormat("loading checkpoint '%s'",
                                 report.manifest.checkpoint.c_str())));
  report.checkpoint_version = catalog->confidence_version();

  PCQE_ASSIGN_OR_RETURN(WalReadResult wal,
                        ReadWal(dir_ + "/" + report.manifest.wal));
  report.wal_valid_bytes = wal.valid_bytes;
  report.wal_torn_bytes = wal.torn_bytes;

  if (wal.records.empty()) {
    return Status::Internal(StrFormat(
        "segment '%s' is missing its opening version record",
        report.manifest.wal.c_str()));
  }

  uint64_t last_lsn = 0;
  for (size_t i = 0; i < wal.records.size(); ++i) {
    const WalRecord& record = wal.records[i];
    PCQE_INJECT_FAULT(fault_sites::kRecoveryReplay);
    if (i == 0) {
      if (record.type != WalRecordType::kVersionSet) {
        return Status::Internal(
            StrFormat("segment '%s' does not open with a version record",
                      report.manifest.wal.c_str()));
      }
      if (record.lsn != report.manifest.truncate_lsn) {
        return Status::Internal(StrFormat(
            "segment opens at LSN %llu but the manifest truncates at %llu",
            static_cast<unsigned long long>(record.lsn),
            static_cast<unsigned long long>(report.manifest.truncate_lsn)));
      }
      if (record.version != report.checkpoint_version) {
        return Status::Internal(StrFormat(
            "segment asserts checkpoint version %llu but the checkpoint "
            "loaded at %llu",
            static_cast<unsigned long long>(record.version),
            static_cast<unsigned long long>(report.checkpoint_version)));
      }
    } else {
      if (record.lsn <= last_lsn) {
        return Status::Internal(
            StrFormat("LSN %llu out of order after %llu",
                      static_cast<unsigned long long>(record.lsn),
                      static_cast<unsigned long long>(last_lsn)));
      }
      if (record.type != WalRecordType::kCommit) {
        return Status::Internal(StrFormat(
            "unexpected non-commit record mid-segment at LSN %llu",
            static_cast<unsigned long long>(record.lsn)));
      }
      for (const WalAction& action : record.actions) {
        PCQE_RETURN_NOT_OK(
            catalog->SetConfidence(action.tuple, action.to)
                .WithContext(StrFormat(
                    "replaying LSN %llu",
                    static_cast<unsigned long long>(record.lsn))));
      }
      if (catalog->confidence_version() != record.version) {
        return Status::Internal(StrFormat(
            "replay of LSN %llu left confidence_version %llu, record logged "
            "%llu",
            static_cast<unsigned long long>(record.lsn),
            static_cast<unsigned long long>(catalog->confidence_version()),
            static_cast<unsigned long long>(record.version)));
      }
      ++report.replayed_commits;
      report.replayed_actions += record.actions.size();
    }
    last_lsn = record.lsn;
    ++report.replayed_records;
  }

  report.recovered_version = catalog->confidence_version();
  report.next_lsn = last_lsn + 1;
  return report;
}

}  // namespace pcqe
