#include "strategy/dnc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <utility>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace pcqe {

namespace {

SolveStop DncStopFrom(StopCause cause) {
  return cause == StopCause::kCancelled ? SolveStop::kCancelled
                                        : SolveStop::kDeadline;
}

/// A group posed as a standalone sub-problem plus solver artifacts.
struct GroupWork {
  std::vector<uint32_t> sub_bases;          ///< global base index per sub index
  std::vector<LineageRef> sub_lineages;     ///< still-unsatisfied results
  std::vector<uint32_t> sub_query_of;       ///< compact query id per result
  std::vector<uint32_t> sub_queries_orig;   ///< compact -> original query
  std::vector<size_t> sub_available;       ///< unsat results per compact query
};

/// Collects the group's still-relevant results and base tuples against the
/// current global state. Returns an empty sub_lineages when nothing in the
/// group can still help.
Result<GroupWork> CollectGroup(const IncrementProblem& problem,
                               const ConfidenceState& global,
                               const PartitionGroup& group, bool respect_deficit) {
  GroupWork work;
  std::vector<uint32_t> query_remap(problem.num_queries(), UINT32_MAX);
  for (uint32_t r : group.results) {
    uint32_t q = problem.query_of_result(r);
    if (respect_deficit && global.Deficit(q) == 0) continue;
    if (ClearsThreshold(global.result_confidence(r), problem.beta())) continue;
    if (query_remap[q] == UINT32_MAX) {
      query_remap[q] = static_cast<uint32_t>(work.sub_queries_orig.size());
      work.sub_queries_orig.push_back(q);
      work.sub_available.push_back(0);
    }
    work.sub_lineages.push_back(problem.result_lineage(r));
    work.sub_query_of.push_back(query_remap[q]);
    ++work.sub_available[query_remap[q]];
  }
  if (work.sub_lineages.empty()) return work;

  for (const LineageRef ref : work.sub_lineages) {
    for (LineageVarId id : problem.arena()->Variables(ref)) {
      PCQE_ASSIGN_OR_RETURN(size_t idx, problem.BaseIndexOf(id));
      work.sub_bases.push_back(static_cast<uint32_t>(idx));
    }
  }
  std::sort(work.sub_bases.begin(), work.sub_bases.end());
  work.sub_bases.erase(std::unique(work.sub_bases.begin(), work.sub_bases.end()),
                       work.sub_bases.end());
  return work;
}

/// Builds the sub-problem for a collected group, with each base tuple's
/// floor at its *current* global confidence.
Result<IncrementProblem> BuildSubProblem(const IncrementProblem& problem,
                                         const ConfidenceState& global,
                                         const GroupWork& work,
                                         std::vector<size_t> sub_required) {
  std::vector<BaseTupleSpec> sub_specs;
  sub_specs.reserve(work.sub_bases.size());
  for (uint32_t b : work.sub_bases) {
    BaseTupleSpec spec = problem.base(b);
    spec.confidence = global.prob(b);
    sub_specs.push_back(std::move(spec));
  }
  ProblemOptions sub_options;
  sub_options.beta = problem.beta();
  sub_options.delta = problem.delta();
  return IncrementProblem::Build(problem.arena(), work.sub_lineages, work.sub_query_of,
                                 std::move(sub_required), std::move(sub_specs),
                                 sub_options);
}

/// Folds the D&C-level budget into a greedy sub-configuration so every
/// sub-solve observes the same absolute deadline and cancel flag.
GreedyOptions WithDncBudget(GreedyOptions greedy, const DncOptions& options) {
  greedy.deadline = Deadline::Sooner(greedy.deadline, options.deadline);
  if (greedy.cancel == nullptr) greedy.cancel = options.cancel;
  return greedy;
}

/// Per-group sub-solvers always run sequentially: the group grid is the
/// parallel axis, and nested fan-out would only add queue churn.
GreedyOptions SequentialGreedy(const DncOptions& options) {
  GreedyOptions greedy = WithDncBudget(options.greedy, options);
  greedy.parallelism.threads = 1;
  return greedy;
}

struct GroupCurve {
  std::vector<uint32_t> sub_bases;
  std::vector<GreedyCheckpoint> checkpoints;
};

/// Builds one group's marginal-cost curve (greedy checkpoints toward full
/// in-group satisfaction, with the bounded exact tail replacement for small
/// groups). Reads `global` only — a pure function of (problem, global,
/// group) — so curves for many groups can be built concurrently. Returns
/// the sub-solver iteration count and accumulates the sub-solver effort
/// into `effort`; a curve with no checkpoints means the group has nothing
/// to contribute.
Result<size_t> BuildGroupCurve(const IncrementProblem& problem,
                               const ConfidenceState& global,
                               const PartitionGroup& group,
                               const DncOptions& options, GroupCurve* out,
                               SolverEffort* effort) {
  size_t iterations = 0;
  PCQE_INJECT_FAULT(fault_sites::kDncGroup);
  PCQE_ASSIGN_OR_RETURN(GroupWork work,
                        CollectGroup(problem, global, group,
                                     /*respect_deficit=*/false));
  if (work.sub_lineages.empty()) return iterations;
  // Target everything in the group; the combiner decides how much to use.
  std::vector<size_t> all(work.sub_available.begin(), work.sub_available.end());
  PCQE_ASSIGN_OR_RETURN(IncrementProblem sub,
                        BuildSubProblem(problem, global, work, std::move(all)));
  ConfidenceState sub_state(sub);
  GroupCurve curve;
  curve.sub_bases = work.sub_bases;
  iterations +=
      GreedyRaise(&sub_state, SequentialGreedy(options), &curve.checkpoints, effort);

  // Small groups: replace the full-satisfaction tail with the exact
  // search, seeded by the greedy incumbent (Figure 10's bounded
  // heuristic refinement).
  if (options.tau > 0 && sub.num_base_tuples() < options.tau && sub.is_monotone() &&
      !curve.checkpoints.empty() && sub_state.Feasible()) {
    HeuristicOptions h;
    h.initial_upper_bound = sub_state.total_cost();
    h.max_nodes = options.heuristic_max_nodes;
    h.max_seconds = options.heuristic_max_seconds;
    h.deadline = options.deadline;
    h.cancel = options.cancel;
    h.parallelism.threads = 1;
    PCQE_ASSIGN_OR_RETURN(IncrementSolution exact, SolveHeuristic(sub, h));
    iterations += exact.nodes_explored;
    effort->MergeFrom(exact.effort);
    GreedyCheckpoint& tail = curve.checkpoints.back();
    if (exact.feasible && exact.total_cost < tail.cost - kEpsilon) {
      tail.cost = exact.total_cost;
      tail.raised.clear();
      for (size_t i = 0; i < exact.new_confidence.size(); ++i) {
        if (exact.new_confidence[i] > sub.base(i).confidence + kEpsilon) {
          tail.raised.emplace_back(i, exact.new_confidence[i]);
        }
      }
    }
  }
  if (!curve.checkpoints.empty()) *out = std::move(curve);
  return iterations;
}

/// Single-query path: build a marginal-cost curve per group (greedy
/// checkpoints toward full in-group satisfaction), then buy satisfactions
/// from the curves cheapest-rate-first until the deficit is covered. This
/// is the "combine the result in a greedy way" step with global cost
/// awareness: expensive results in cheap groups are *not* forced.
///
/// The global state is read-only until the accepted prefixes are applied,
/// so the curve builds fan out over groups; each curve lands in its own
/// slot — effort counters included — and is consumed in group order, making
/// the combine, the final assignment, and the counters identical to the
/// sequential pass.
Result<size_t> SolveSingleQuery(const IncrementProblem& problem, ConfidenceState* global,
                                const std::vector<PartitionGroup>& groups,
                                const DncOptions& options, SolverEffort* effort,
                                SolveControl* control) {
  // Phase-boundary poll; the per-group curve builds observe the budget
  // internally via their greedy/heuristic options.
  if (control->StopNow()) return static_cast<size_t>(0);
  std::vector<GroupCurve> built(groups.size());
  std::vector<size_t> built_iterations(groups.size(), 0);
  std::vector<SolverEffort> built_effort(groups.size());
  std::vector<Status> built_status(groups.size());
  const ConfidenceState& frozen = *global;
  ParallelFor(options.parallelism, groups.size(), [&](size_t g) {
    Result<size_t> r = BuildGroupCurve(problem, frozen, groups[g], options, &built[g],
                                       &built_effort[g]);
    if (r.ok()) {
      built_iterations[g] = *r;
    } else {
      built_status[g] = r.status();
    }
  });

  size_t iterations = 0;
  std::vector<GroupCurve> curves;
  curves.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!built_status[g].ok()) return built_status[g];
    iterations += built_iterations[g];
    effort->MergeFrom(built_effort[g]);
    if (!built[g].checkpoints.empty()) curves.push_back(std::move(built[g]));
  }

  // Buy checkpoint packages cheapest-rate-first until the deficit closes.
  struct Package {
    double rate;  // marginal cost per newly satisfied result
    size_t curve;
    size_t index;  // checkpoint index this package advances to
    bool operator<(const Package& other) const { return rate > other.rate; }
  };
  std::priority_queue<Package> queue;
  auto package_for = [&](size_t c, size_t index) -> Package {
    const std::vector<GreedyCheckpoint>& cps = curves[c].checkpoints;
    double prev_cost = index == 0 ? 0.0 : cps[index - 1].cost;
    size_t prev_sat = index == 0 ? 0 : cps[index - 1].satisfied;
    size_t gained = cps[index].satisfied - prev_sat;
    double rate = gained == 0 ? std::numeric_limits<double>::infinity()
                              : (cps[index].cost - prev_cost) / static_cast<double>(gained);
    return {rate, c, index};
  };
  for (size_t c = 0; c < curves.size(); ++c) queue.push(package_for(c, 0));

  size_t bought = 0;
  size_t deficit = global->Deficit(0);
  std::vector<size_t> accepted(curves.size(), 0);  // #checkpoints taken per curve
  while (bought < deficit && !queue.empty()) {
    Package p = queue.top();
    queue.pop();
    const std::vector<GreedyCheckpoint>& cps = curves[p.curve].checkpoints;
    size_t prev_sat = p.index == 0 ? 0 : cps[p.index - 1].satisfied;
    bought += cps[p.index].satisfied - prev_sat;
    accepted[p.curve] = p.index + 1;
    if (p.index + 1 < cps.size()) queue.push(package_for(p.curve, p.index + 1));
  }

  // Apply the accepted prefixes to the global state (max-combine; sub
  // floors equal the global state, so the new value is the max).
  for (size_t c = 0; c < curves.size(); ++c) {
    if (accepted[c] == 0) continue;
    ++effort->dnc_groups_solved;
    const GreedyCheckpoint& cp = curves[c].checkpoints[accepted[c] - 1];
    for (const auto& [sub_idx, value] : cp.raised) {
      uint32_t global_idx = curves[c].sub_bases[sub_idx];
      if (value > global->prob(global_idx) + kEpsilon) {
        global->SetProb(global_idx, value);
      }
    }
  }
  return iterations;
}

/// One group's sub-solve against a frozen view of the global state (the
/// live state in the sequential path, a wave snapshot in the parallel one).
struct GroupSolve {
  bool skip = true;  ///< nothing in the group can still help
  GroupWork work;
  IncrementSolution solution;
  size_t iterations = 0;
  SolverEffort effort;  ///< sub-solver effort (greedy + bounded exact tail)
};

Result<GroupSolve> SolveOneGroup(const IncrementProblem& problem,
                                 const ConfidenceState& view,
                                 const PartitionGroup& group,
                                 const DncOptions& options) {
  GroupSolve out;
  PCQE_INJECT_FAULT(fault_sites::kDncGroup);
  PCQE_ASSIGN_OR_RETURN(GroupWork work,
                        CollectGroup(problem, view, group,
                                     /*respect_deficit=*/true));
  if (work.sub_lineages.empty()) return out;

  std::vector<size_t> sub_required(work.sub_queries_orig.size());
  for (size_t cq = 0; cq < work.sub_queries_orig.size(); ++cq) {
    sub_required[cq] =
        std::min(view.Deficit(work.sub_queries_orig[cq]), work.sub_available[cq]);
  }
  PCQE_ASSIGN_OR_RETURN(IncrementProblem sub,
                        BuildSubProblem(problem, view, work, std::move(sub_required)));

  PCQE_ASSIGN_OR_RETURN(IncrementSolution sub_solution,
                        SolveGreedy(sub, SequentialGreedy(options)));
  out.iterations += sub_solution.nodes_explored;
  out.effort.MergeFrom(sub_solution.effort);

  if (options.tau > 0 && sub.num_base_tuples() < options.tau && sub.is_monotone()) {
    HeuristicOptions h;
    h.initial_upper_bound = sub_solution.total_cost;
    h.initial_assignment = sub_solution.new_confidence;
    h.max_nodes = options.heuristic_max_nodes;
    h.max_seconds = options.heuristic_max_seconds;
    h.deadline = options.deadline;
    h.cancel = options.cancel;
    h.parallelism.threads = 1;
    PCQE_ASSIGN_OR_RETURN(IncrementSolution exact, SolveHeuristic(sub, h));
    out.iterations += exact.nodes_explored;
    out.effort.MergeFrom(exact.effort);
    bool better = (exact.feasible && !sub_solution.feasible) ||
                  (exact.feasible == sub_solution.feasible &&
                   exact.total_cost < sub_solution.total_cost - kEpsilon);
    if (better) sub_solution = std::move(exact);
  }

  out.skip = false;
  out.work = std::move(work);
  out.solution = std::move(sub_solution);
  return out;
}

/// Max-combines a sub-solution into the global state (sub floors equal the
/// view the group was solved against, so the new value is the max).
void ApplyGroupSolution(ConfidenceState* global, const GroupSolve& solve) {
  for (size_t sb = 0; sb < solve.work.sub_bases.size(); ++sb) {
    double v = solve.solution.new_confidence[sb];
    if (v > global->prob(solve.work.sub_bases[sb]) + kEpsilon) {
      global->SetProb(solve.work.sub_bases[sb], v);
    }
  }
}

/// Everything a group's sub-solve reads from the global state: the probs of
/// its base tuples (which also determine its results' confidences) and the
/// deficits of its results' queries. When none of those moved since
/// `snapshot`, a solve against the snapshot is byte-identical to one
/// against the live state — the speculation can be applied as-is.
bool GroupViewUnchanged(const IncrementProblem& problem, const PartitionGroup& group,
                        const ConfidenceState& snapshot,
                        const ConfidenceState& global) {
  for (uint32_t b : group.base_tuples) {
    if (global.prob(b) != snapshot.prob(b)) return false;
  }
  for (uint32_t r : group.results) {
    uint32_t q = problem.query_of_result(r);
    if (global.Deficit(q) != snapshot.Deficit(q)) return false;
  }
  return true;
}

/// Multi-query path: paper-style sequential fill (each group satisfies as
/// much of the remaining per-query deficits as it can), processed in
/// fixed-width waves of `kDncWaveWidth` groups.
///
/// Parallel lanes speculate: a wave of groups is solved concurrently
/// against one snapshot of the global state, then applied in group order.
/// Groups whose view the earlier applies invalidated (a shared base tuple
/// on a group boundary, or a deficit another group just covered) are
/// re-solved inline against the live state, so the applied sequence — and
/// the iteration count — is exactly the sequential one. A single lane
/// solves each group against the live state directly, but still takes the
/// wave-start snapshot and counts the same invalidations (a live solve of
/// an unchanged-view group is byte-identical to the speculative one, and an
/// invalidated group's live solve is exactly the parallel path's redo), so
/// every `SolverEffort` counter matches at any lane count.
Result<size_t> SolveMultiQuery(const IncrementProblem& problem, ConfidenceState* global,
                               const std::vector<PartitionGroup>& groups,
                               const DncOptions& options, SolverEffort* effort,
                               SolveControl* control) {
  size_t iterations = 0;
  const size_t lanes = options.parallelism.Resolve();
  size_t g = 0;
  while (g < groups.size()) {
    if (global->Feasible()) break;
    // Wave-boundary poll: the merged state so far is the anytime result.
    if (control->StopNow()) break;

    const size_t wave_end = std::min(g + kDncWaveWidth, groups.size());
    const size_t wave_size = wave_end - g;
    ++effort->dnc_waves;
    const ConfidenceState snapshot = *global;

    if (lanes <= 1) {
      for (size_t w = 0; w < wave_size; ++w, ++g) {
        if (global->Feasible()) return iterations;
        if (!GroupViewUnchanged(problem, groups[g], snapshot, *global)) {
          ++effort->dnc_invalidations;
        }
        PCQE_ASSIGN_OR_RETURN(GroupSolve solve,
                              SolveOneGroup(problem, *global, groups[g], options));
        iterations += solve.iterations;
        effort->MergeFrom(solve.effort);
        if (!solve.skip) {
          ++effort->dnc_groups_solved;
          ApplyGroupSolution(global, solve);
        }
      }
      continue;
    }

    std::vector<GroupSolve> wave(wave_size);
    std::vector<Status> wave_status(wave_size);
    ParallelFor(options.parallelism, wave_size, [&](size_t w) {
      Result<GroupSolve> r = SolveOneGroup(problem, snapshot, groups[g + w], options);
      if (r.ok()) {
        wave[w] = std::move(*r);
      } else {
        wave_status[w] = r.status();
      }
    });

    for (size_t w = 0; w < wave_size; ++w, ++g) {
      if (global->Feasible()) return iterations;
      if (!wave_status[w].ok()) return wave_status[w];
      if (GroupViewUnchanged(problem, groups[g], snapshot, *global)) {
        iterations += wave[w].iterations;
        effort->MergeFrom(wave[w].effort);
        if (!wave[w].skip) {
          ++effort->dnc_groups_solved;
          ApplyGroupSolution(global, wave[w]);
        }
      } else {
        // Speculation invalidated by an earlier apply in this wave; the
        // wasted lane is not counted — redo against the live state, which
        // is what the sequential fill would have computed here.
        ++effort->dnc_invalidations;
        PCQE_ASSIGN_OR_RETURN(GroupSolve redo,
                              SolveOneGroup(problem, *global, groups[g], options));
        iterations += redo.iterations;
        effort->MergeFrom(redo.effort);
        if (!redo.skip) {
          ++effort->dnc_groups_solved;
          ApplyGroupSolution(global, redo);
        }
      }
    }
  }
  return iterations;
}

}  // namespace

Result<IncrementSolution> SolveDnc(const IncrementProblem& problem,
                                   const DncOptions& options) {
  Stopwatch timer;
  SolveControl control(options.deadline, options.cancel,
                       fault_sites::kDncDeadline);
  ConfidenceState global(problem);
  size_t total_iterations = 0;
  SolverEffort effort;

  // Deadline-bounded greedy priming (the engine's pressure path, pulled into
  // the solver so a *bare* kDnc request gets it too): under a finite budget
  // the fill can be cut off mid-raise, and the merged partial may then be
  // infeasible even though a feasible plan was within easy reach. Run the
  // whole-problem greedy pass first — it observes the same absolute deadline
  // — and keep a feasible result as the incumbent to fall back on. Gated on
  // a finite deadline so un-deadlined solves (including the recorded
  // micro_parallel cost/effort baselines and injected-expiry replays, which
  // run without a real deadline) stay byte-identical.
  std::optional<IncrementSolution> incumbent;
  if (!options.deadline.infinite() && !global.Feasible()) {
    GreedyOptions primer = WithDncBudget(options.greedy, options);
    primer.parallelism = options.parallelism;
    PCQE_ASSIGN_OR_RETURN(IncrementSolution primed, SolveGreedy(problem, primer));
    total_iterations += primed.nodes_explored;
    effort.MergeFrom(primed.effort);
    if (primed.feasible) incumbent = std::move(primed);
  }

  if (!global.Feasible()) {
    std::vector<PartitionGroup> groups = PartitionResults(problem, options.partition);

    Result<size_t> solved =
        problem.num_queries() == 1 && problem.is_monotone()
            ? SolveSingleQuery(problem, &global, groups, options, &effort, &control)
            : SolveMultiQuery(problem, &global, groups, options, &effort, &control);
    if (!solved.ok()) return solved.status();
    total_iterations += *solved;

    // Top-up: per-group curves can leave a residual deficit (a group's
    // greedy stalled, or rounding in package sizes); close it globally.
    if (!global.Feasible() && !control.StopNow()) {
      GreedyOptions top_up = WithDncBudget(options.greedy, options);
      top_up.parallelism = options.parallelism;
      size_t top_up_iterations = GreedyRaise(&global, top_up);
      total_iterations += top_up_iterations;
      effort.dnc_topup_iterations += top_up_iterations;
    }

    // Global refinement over the combined assignment (phase-2 style).
    if (!control.stopped()) {
      effort.greedy_phase2_steps +=
          RefineDown(&global, options.greedy.gain_mode, &control);
    }
  }

  IncrementSolution out = MakeSolution(global, "dnc");
  out.nodes_explored = total_iterations;
  out.effort = effort;
  out.solve_seconds = timer.ElapsedSeconds();
  // Final poll: a budget that expired anywhere — including inside a group's
  // greedy/exact sub-solve, which shares the same absolute deadline — tags
  // the merged result partial. This is deliberately the last probe of the
  // solve, so tests can position an injected expiry at the very end.
  if (control.StopNow()) {
    out.stop = DncStopFrom(control.cause());
    out.partial = true;
    out.search_complete = false;
    // A stopped fill that never reached feasibility loses to the greedy
    // incumbent: return the feasible plan (still tagged partial — it makes
    // no optimality claim) instead of the infeasible merged state.
    if (!out.feasible && incumbent.has_value()) {
      IncrementSolution fallback = std::move(*incumbent);
      fallback.algorithm = out.algorithm;
      fallback.nodes_explored = total_iterations;
      fallback.effort = effort;
      fallback.solve_seconds = timer.ElapsedSeconds();
      fallback.stop = out.stop;
      fallback.partial = true;
      fallback.search_complete = false;
      return fallback;
    }
  }
  return out;
}

}  // namespace pcqe
