#include "strategy/heuristic.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace pcqe {

namespace {

/// costβ against a caller-owned scratch vector holding the problem's current
/// initial probabilities. Only `scratch[base_index]` is written, and it is
/// restored before returning, so one scratch serves a whole chunk of tuples
/// without the per-call `InitialProbs()` copy.
double CostBetaScratch(const IncrementProblem& problem, size_t base_index,
                       std::vector<double>* scratch) {
  const BaseTupleSpec& b = problem.base(base_index);
  std::vector<double>& probs = *scratch;
  const double initial = probs[base_index];
  size_t steps = problem.NumSteps(base_index);
  double f_max = 0.0;
  for (size_t s = 1; s <= steps; ++s) {
    double v = problem.ValueAtStep(base_index, s);
    probs[base_index] = v;
    for (uint32_t r : problem.results_of_base(base_index)) {
      double f = problem.EvalResult(r, probs);
      if (ClearsThreshold(f, problem.beta())) {
        probs[base_index] = initial;
        return b.cost->Increment(b.confidence, v);
      }
      f_max = std::max(f_max, f);
    }
  }
  probs[base_index] = initial;
  // Raising this tuple alone can never push a result over beta. The paper
  // adjusts costβ to cost / (Fmax / β), i.e. cost · β / Fmax, inflating the
  // ranking weight of tuples that get nowhere near the threshold.
  double full_cost = b.cost->Increment(b.confidence, b.max_confidence);
  if (f_max <= kEpsilon) {
    // No progress at all (e.g. tuple already at its ceiling, or every
    // result pinned at zero by another tuple): rank it last/first by an
    // effectively infinite costβ.
    return std::numeric_limits<double>::infinity();
  }
  return full_cost * problem.beta() / f_max;
}

/// Cross-worker search state for the multi-root branch and bound. One
/// instance per `SolveHeuristic` call; with a single lane it degenerates to
/// uncontended members and the search is step-for-step the sequential DFS.
struct SearchShared {
  /// Incumbent cost, read lock-free in the prune checks. Monotone
  /// non-increasing and kept in sync with the guarded record below.
  std::atomic<double> best_cost{std::numeric_limits<double>::infinity()};
  /// Nodes across all workers; doubles as the shared `max_nodes` budget.
  std::atomic<size_t> nodes{0};
  std::atomic<bool> aborted{false};

  std::mutex mu;
  std::vector<double> best_assignment;   // guarded by mu
  size_t best_root_step = SIZE_MAX;      // guarded by mu
  bool have_best = false;                // guarded by mu

  /// Offers a feasible assignment found under root step `root_step`.
  /// Strictly cheaper always wins; an epsilon-tie is won by the smaller
  /// root step, so the recorded assignment is independent of which worker
  /// got there first.
  void Offer(double cost, const std::vector<double>& assignment, size_t root_step) {
    std::scoped_lock lock(mu);
    double current = best_cost.load(std::memory_order_relaxed);
    bool improves = cost < current - kEpsilon;
    bool wins_tie = have_best && !improves && ApproxEqual(cost, current) &&
                    root_step < best_root_step;
    if (!improves && !wins_tie) return;
    if (cost < current) best_cost.store(cost, std::memory_order_relaxed);
    best_assignment = assignment;
    best_root_step = root_step;
    have_best = true;
  }
};

/// One branch-and-bound worker: owns its `ConfidenceState` (and optimistic
/// H3 state) and explores a contiguous range of the first ordered variable's
/// δ-steps, pruning against the shared incumbent.
class SearchWorker {
 public:
  SearchWorker(const IncrementProblem& problem, const HeuristicOptions& options,
               const std::vector<size_t>& order,
               const std::vector<double>& suffix_min_step, const Stopwatch& timer,
               SearchShared* shared)
      : problem_(problem),
        options_(options),
        order_(order),
        suffix_min_step_(suffix_min_step),
        timer_(timer),
        shared_(shared),
        state_(problem),
        opt_state_(problem) {
    if (options_.use_h3) {
      for (size_t i = 0; i < problem_.num_base_tuples(); ++i) {
        opt_state_.SetProb(i, problem_.base(i).max_confidence);
      }
    }
  }

  /// Explores root steps [lo, hi) of `order[0]`.
  void RunRoot(size_t lo, size_t hi) {
    if (order_.empty()) return;
    size_t var = order_[0];
    double initial = state_.prob(var);
    for (size_t s = lo; s < hi; ++s) {
      if (shared_->aborted.load(std::memory_order_relaxed)) break;
      root_step_ = s;
      if (!Visit(0, var, s)) break;
    }
    state_.SetProb(var, initial);
  }

 private:
  bool BudgetExceeded(size_t total_nodes) {
    if (total_nodes > options_.max_nodes) return true;
    // Amortize the clock read; a node is microseconds.
    if (options_.max_seconds > 0.0 && (total_nodes & 0x3FF) == 0 &&
        timer_.ElapsedSeconds() > options_.max_seconds) {
      return true;
    }
    return false;
  }

  /// One (tuple, value) node: count it, set the value, prune/record/recurse.
  /// Returns false when the sibling loop at this depth should stop.
  bool Visit(size_t depth, size_t var, size_t s) {
    size_t total = shared_->nodes.fetch_add(1, std::memory_order_relaxed) + 1;
    if (BudgetExceeded(total)) {
      shared_->aborted.store(true, std::memory_order_relaxed);
      return false;
    }
    double value = problem_.ValueAtStep(var, s);
    state_.SetProb(var, value);
    if (options_.use_h3) opt_state_.SetProb(var, value);

    // Incumbent bound: values only grow along the sibling axis, so the
    // whole remaining value range is pruned together. The bound may have
    // been lowered by any worker — prunes propagate across lanes.
    double bound = shared_->best_cost.load(std::memory_order_relaxed);
    if (state_.total_cost() >= bound - kEpsilon) return false;

    if (state_.Feasible()) {
      // Monotone problem: any further increment (deeper or higher
      // sibling) only adds cost.
      shared_->Offer(state_.total_cost(), state_.probs(), root_step_);
      return false;
    }

    bool recurse = depth + 1 < order_.size();

    // H3: optimistic completion (remaining tuples at their ceilings)
    // still infeasible -> nothing below this node can succeed. Higher
    // values of the current tuple may still help, so continue siblings.
    if (recurse && options_.use_h3 && !opt_state_.Feasible()) {
      recurse = false;
    }

    // H4: the current spend plus the cheapest possible single δ-step on
    // any *remaining* tuple already busts the incumbent, so no descendant
    // can win. Siblings are not covered (their extra spend is on the
    // current tuple, which is not in the suffix), so only recursion is
    // pruned.
    if (recurse && options_.use_h4 && std::isfinite(suffix_min_step_[depth + 1]) &&
        state_.total_cost() + suffix_min_step_[depth + 1] >= bound - kEpsilon) {
      recurse = false;
    }

    if (recurse) Dfs(depth + 1);

    // H2: every result this tuple touches is already above beta; raising
    // it further cannot help any unsatisfied result.
    if (options_.use_h2) {
      bool all_satisfied = true;
      for (uint32_t r : problem_.results_of_base(var)) {
        if (!ClearsThreshold(state_.result_confidence(r), problem_.beta())) {
          all_satisfied = false;
          break;
        }
      }
      if (all_satisfied) return false;
    }
    return true;
  }

  void Dfs(size_t depth) {  // NOLINT(misc-no-recursion)
    if (depth >= order_.size() || shared_->aborted.load(std::memory_order_relaxed)) {
      return;
    }
    size_t var = order_[depth];
    double initial = state_.prob(var);
    double ceiling = problem_.base(var).max_confidence;
    size_t steps = problem_.NumSteps(var);

    for (size_t s = 0; s <= steps; ++s) {
      if (!Visit(depth, var, s)) break;
    }

    state_.SetProb(var, initial);
    if (options_.use_h3) opt_state_.SetProb(var, ceiling);
  }

  const IncrementProblem& problem_;
  const HeuristicOptions& options_;
  const std::vector<size_t>& order_;
  const std::vector<double>& suffix_min_step_;
  const Stopwatch& timer_;
  SearchShared* shared_;
  ConfidenceState state_;
  ConfidenceState opt_state_;
  size_t root_step_ = 0;
};

}  // namespace

double CostBeta(const IncrementProblem& problem, size_t base_index) {
  std::vector<double> probs = problem.InitialProbs();
  return CostBetaScratch(problem, base_index, &probs);
}

Result<IncrementSolution> SolveHeuristic(const IncrementProblem& problem,
                                         const HeuristicOptions& options) {
  Stopwatch timer;
  if (!problem.is_monotone()) {
    return Status::InvalidArgument(
        "heuristic solver requires a monotone problem (no negation in lineage); "
        "use the greedy solver as a best-effort fallback");
  }

  // H1 (or natural) variable ordering. costβ of each tuple is independent of
  // every other, so the precompute fans out in chunks, one scratch each.
  std::vector<size_t> order(problem.num_base_tuples());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.use_h1_ordering) {
    std::vector<double> cost_beta(order.size());
    ParallelForChunks(options.parallelism, order.size(),
                      [&](size_t, size_t lo, size_t hi) {
                        std::vector<double> scratch = problem.InitialProbs();
                        for (size_t i = lo; i < hi; ++i) {
                          cost_beta[i] = CostBetaScratch(problem, i, &scratch);
                        }
                      });
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cost_beta[a] > cost_beta[b];
    });
  }

  // Cheapest single δ-step per tuple (a valid lower bound on any further
  // spend), plus suffix minima in search order for H4.
  std::vector<double> min_step_cost(problem.num_base_tuples(),
                                    std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < problem.num_base_tuples(); ++i) {
    size_t steps = problem.NumSteps(i);
    double prev_level = problem.CostLevel(i, problem.ValueAtStep(i, 0));
    for (size_t s = 1; s <= steps; ++s) {
      double level = problem.CostLevel(i, problem.ValueAtStep(i, s));
      min_step_cost[i] = std::min(min_step_cost[i], level - prev_level);
      prev_level = level;
    }
  }
  std::vector<double> suffix_min_step(order.size() + 1,
                                      std::numeric_limits<double>::infinity());
  for (size_t d = order.size(); d-- > 0;) {
    suffix_min_step[d] = std::min(suffix_min_step[d + 1], min_step_cost[order[d]]);
  }

  ConfidenceState initial_state(problem);
  if (initial_state.Feasible()) {
    // Already satisfied with no spend.
    IncrementSolution out = MakeSolution(initial_state, "heuristic");
    out.solve_seconds = timer.ElapsedSeconds();
    return out;
  }
  {
    // Global feasibility check: everything at its ceiling.
    ConfidenceState ceiling_state(problem);
    for (size_t i = 0; i < problem.num_base_tuples(); ++i) {
      ceiling_state.SetProb(i, problem.base(i).max_confidence);
    }
    if (!ceiling_state.Feasible()) {
      // Infeasible even at every ceiling: report the do-nothing assignment.
      IncrementSolution out = MakeSolution(initial_state, "heuristic");
      out.solve_seconds = timer.ElapsedSeconds();
      return out;
    }
  }

  SearchShared shared;
  shared.best_cost.store(options.initial_upper_bound.value_or(
      std::numeric_limits<double>::infinity()));

  // Multi-root search: split the first ordered variable's δ-range into
  // contiguous blocks, one worker each. A single lane covers the whole
  // range and explores exactly the sequential tree.
  size_t root_values = order.empty() ? 0 : problem.NumSteps(order[0]) + 1;
  size_t lanes = std::min(options.parallelism.Resolve(), root_values);
  if (lanes <= 1) {
    SearchWorker worker(problem, options, order, suffix_min_step, timer, &shared);
    worker.RunRoot(0, root_values);
  } else {
    SolverParallelism root_lanes{lanes};
    ParallelForChunks(root_lanes, root_values, [&](size_t, size_t lo, size_t hi) {
      SearchWorker worker(problem, options, order, suffix_min_step, timer, &shared);
      worker.RunRoot(lo, hi);
    });
  }

  // All workers have joined; the shared record needs no lock from here.
  IncrementSolution out;
  if (shared.have_best) {
    // Rebuild the winning state to produce exact bookkeeping.
    ConfidenceState final_state(problem);
    for (size_t i = 0; i < shared.best_assignment.size(); ++i) {
      final_state.SetProb(i, shared.best_assignment[i]);
    }
    out = MakeSolution(final_state, "heuristic");
  } else if (options.initial_assignment.has_value() &&
             std::isfinite(shared.best_cost.load())) {
    // The externally supplied incumbent was never beaten; return it.
    ConfidenceState final_state(problem);
    for (size_t i = 0; i < options.initial_assignment->size(); ++i) {
      final_state.SetProb(i, (*options.initial_assignment)[i]);
    }
    out = MakeSolution(final_state, "heuristic");
  } else {
    out = MakeSolution(initial_state, "heuristic");  // infeasible best effort
  }
  out.nodes_explored = shared.nodes.load();
  out.solve_seconds = timer.ElapsedSeconds();
  out.search_complete = !shared.aborted.load();
  return out;
}

}  // namespace pcqe
