#include "strategy/heuristic.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace pcqe {

namespace {

/// costβ against a caller-owned scratch vector holding the problem's current
/// initial probabilities. Only `scratch[base_index]` is written, and it is
/// restored before returning, so one scratch serves a whole chunk of tuples
/// without the per-call `InitialProbs()` copy.
double CostBetaScratch(const IncrementProblem& problem, size_t base_index,
                       std::vector<double>* scratch) {
  const BaseTupleSpec& b = problem.base(base_index);
  std::vector<double>& probs = *scratch;
  const double initial = probs[base_index];
  size_t steps = problem.NumSteps(base_index);
  double f_max = 0.0;
  for (size_t s = 1; s <= steps; ++s) {
    double v = problem.ValueAtStep(base_index, s);
    probs[base_index] = v;
    for (uint32_t r : problem.results_of_base(base_index)) {
      double f = problem.EvalResult(r, probs);
      if (ClearsThreshold(f, problem.beta())) {
        probs[base_index] = initial;
        return b.cost->Increment(b.confidence, v);
      }
      f_max = std::max(f_max, f);
    }
  }
  probs[base_index] = initial;
  // Raising this tuple alone can never push a result over beta. The paper
  // adjusts costβ to cost / (Fmax / β), i.e. cost · β / Fmax, inflating the
  // ranking weight of tuples that get nowhere near the threshold.
  double full_cost = b.cost->Increment(b.confidence, b.max_confidence);
  if (f_max <= kEpsilon) {
    // No progress at all (e.g. tuple already at its ceiling, or every
    // result pinned at zero by another tuple): rank it last/first by an
    // effectively infinite costβ.
    return std::numeric_limits<double>::infinity();
  }
  return full_cost * problem.beta() / f_max;
}

/// The only cross-lane state of the wave search: the node budget and the
/// stop latch. Everything that affects the *result* (bounds, incumbents,
/// counters) is unit-local and combined at wave barriers in root-step
/// order, so the search is deterministic at any lane count.
struct SearchBudget {
  std::atomic<size_t> nodes{0};
  /// First stop cause wins (a `SolveStop` value; 0 = still running).
  std::atomic<uint8_t> stop{0};

  void RecordStop(SolveStop cause) {
    uint8_t expected = 0;
    stop.compare_exchange_strong(expected, static_cast<uint8_t>(cause),
                                 std::memory_order_relaxed);
  }
  bool stopped() const { return stop.load(std::memory_order_relaxed) != 0; }
};

SolveStop FromStopCause(StopCause cause) {
  return cause == StopCause::kCancelled ? SolveStop::kCancelled
                                        : SolveStop::kDeadline;
}

/// Outcome of exploring one root step (one wave unit).
struct UnitResult {
  std::vector<double> best_assignment;
  double best_cost = std::numeric_limits<double>::infinity();
  bool have_best = false;
  /// The root-level sibling loop asked to stop (bound prune, feasible leaf,
  /// or H2): higher root steps would not have been explored sequentially.
  bool stop_after = false;
  SolverEffort effort;
};

/// One branch-and-bound unit: owns its `ConfidenceState` (and optimistic H3
/// state) and explores a single root step of the first ordered variable
/// against a bound fixed at the wave start, recording a local incumbent and
/// plain-integer effort counters.
class SearchWorker {
 public:
  SearchWorker(const IncrementProblem& problem, const HeuristicOptions& options,
               const std::vector<size_t>& order,
               const std::vector<double>& suffix_min_step, SolveControl* control,
               SearchBudget* budget, double wave_bound)
      : problem_(problem),
        options_(options),
        order_(order),
        suffix_min_step_(suffix_min_step),
        control_(control),
        budget_(budget),
        bound_(wave_bound),
        state_(problem),
        opt_state_(problem) {
    if (options_.use_h3) {
      for (size_t i = 0; i < problem_.num_base_tuples(); ++i) {
        opt_state_.SetProb(i, problem_.base(i).max_confidence);
      }
    }
  }

  /// Explores root step `s` of `order[0]` and returns the unit outcome.
  UnitResult RunRootStep(size_t s) {
    if (!order_.empty()) {
      size_t var = order_[0];
      double initial = state_.prob(var);
      result_.stop_after = !Visit(0, var, s);
      state_.SetProb(var, initial);
    }
    return std::move(result_);
  }

 private:
  /// kComplete when the search may continue; the stop cause otherwise.
  SolveStop BudgetCheck(size_t total_nodes) {
    if (total_nodes > options_.max_nodes) return SolveStop::kNodeBudget;
    // Amortize the deadline/cancel poll; a node is microseconds, so the
    // budget is observed within ~1024 shared node expansions at any lane
    // count (plus the wave-boundary check in SolveHeuristic).
    if ((total_nodes & 0x3FF) == 0 && control_->StopNow()) {
      return FromStopCause(control_->cause());
    }
    return SolveStop::kComplete;
  }

  /// One (tuple, value) node: count it, set the value, prune/record/recurse.
  /// Returns false when the sibling loop at this depth should stop.
  bool Visit(size_t depth, size_t var, size_t s) {
    ++result_.effort.nodes_expanded;
    size_t total = budget_->nodes.fetch_add(1, std::memory_order_relaxed) + 1;
    if (SolveStop stop = BudgetCheck(total); stop != SolveStop::kComplete) {
      budget_->RecordStop(stop);
      return false;
    }
    double value = problem_.ValueAtStep(var, s);
    state_.SetProb(var, value);
    if (options_.use_h3) opt_state_.SetProb(var, value);

    // Incumbent bound: values only grow along the sibling axis, so the
    // whole remaining value range is pruned together. `bound_` is the wave
    // bound lowered by this unit's own incumbents — never another lane's,
    // which is what keeps the explored tree lane-count-independent.
    if (state_.total_cost() >= bound_ - kEpsilon) {
      ++result_.effort.incumbent_prunes;
      return false;
    }

    if (state_.Feasible()) {
      // Monotone problem: any further increment (deeper or higher
      // sibling) only adds cost. The check above proved it beats the
      // current local bound.
      ++result_.effort.incumbent_updates;
      result_.best_cost = state_.total_cost();
      result_.best_assignment = state_.probs();
      result_.have_best = true;
      bound_ = result_.best_cost;
      return false;
    }

    bool recurse = depth + 1 < order_.size();

    // H3: optimistic completion (remaining tuples at their ceilings)
    // still infeasible -> nothing below this node can succeed. Higher
    // values of the current tuple may still help, so continue siblings.
    if (recurse && options_.use_h3 && !opt_state_.Feasible()) {
      ++result_.effort.h3_prunes;
      recurse = false;
    }

    // H4: the current spend plus the cheapest possible single δ-step on
    // any *remaining* tuple already busts the incumbent, so no descendant
    // can win. Siblings are not covered (their extra spend is on the
    // current tuple, which is not in the suffix), so only recursion is
    // pruned.
    if (recurse && options_.use_h4 && std::isfinite(suffix_min_step_[depth + 1]) &&
        state_.total_cost() + suffix_min_step_[depth + 1] >= bound_ - kEpsilon) {
      ++result_.effort.h4_prunes;
      recurse = false;
    }

    if (recurse) Dfs(depth + 1);

    // H2: every result this tuple touches is already above beta; raising
    // it further cannot help any unsatisfied result.
    if (options_.use_h2) {
      bool all_satisfied = true;
      for (uint32_t r : problem_.results_of_base(var)) {
        if (!ClearsThreshold(state_.result_confidence(r), problem_.beta())) {
          all_satisfied = false;
          break;
        }
      }
      if (all_satisfied) {
        ++result_.effort.h2_prunes;
        return false;
      }
    }
    return true;
  }

  void Dfs(size_t depth) {  // NOLINT(misc-no-recursion)
    if (depth >= order_.size() || budget_->stopped()) {
      return;
    }
    size_t var = order_[depth];
    double initial = state_.prob(var);
    double ceiling = problem_.base(var).max_confidence;
    size_t steps = problem_.NumSteps(var);

    for (size_t s = 0; s <= steps; ++s) {
      if (!Visit(depth, var, s)) break;
    }

    state_.SetProb(var, initial);
    if (options_.use_h3) opt_state_.SetProb(var, ceiling);
  }

  const IncrementProblem& problem_;
  const HeuristicOptions& options_;
  const std::vector<size_t>& order_;
  const std::vector<double>& suffix_min_step_;
  SolveControl* control_;
  SearchBudget* budget_;
  double bound_;  ///< unit-local incumbent bound (starts at the wave bound)
  ConfidenceState state_;
  ConfidenceState opt_state_;
  UnitResult result_;
};

}  // namespace

double CostBeta(const IncrementProblem& problem, size_t base_index) {
  std::vector<double> probs = problem.InitialProbs();
  return CostBetaScratch(problem, base_index, &probs);
}

Result<IncrementSolution> SolveHeuristic(const IncrementProblem& problem,
                                         const HeuristicOptions& options) {
  Stopwatch timer;
  // Fold the legacy relative budget into the absolute deadline so both run
  // through the same poll points.
  Deadline budget_deadline = options.deadline;
  if (options.max_seconds > 0.0) {
    budget_deadline = Deadline::Sooner(budget_deadline,
                                       Deadline::AfterSeconds(options.max_seconds));
  }
  SolveControl control(budget_deadline, options.cancel,
                       fault_sites::kHeuristicDeadline);
  if (!problem.is_monotone()) {
    return Status::InvalidArgument(
        "heuristic solver requires a monotone problem (no negation in lineage); "
        "use the greedy solver as a best-effort fallback");
  }

  // H1 (or natural) variable ordering. costβ of each tuple is independent of
  // every other, so the precompute fans out in chunks, one scratch each.
  std::vector<size_t> order(problem.num_base_tuples());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.use_h1_ordering) {
    std::vector<double> cost_beta(order.size());
    ParallelForChunks(options.parallelism, order.size(),
                      [&](size_t, size_t lo, size_t hi) {
                        std::vector<double> scratch = problem.InitialProbs();
                        for (size_t i = lo; i < hi; ++i) {
                          cost_beta[i] = CostBetaScratch(problem, i, &scratch);
                        }
                      });
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cost_beta[a] > cost_beta[b];
    });
  }

  // Cheapest single δ-step per tuple (a valid lower bound on any further
  // spend), plus suffix minima in search order for H4.
  std::vector<double> min_step_cost(problem.num_base_tuples(),
                                    std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < problem.num_base_tuples(); ++i) {
    size_t steps = problem.NumSteps(i);
    double prev_level = problem.CostLevel(i, problem.ValueAtStep(i, 0));
    for (size_t s = 1; s <= steps; ++s) {
      double level = problem.CostLevel(i, problem.ValueAtStep(i, s));
      min_step_cost[i] = std::min(min_step_cost[i], level - prev_level);
      prev_level = level;
    }
  }
  std::vector<double> suffix_min_step(order.size() + 1,
                                      std::numeric_limits<double>::infinity());
  for (size_t d = order.size(); d-- > 0;) {
    suffix_min_step[d] = std::min(suffix_min_step[d + 1], min_step_cost[order[d]]);
  }

  ConfidenceState initial_state(problem);
  if (initial_state.Feasible()) {
    // Already satisfied with no spend.
    IncrementSolution out = MakeSolution(initial_state, "heuristic");
    out.solve_seconds = timer.ElapsedSeconds();
    return out;
  }
  {
    // Global feasibility check: everything at its ceiling.
    ConfidenceState ceiling_state(problem);
    for (size_t i = 0; i < problem.num_base_tuples(); ++i) {
      ceiling_state.SetProb(i, problem.base(i).max_confidence);
    }
    if (!ceiling_state.Feasible()) {
      // Infeasible even at every ceiling: report the do-nothing assignment.
      IncrementSolution out = MakeSolution(initial_state, "heuristic");
      out.solve_seconds = timer.ElapsedSeconds();
      return out;
    }
  }

  SearchBudget budget;
  SolverEffort effort;
  if (options.use_h1_ordering) effort.costbeta_evals = order.size();

  double best_cost =
      options.initial_upper_bound.value_or(std::numeric_limits<double>::infinity());
  std::vector<double> best_assignment;
  bool have_best = false;

  // Wave search over the first ordered variable's δ-steps: each wave runs
  // `kHeuristicRootWaveWidth` independent units seeded with the incumbent
  // bound as of the wave start, then combines them in root-step order.
  // Lanes only decide how many of a wave's units run concurrently, so the
  // combined result and counters are identical at any lane count. An
  // equal-cost unit never displaces an earlier one (`improves` is strict),
  // which is the tie-break to the smallest root step.
  size_t root_values = order.empty() ? 0 : problem.NumSteps(order[0]) + 1;
  bool stopped = false;
  for (size_t wave_start = 0; wave_start < root_values && !stopped;
       wave_start += kHeuristicRootWaveWidth) {
    // Wave-boundary poll: small instances may never reach the amortized
    // per-1024-node check, and an already-expired deadline must stop the
    // search before the first expansion.
    if (control.StopNow()) {
      budget.RecordStop(FromStopCause(control.cause()));
      break;
    }
    PCQE_INJECT_FAULT(fault_sites::kHeuristicWave);
    size_t wave_size = std::min(kHeuristicRootWaveWidth, root_values - wave_start);
    std::vector<UnitResult> units(wave_size);
    double wave_bound = best_cost;
    ParallelFor(options.parallelism, wave_size, [&](size_t u) {
      SearchWorker worker(problem, options, order, suffix_min_step, &control,
                          &budget, wave_bound);
      units[u] = worker.RunRootStep(wave_start + u);
    });
    for (size_t u = 0; u < wave_size; ++u) {
      UnitResult& unit = units[u];
      effort.MergeFrom(unit.effort);
      if (unit.have_best && unit.best_cost < best_cost - kEpsilon) {
        best_cost = unit.best_cost;
        best_assignment = std::move(unit.best_assignment);
        have_best = true;
      }
      if (unit.stop_after) {
        // The sequential sibling loop would have stopped here: later units
        // of this wave are speculation whose effort is not counted, and no
        // further waves launch.
        stopped = true;
        break;
      }
    }
    if (budget.stopped()) stopped = true;
  }

  IncrementSolution out;
  if (have_best) {
    // Rebuild the winning state to produce exact bookkeeping.
    ConfidenceState final_state(problem);
    for (size_t i = 0; i < best_assignment.size(); ++i) {
      final_state.SetProb(i, best_assignment[i]);
    }
    out = MakeSolution(final_state, "heuristic");
  } else if (options.initial_assignment.has_value() && std::isfinite(best_cost)) {
    // The externally supplied incumbent was never beaten; return it.
    ConfidenceState final_state(problem);
    for (size_t i = 0; i < options.initial_assignment->size(); ++i) {
      final_state.SetProb(i, (*options.initial_assignment)[i]);
    }
    out = MakeSolution(final_state, "heuristic");
  } else {
    out = MakeSolution(initial_state, "heuristic");  // infeasible best effort
  }
  out.nodes_explored = effort.nodes_expanded;
  out.effort = effort;
  out.solve_seconds = timer.ElapsedSeconds();
  out.stop = static_cast<SolveStop>(budget.stop.load());
  out.partial = out.stop != SolveStop::kComplete;
  out.search_complete = !out.partial;
  return out;
}

}  // namespace pcqe
