#include "strategy/heuristic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace pcqe {

double CostBeta(const IncrementProblem& problem, size_t base_index) {
  const BaseTupleSpec& b = problem.base(base_index);
  std::vector<double> probs = problem.InitialProbs();
  size_t steps = problem.NumSteps(base_index);
  double f_max = 0.0;
  for (size_t s = 1; s <= steps; ++s) {
    double v = problem.ValueAtStep(base_index, s);
    probs[base_index] = v;
    for (uint32_t r : problem.results_of_base(base_index)) {
      double f = problem.EvalResult(r, probs);
      if (ClearsThreshold(f, problem.beta())) {
        return b.cost->Increment(b.confidence, v);
      }
      f_max = std::max(f_max, f);
    }
  }
  // Raising this tuple alone can never push a result over beta. The paper
  // adjusts costβ to cost / (Fmax / β), i.e. cost · β / Fmax, inflating the
  // ranking weight of tuples that get nowhere near the threshold.
  double full_cost = b.cost->Increment(b.confidence, b.max_confidence);
  if (f_max <= kEpsilon) {
    // No progress at all (e.g. tuple already at its ceiling, or every
    // result pinned at zero by another tuple): rank it last/first by an
    // effectively infinite costβ.
    return std::numeric_limits<double>::infinity();
  }
  return full_cost * problem.beta() / f_max;
}

namespace {

class HeuristicSearch {
 public:
  HeuristicSearch(const IncrementProblem& problem, const HeuristicOptions& options)
      : problem_(problem), options_(options), state_(problem), opt_state_(problem) {}

  Result<IncrementSolution> Run() {
    if (!problem_.is_monotone()) {
      return Status::InvalidArgument(
          "heuristic solver requires a monotone problem (no negation in lineage); "
          "use the greedy solver as a best-effort fallback");
    }

    // H1 (or natural) variable ordering.
    order_.resize(problem_.num_base_tuples());
    for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    if (options_.use_h1_ordering) {
      std::vector<double> cost_beta(order_.size());
      for (size_t i = 0; i < order_.size(); ++i) cost_beta[i] = CostBeta(problem_, i);
      std::stable_sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
        return cost_beta[a] > cost_beta[b];
      });
    }

    // Cheapest single δ-step per tuple (a valid lower bound on any further
    // spend), plus suffix minima in search order for H4.
    min_step_cost_.assign(problem_.num_base_tuples(),
                          std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < problem_.num_base_tuples(); ++i) {
      size_t steps = problem_.NumSteps(i);
      double prev_level = problem_.CostLevel(i, problem_.ValueAtStep(i, 0));
      for (size_t s = 1; s <= steps; ++s) {
        double level = problem_.CostLevel(i, problem_.ValueAtStep(i, s));
        min_step_cost_[i] = std::min(min_step_cost_[i], level - prev_level);
        prev_level = level;
      }
    }
    suffix_min_step_.assign(order_.size() + 1, std::numeric_limits<double>::infinity());
    for (size_t d = order_.size(); d-- > 0;) {
      suffix_min_step_[d] = std::min(suffix_min_step_[d + 1], min_step_cost_[order_[d]]);
    }

    // Optimistic state: everything at its ceiling. Doubles as the global
    // feasibility check.
    for (size_t i = 0; i < problem_.num_base_tuples(); ++i) {
      opt_state_.SetProb(i, problem_.base(i).max_confidence);
    }

    best_cost_ = options_.initial_upper_bound.value_or(
        std::numeric_limits<double>::infinity());

    IncrementSolution out;
    if (state_.Feasible()) {
      // Already satisfied with no spend.
      out = MakeSolution(state_, "heuristic");
      out.solve_seconds = timer_.ElapsedSeconds();
      return out;
    }
    if (!opt_state_.Feasible()) {
      // Infeasible even at every ceiling: report the do-nothing assignment.
      out = MakeSolution(state_, "heuristic");
      out.solve_seconds = timer_.ElapsedSeconds();
      return out;
    }

    Dfs(0);

    if (have_best_) {
      // Rebuild the winning state to produce exact bookkeeping.
      ConfidenceState final_state(problem_);
      for (size_t i = 0; i < best_assignment_.size(); ++i) {
        final_state.SetProb(i, best_assignment_[i]);
      }
      out = MakeSolution(final_state, "heuristic");
    } else if (options_.initial_assignment.has_value() &&
               std::isfinite(best_cost_)) {
      // The externally supplied incumbent was never beaten; return it.
      ConfidenceState final_state(problem_);
      for (size_t i = 0; i < options_.initial_assignment->size(); ++i) {
        final_state.SetProb(i, (*options_.initial_assignment)[i]);
      }
      out = MakeSolution(final_state, "heuristic");
    } else {
      out = MakeSolution(state_, "heuristic");  // infeasible best effort
    }
    out.nodes_explored = nodes_;
    out.solve_seconds = timer_.ElapsedSeconds();
    out.search_complete = !aborted_;
    return out;
  }

 private:
  bool BudgetExceeded() {
    if (nodes_ > options_.max_nodes) return true;
    // Amortize the clock read; a node is microseconds.
    if (options_.max_seconds > 0.0 && (nodes_ & 0x3FF) == 0 &&
        timer_.ElapsedSeconds() > options_.max_seconds) {
      return true;
    }
    return false;
  }

  void Dfs(size_t depth) {  // NOLINT(misc-no-recursion)
    if (depth >= order_.size() || aborted_) return;
    size_t var = order_[depth];
    double initial = state_.prob(var);
    double ceiling = problem_.base(var).max_confidence;
    size_t steps = problem_.NumSteps(var);

    for (size_t s = 0; s <= steps; ++s) {
      ++nodes_;
      if (BudgetExceeded()) {
        aborted_ = true;
        break;
      }
      double value = problem_.ValueAtStep(var, s);
      state_.SetProb(var, value);
      if (options_.use_h3) opt_state_.SetProb(var, value);

      // Incumbent bound: values only grow along the sibling axis, so the
      // whole remaining value range is pruned together.
      if (state_.total_cost() >= best_cost_ - kEpsilon) break;

      if (state_.Feasible()) {
        // Monotone problem: any further increment (deeper or higher
        // sibling) only adds cost.
        best_cost_ = state_.total_cost();
        best_assignment_ = state_.probs();
        have_best_ = true;
        break;
      }

      bool recurse = depth + 1 < order_.size();

      // H3: optimistic completion (remaining tuples at their ceilings)
      // still infeasible -> nothing below this node can succeed. Higher
      // values of the current tuple may still help, so continue siblings.
      if (recurse && options_.use_h3 && !opt_state_.Feasible()) {
        recurse = false;
      }

      // H4: the current spend plus the cheapest possible single δ-step on
      // any *remaining* tuple already busts the incumbent, so no descendant
      // can win. Siblings are not covered (their extra spend is on the
      // current tuple, which is not in the suffix), so only recursion is
      // pruned.
      if (recurse && options_.use_h4 && std::isfinite(suffix_min_step_[depth + 1]) &&
          state_.total_cost() + suffix_min_step_[depth + 1] >= best_cost_ - kEpsilon) {
        recurse = false;
      }

      if (recurse) Dfs(depth + 1);

      // H2: every result this tuple touches is already above beta; raising
      // it further cannot help any unsatisfied result.
      if (options_.use_h2) {
        bool all_satisfied = true;
        for (uint32_t r : problem_.results_of_base(var)) {
          if (!ClearsThreshold(state_.result_confidence(r), problem_.beta())) {
            all_satisfied = false;
            break;
          }
        }
        if (all_satisfied) break;
      }
    }

    state_.SetProb(var, initial);
    if (options_.use_h3) opt_state_.SetProb(var, ceiling);
  }

  const IncrementProblem& problem_;
  const HeuristicOptions& options_;
  ConfidenceState state_;
  ConfidenceState opt_state_;
  std::vector<size_t> order_;
  std::vector<double> min_step_cost_;
  std::vector<double> suffix_min_step_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  std::vector<double> best_assignment_;
  bool have_best_ = false;
  bool aborted_ = false;
  size_t nodes_ = 0;
  Stopwatch timer_;
};

}  // namespace

Result<IncrementSolution> SolveHeuristic(const IncrementProblem& problem,
                                         const HeuristicOptions& options) {
  HeuristicSearch search(problem, options);
  return search.Run();
}

}  // namespace pcqe
