#include "strategy/solution.h"

#include "common/string_util.h"

namespace pcqe {

std::string_view SolveStopToString(SolveStop stop) {
  switch (stop) {
    case SolveStop::kComplete: return "complete";
    case SolveStop::kNodeBudget: return "node_budget";
    case SolveStop::kDeadline: return "deadline";
    case SolveStop::kCancelled: return "cancelled";
  }
  return "unknown";
}

void SolverEffort::MergeFrom(const SolverEffort& other) {
  nodes_expanded += other.nodes_expanded;
  incumbent_prunes += other.incumbent_prunes;
  h2_prunes += other.h2_prunes;
  h3_prunes += other.h3_prunes;
  h4_prunes += other.h4_prunes;
  incumbent_updates += other.incumbent_updates;
  costbeta_evals += other.costbeta_evals;
  greedy_phase1_iterations += other.greedy_phase1_iterations;
  greedy_phase2_steps += other.greedy_phase2_steps;
  greedy_fallback_picks += other.greedy_fallback_picks;
  greedy_stale_recomputes += other.greedy_stale_recomputes;
  dnc_groups_solved += other.dnc_groups_solved;
  dnc_waves += other.dnc_waves;
  dnc_invalidations += other.dnc_invalidations;
  dnc_topup_iterations += other.dnc_topup_iterations;
}

std::vector<std::pair<const char*, uint64_t>> SolverEffort::Items() const {
  return {{"nodes_expanded", nodes_expanded},
          {"incumbent_prunes", incumbent_prunes},
          {"h2_prunes", h2_prunes},
          {"h3_prunes", h3_prunes},
          {"h4_prunes", h4_prunes},
          {"incumbent_updates", incumbent_updates},
          {"costbeta_evals", costbeta_evals},
          {"greedy_phase1_iterations", greedy_phase1_iterations},
          {"greedy_phase2_steps", greedy_phase2_steps},
          {"greedy_fallback_picks", greedy_fallback_picks},
          {"greedy_stale_recomputes", greedy_stale_recomputes},
          {"dnc_groups_solved", dnc_groups_solved},
          {"dnc_waves", dnc_waves},
          {"dnc_invalidations", dnc_invalidations},
          {"dnc_topup_iterations", dnc_topup_iterations}};
}

std::vector<IncrementAction> IncrementSolution::Actions(
    const IncrementProblem& problem) const {
  std::vector<IncrementAction> actions;
  for (size_t i = 0; i < new_confidence.size(); ++i) {
    double from = problem.base(i).confidence;
    double to = new_confidence[i];
    if (to > from + kEpsilon) {
      actions.push_back(
          {problem.base(i).id, from, to, problem.base(i).cost->Increment(from, to)});
    }
  }
  return actions;
}

std::string IncrementSolution::ToString(const IncrementProblem& problem) const {
  std::string partial_note;
  if (partial) {
    partial_note = StrFormat(", partial (%.*s)",
                             static_cast<int>(SolveStopToString(stop).size()),
                             SolveStopToString(stop).data());
  }
  std::string out =
      StrFormat("%s: cost=%s, satisfied=%zu, feasible=%s%s (%.3fs, %zu nodes)\n",
                algorithm.c_str(), FormatDouble(total_cost, 4).c_str(), satisfied_results,
                feasible ? "yes" : "no", partial_note.c_str(),
                solve_seconds, nodes_explored);
  for (const IncrementAction& a : Actions(problem)) {
    out += StrFormat("  tuple %llu: %s -> %s (cost %s)\n",
                     static_cast<unsigned long long>(a.base_tuple),
                     FormatDouble(a.from, 4).c_str(), FormatDouble(a.to, 4).c_str(),
                     FormatDouble(a.cost, 4).c_str());
  }
  return out;
}

Status ValidateSolution(const IncrementProblem& problem,
                        const IncrementSolution& solution) {
  if (solution.new_confidence.size() != problem.num_base_tuples()) {
    return Status::Internal(
        StrFormat("solution covers %zu base tuples, problem has %zu",
                  solution.new_confidence.size(), problem.num_base_tuples()));
  }
  double cost = 0.0;
  for (size_t i = 0; i < solution.new_confidence.size(); ++i) {
    const BaseTupleSpec& b = problem.base(i);
    double v = solution.new_confidence[i];
    if (v < b.confidence - kEpsilon) {
      return Status::Internal(
          StrFormat("base %zu lowered below initial confidence (%g < %g)", i, v,
                    b.confidence));
    }
    if (v > b.max_confidence + kEpsilon) {
      return Status::Internal(StrFormat("base %zu raised above its ceiling (%g > %g)", i,
                                        v, b.max_confidence));
    }
    cost += b.cost->Increment(b.confidence, v);
  }
  if (!ApproxEqual(cost, solution.total_cost, 1e-6)) {
    return Status::Internal(StrFormat("reported cost %g != recomputed cost %g",
                                      solution.total_cost, cost));
  }
  size_t satisfied = 0;
  std::vector<size_t> per_query(problem.num_queries(), 0);
  for (size_t r = 0; r < problem.num_results(); ++r) {
    double f = problem.EvalResult(r, solution.new_confidence);
    if (ClearsThreshold(f, problem.beta())) {
      ++satisfied;
      ++per_query[problem.query_of_result(r)];
    }
  }
  if (satisfied != solution.satisfied_results) {
    return Status::Internal(StrFormat("reported satisfied %zu != recomputed %zu",
                                      solution.satisfied_results, satisfied));
  }
  bool feasible = true;
  for (size_t q = 0; q < problem.num_queries(); ++q) {
    if (per_query[q] < problem.required(q)) feasible = false;
  }
  if (feasible != solution.feasible) {
    return Status::Internal(StrFormat("reported feasible=%d != recomputed %d",
                                      solution.feasible ? 1 : 0, feasible ? 1 : 0));
  }
  return Status::OK();
}

IncrementSolution MakeSolution(const ConfidenceState& state, std::string algorithm) {
  IncrementSolution s;
  s.new_confidence = state.probs();
  s.total_cost = state.total_cost();
  s.feasible = state.Feasible();
  s.satisfied_results = state.total_satisfied();
  s.algorithm = std::move(algorithm);
  return s;
}

}  // namespace pcqe
