// Copyright (c) PCQE contributors.
// The two-phase greedy solver (paper §4.2, Figure 6).

#ifndef PCQE_STRATEGY_GREEDY_H_
#define PCQE_STRATEGY_GREEDY_H_

#include <cstddef>

#include "common/deadline.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "strategy/problem.h"
#include "strategy/solution.h"

namespace pcqe {

/// \brief How the numerator of `gain* = Σ ΔF / marginal cost` (paper eq. 2)
/// counts result-confidence increases.
enum class GainMode : uint8_t {
  /// Σ ΔF over affected results that are still below β, with each ΔF capped
  /// at the gap to β (overshoot buys nothing). The library default: strictly
  /// better-informed than the literal rule and still O(affected results).
  kCappedUnsatisfied = 0,
  /// Σ ΔF over *all* affected results, uncapped — the paper's literal
  /// equation (2).
  kRawAll = 1,
};

/// \brief Options for the greedy solver.
struct GreedyOptions {
  /// Run the reducing second phase (Figure 11(b)/(e) compare both settings).
  bool two_phase = true;
  GainMode gain_mode = GainMode::kCappedUnsatisfied;
  /// Safety cap on phase-1 iterations; 0 derives `num_base_tuples · max
  /// steps per tuple` (the true upper bound on useful increments).
  size_t max_iterations = 0;
  /// Maintain gains in a lazily invalidated max-queue (this library's
  /// improvement: only tuples sharing a result with the last increment are
  /// recomputed). false recomputes every gain each iteration — the paper's
  /// literal O(k·l1) procedure, used by the figure benches to reproduce its
  /// reported scaling.
  bool lazy_gain_queue = true;
  /// Lane budget for the initial gain-queue build (the only embarrassingly
  /// parallel part of phase 1): gains of all k tuples against the starting
  /// state fan out in chunks, each probing its own state copy. Gains are
  /// pure functions of that state, so the queue — and the solution — is
  /// identical at any setting. Only the lazy-queue path uses it.
  SolverParallelism parallelism;
  /// Absolute budget: checked every iteration of phase 1 (cancel flag) with
  /// the clock polled every 16 iterations, and per raised tuple in phase 2.
  /// On expiry the current state is returned tagged `partial` — phase 1
  /// stops where it stands (the anytime contract's "phase-1 state") and
  /// phase 2 is skipped or cut short.
  Deadline deadline;
  /// Optional caller-owned cancellation flag, same cadence.
  const CancelToken* cancel = nullptr;
};

/// \brief Phase 1: repeatedly apply the δ-increment with the highest gain*
/// until every query meets its requirement. Phase 2: walk the incremented
/// tuples in ascending final-gain order, stepping each back down while
/// feasibility holds.
///
/// Never fails on feasibility grounds: if no positive-gain increment exists
/// while a deficit remains, returns the best-effort state with
/// `feasible = false`. Complexity O(k·(l1 + log k)) with lazy max-gain
/// maintenance (k base tuples, l1 phase-1 iterations).
[[nodiscard]] Result<IncrementSolution> SolveGreedy(const IncrementProblem& problem,
                                      const GreedyOptions& options = {});

/// \brief Snapshot taken whenever greedy phase 1 satisfies additional
/// results: the satisfaction count reached, the cumulative cost, and the
/// sparse assignment (every base raised above its problem-initial value).
/// The divide-and-conquer solver uses these as a per-group marginal-cost
/// curve when deciding how many results to buy from each group.
struct GreedyCheckpoint {
  size_t satisfied = 0;
  double cost = 0.0;
  std::vector<std::pair<size_t, double>> raised;  ///< (base index, value)
};

/// \brief Greedy phase 1 on an arbitrary starting state: repeatedly applies
/// the best-gain δ-increment until `state` is feasible, progress stalls, or
/// `options.max_iterations` is hit (0 derives the steps-remaining bound).
/// Returns the number of increments applied. Exposed for the
/// divide-and-conquer solver's global top-up pass. When `checkpoints` is
/// non-null, a `GreedyCheckpoint` is appended every time the
/// satisfied-result count grows. When `effort` is non-null, phase-1
/// iteration / fallback-pick / stale-recompute counters are accumulated
/// into it (deterministic at any lane count — phase 1 is a sequential loop;
/// only the initial gain build fans out, and it is pure).
/// When `stop` is non-null it receives why the loop ended early
/// (`SolveStop::kDeadline` / `kCancelled`, per `options.deadline` /
/// `options.cancel`); a natural end — feasible, stuck or the iteration cap
/// — leaves it untouched.
size_t GreedyRaise(ConfidenceState* state, const GreedyOptions& options,
                   std::vector<GreedyCheckpoint>* checkpoints = nullptr,
                   SolverEffort* effort = nullptr, SolveStop* stop = nullptr);

/// \brief The phase-2 refinement on an arbitrary feasible state, exposed for
/// the divide-and-conquer combiner: tuples raised above their initial
/// confidence are stepped back down (ascending gain* first) while every
/// query stays satisfied. `state` is modified in place. Returns the number
/// of δ-steps walked back (the phase-2 effort counter). A non-null
/// `control` is polled per raised tuple; on stop the remaining tuples keep
/// their phase-1 values (the state stays feasible — refinement only ever
/// removes provably unnecessary spend).
size_t RefineDown(ConfidenceState* state, GainMode gain_mode,
                  SolveControl* control = nullptr);

}  // namespace pcqe

#endif  // PCQE_STRATEGY_GREEDY_H_
