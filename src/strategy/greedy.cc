#include "strategy/greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"

namespace pcqe {

namespace {

/// Clock poll stride for the sequential phase-1 loop: the cancel flag is
/// checked every iteration, the clock (and any armed injector) every
/// `kGreedyDeadlineStride` iterations.
constexpr uint32_t kGreedyDeadlineStride = 16;

SolveStop GreedyStopFrom(StopCause cause) {
  return cause == StopCause::kCancelled ? SolveStop::kCancelled
                                        : SolveStop::kDeadline;
}

/// Whether base `i` can still be raised by a step.
bool CanIncrement(const ConfidenceState& state, size_t i) {
  return state.prob(i) + kEpsilon < state.problem().base(i).max_confidence;
}

/// Next grid value one δ up (clamped at the ceiling).
double StepUp(const ConfidenceState& state, size_t i) {
  const IncrementProblem& p = state.problem();
  return std::min(state.prob(i) + p.delta(), p.base(i).max_confidence);
}

/// gain* of raising base `i` one δ (equation 2 or the capped variant).
/// Returns -infinity when `i` cannot be raised.
double ComputeGain(ConfidenceState* state, size_t i, GainMode mode) {
  const IncrementProblem& p = state->problem();
  if (!CanIncrement(*state, i)) return -std::numeric_limits<double>::infinity();
  double from = state->prob(i);
  double to = StepUp(*state, i);
  double marginal = p.CostLevel(i, to) - p.CostLevel(i, from);
  if (marginal <= 0.0) marginal = kEpsilon;  // strictly increasing cost guards this

  // Clamp point just above the threshold: confidence beyond it buys nothing.
  double target = p.beta() + 2 * kEpsilon;
  double sum = 0.0;
  for (uint32_t r : p.results_of_base(i)) {
    double f_old = state->result_confidence(r);
    if (mode == GainMode::kCappedUnsatisfied) {
      if (ClearsThreshold(f_old, p.beta())) continue;             // already satisfied
      if (state->Deficit(p.query_of_result(r)) == 0) continue;    // query already met
      double f_new = state->ProbeResult(r, i, to);
      sum += std::min(f_new, target) - std::min(f_old, target);
    } else {
      double f_new = state->ProbeResult(r, i, to);
      sum += f_new - f_old;
    }
  }
  return sum / marginal;
}

/// Last-resort pick when every queue gain is <= 0 but deficits remain:
/// the raw-gain best among tuples touching a deficit-query unsatisfied
/// result; ties (all raw gains zero) go to the cheapest step. Returns
/// num_base_tuples() when nothing incrementable can possibly help.
size_t PickFallback(ConfidenceState* state) {
  const IncrementProblem& p = state->problem();
  size_t best = p.num_base_tuples();
  double best_raw = -1.0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < p.num_base_tuples(); ++i) {
    if (!CanIncrement(*state, i)) continue;
    bool relevant = false;
    for (uint32_t r : p.results_of_base(i)) {
      if (!ClearsThreshold(state->result_confidence(r), p.beta()) &&
          state->Deficit(p.query_of_result(r)) > 0) {
        relevant = true;
        break;
      }
    }
    if (!relevant) continue;
    double raw = ComputeGain(state, i, GainMode::kRawAll);
    double to = StepUp(*state, i);
    double step_cost = p.CostLevel(i, to) - p.CostLevel(i, state->prob(i));
    if (raw > best_raw + kEpsilon ||
        (ApproxEqual(raw, best_raw) && step_cost < best_cost)) {
      best = i;
      best_raw = raw;
      best_cost = step_cost;
    }
  }
  return best;
}

}  // namespace

size_t RefineDown(ConfidenceState* state, GainMode gain_mode,
                  SolveControl* control) {
  const IncrementProblem& p = state->problem();
  size_t steps_down = 0;
  if (!state->Feasible()) return steps_down;

  // Tuples above their initial confidence, ascending by current gain*:
  // the worst confidence-per-cost increments are walked back first.
  std::vector<std::pair<double, size_t>> raised;
  for (size_t i = 0; i < p.num_base_tuples(); ++i) {
    if (state->prob(i) > p.base(i).confidence + kEpsilon) {
      raised.emplace_back(ComputeGain(state, i, gain_mode), i);
    }
  }
  std::sort(raised.begin(), raised.end());

  for (const auto& [gain, i] : raised) {
    (void)gain;
    // Per-tuple budget poll: stopping here leaves the rest of the phase-1
    // spend in place, which can only keep the state feasible.
    if (control != nullptr && control->StopNow()) break;
    double initial = p.base(i).confidence;
    while (state->prob(i) > initial + kEpsilon) {
      // Step down along the δ-grid anchored at the initial confidence: a
      // value capped at the ceiling (fractional last step) first drops back
      // to the highest full grid point, keeping solutions on-grid.
      double steps = std::ceil((state->prob(i) - initial) / p.delta() - 1e-9);
      double down = steps <= 1.0 ? initial : initial + (steps - 1.0) * p.delta();
      double saved = state->prob(i);
      state->SetProb(i, down);
      if (!state->Feasible()) {
        state->SetProb(i, saved);
        break;
      }
      ++steps_down;
    }
  }
  return steps_down;
}

size_t GreedyRaise(ConfidenceState* state_ptr, const GreedyOptions& options,
                   std::vector<GreedyCheckpoint>* checkpoints, SolverEffort* effort,
                   SolveStop* stop) {
  ConfidenceState& state = *state_ptr;
  const IncrementProblem& problem = state.problem();
  const GainMode gain_mode = options.gain_mode;
  SolveControl control(options.deadline, options.cancel,
                       fault_sites::kGreedyDeadline);
  auto note_stop = [&]() {
    if (stop != nullptr && control.stopped()) {
      *stop = GreedyStopFrom(control.cause());
    }
  };
  size_t max_iterations = options.max_iterations;
  size_t fallback_picks = 0;
  size_t stale_recomputes = 0;
  auto account = [&](size_t iterations) {
    if (effort == nullptr) return;
    effort->greedy_phase1_iterations += iterations;
    effort->greedy_fallback_picks += fallback_picks;
    effort->greedy_stale_recomputes += stale_recomputes;
  };

  size_t recorded_satisfied = state.total_satisfied();
  // Sparse raised-set bookkeeping: every base ever lifted above its
  // problem-initial confidence, maintained as increments are applied, so a
  // checkpoint copies O(|raised|) pairs instead of rescanning all k tuples.
  std::vector<size_t> raised_bases;
  std::vector<char> raised_flag;
  if (checkpoints != nullptr) {
    raised_flag.assign(problem.num_base_tuples(), 0);
    for (size_t i = 0; i < problem.num_base_tuples(); ++i) {
      if (state.prob(i) > problem.base(i).confidence + kEpsilon) {
        raised_flag[i] = 1;
        raised_bases.push_back(i);
      }
    }
  }
  auto note_raise = [&](size_t i) {
    if (checkpoints == nullptr || raised_flag[i] != 0) return;
    raised_flag[i] = 1;
    raised_bases.push_back(i);
  };
  auto record_checkpoint = [&]() {
    if (checkpoints == nullptr || state.total_satisfied() <= recorded_satisfied) return;
    recorded_satisfied = state.total_satisfied();
    GreedyCheckpoint cp;
    cp.satisfied = state.total_satisfied();
    cp.cost = state.total_cost();
    std::sort(raised_bases.begin(), raised_bases.end());
    cp.raised.reserve(raised_bases.size());
    for (size_t i : raised_bases) {
      if (state.prob(i) > problem.base(i).confidence + kEpsilon) {
        cp.raised.emplace_back(i, state.prob(i));
      }
    }
    checkpoints->push_back(std::move(cp));
  };

  if (max_iterations == 0) {
    for (size_t i = 0; i < problem.num_base_tuples(); ++i) {
      max_iterations += StepsBetween(state.prob(i), problem.base(i).max_confidence,
                                     problem.delta()) +
                        1;
    }
    max_iterations += 1;  // degenerate zero-step problems still enter the loop
  }

  if (!options.lazy_gain_queue) {
    // Paper-literal phase 1: recompute every gain each iteration and take
    // the maximum (Figure 6 lines 2-11, O(k) per increment).
    size_t iterations = 0;
    while (!state.Feasible() && iterations < max_iterations) {
      if (control.CheckEvery(kGreedyDeadlineStride)) break;
      size_t best = problem.num_base_tuples();
      double best_gain = 0.0;
      for (size_t i = 0; i < problem.num_base_tuples(); ++i) {
        double g = ComputeGain(&state, i, gain_mode);
        if (std::isfinite(g) && g > best_gain) {
          best_gain = g;
          best = i;
        }
      }
      if (best == problem.num_base_tuples()) {
        best = PickFallback(&state);
        if (best == problem.num_base_tuples()) break;  // genuinely stuck
        ++fallback_picks;
      }
      ++iterations;
      state.SetProb(best, StepUp(state, best));
      note_raise(best);
      record_checkpoint();
    }
    account(iterations);
    note_stop();
    return iterations;
  }

  // Lazy max-gain queue: entries carry the stamp they were computed at;
  // stale entries are recomputed on pop instead of being updated in place.
  struct Entry {
    double gain;
    uint32_t base;
    uint64_t stamp;
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> queue;
  std::vector<uint64_t> stamp(problem.num_base_tuples(), 0);
  {
    // Initial build: every gain is a pure probe of the starting state, so
    // the k computations fan out in chunks, each against its own state
    // copy (ProbeResult patches-and-restores, making a shared state racy).
    // The queue itself is filled in index order either way.
    const size_t k = problem.num_base_tuples();
    std::vector<double> initial_gains(k);
    if (options.parallelism.Resolve() <= 1) {
      for (size_t i = 0; i < k; ++i) {
        initial_gains[i] = ComputeGain(&state, i, gain_mode);
      }
    } else {
      ParallelForChunks(options.parallelism, k, [&](size_t, size_t lo, size_t hi) {
        ConfidenceState local(state);
        for (size_t i = lo; i < hi; ++i) {
          initial_gains[i] = ComputeGain(&local, i, gain_mode);
        }
      });
    }
    for (size_t i = 0; i < k; ++i) {
      if (std::isfinite(initial_gains[i])) {
        queue.push({initial_gains[i], static_cast<uint32_t>(i), 0});
      }
    }
  }

  auto apply = [&](size_t i) {
    state.SetProb(i, StepUp(state, i));
    note_raise(i);
    // Gains of every co-occurring base tuple are now stale.
    for (uint32_t r : problem.results_of_base(i)) {
      for (uint32_t j : problem.bases_of_result(r)) ++stamp[j];
    }
    ++stamp[i];  // covers tuples whose results vanished from the index edge case
    double g = ComputeGain(&state, i, gain_mode);
    if (std::isfinite(g)) queue.push({g, static_cast<uint32_t>(i), stamp[i]});
    record_checkpoint();
  };

  size_t iterations = 0;
  while (!state.Feasible() && iterations < max_iterations) {
    if (control.CheckEvery(kGreedyDeadlineStride)) break;
    if (queue.empty()) {
      size_t pick = PickFallback(&state);
      if (pick == problem.num_base_tuples()) break;  // genuinely stuck
      ++fallback_picks;
      ++iterations;
      apply(pick);
      continue;
    }
    Entry top = queue.top();
    queue.pop();
    if (top.stamp != stamp[top.base]) {
      ++stale_recomputes;
      double g = ComputeGain(&state, top.base, gain_mode);
      if (std::isfinite(g)) queue.push({g, top.base, stamp[top.base]});
      continue;
    }
    if (top.gain <= 0.0) {
      // Fresh top is non-positive: the capped gain sees no useful move.
      // Fall back to a raw-gain/cheapest pick to keep making progress.
      size_t pick = PickFallback(&state);
      if (pick == problem.num_base_tuples()) break;
      ++fallback_picks;
      ++iterations;
      apply(pick);
      continue;
    }
    ++iterations;
    apply(top.base);
  }
  account(iterations);
  note_stop();
  return iterations;
}

Result<IncrementSolution> SolveGreedy(const IncrementProblem& problem,
                                      const GreedyOptions& options) {
  Stopwatch timer;
  PCQE_INJECT_FAULT(fault_sites::kGreedySolve);
  ConfidenceState state(problem);
  SolverEffort effort;

  // ---- Phase 1: aggressive increase. ----
  SolveStop stop = SolveStop::kComplete;
  size_t iterations = GreedyRaise(&state, options, nullptr, &effort, &stop);

  // ---- Phase 2: walk unnecessary increments back down. ----
  SolveControl control(options.deadline, options.cancel,
                       fault_sites::kGreedyDeadline);
  if (options.two_phase && stop == SolveStop::kComplete) {
    effort.greedy_phase2_steps += RefineDown(&state, options.gain_mode, &control);
  }
  // Final poll so a budget that expired during (or right after) phase 2
  // still tags the result partial: feasibility holds, but the refinement
  // makes no minimality claim.
  if (stop == SolveStop::kComplete && control.StopNow()) {
    stop = GreedyStopFrom(control.cause());
  }

  IncrementSolution out = MakeSolution(state, options.two_phase ? "greedy" : "greedy_1p");
  out.nodes_explored = iterations;
  out.effort = effort;
  out.solve_seconds = timer.ElapsedSeconds();
  out.stop = stop;
  out.partial = stop != SolveStop::kComplete;
  out.search_complete = !out.partial;
  return out;
}

}  // namespace pcqe
