// Copyright (c) PCQE contributors.
// The confidence-increment problem (paper §3.2) and shared solver state.
//
// Given intermediate query results λ1..λn (each a lineage formula over base
// tuples), a confidence threshold β and a required count, choose new
// confidence values p* >= p for the base tuples — on a δ-granularity grid —
// so that enough results reach confidence above β, minimizing
//     Σ  c_x(p*_x) − c_x(p_x).
// The paper notes the general problem (nonlinear constraints) is NP-hard;
// the solvers in this directory implement its three algorithms plus an
// exact brute-force reference.
//
// The multi-query extension sketched at the end of §4 is supported natively:
// every result belongs to a query, and feasibility means *every* query meets
// its own required count. Single-query problems are the one-query special
// case.

#ifndef PCQE_STRATEGY_PROBLEM_H_
#define PCQE_STRATEGY_PROBLEM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/math_util.h"
#include "common/result.h"
#include "cost/cost_function.h"
#include "lineage/lineage.h"

namespace pcqe {

/// Threshold test shared by policy enforcement and the solvers: a result
/// clears β when its confidence is strictly higher (Definition 1), with
/// epsilon slack against rounding.
inline bool ClearsThreshold(double confidence, double beta) {
  return confidence > beta + kEpsilon;
}

/// \brief One base tuple as seen by the optimizer.
struct BaseTupleSpec {
  /// Catalog-wide tuple id == lineage variable id.
  LineageVarId id = 0;
  /// Current confidence (the optimization's lower bound for this tuple).
  double confidence = 0.0;
  /// Ceiling achievable by quality improvement.
  double max_confidence = 1.0;
  /// Cost model; null falls back to `DefaultCostFunction()`.
  CostFunctionPtr cost;
};

/// \brief Grid and threshold configuration (paper Table 4 defaults).
struct ProblemOptions {
  /// Confidence threshold β from the applicable confidence policy.
  double beta = 0.6;
  /// Confidence increment step δ.
  double delta = 0.1;
};

/// \brief Immutable problem instance with compiled lineage.
///
/// Base tuples and results are referred to by dense local indices
/// (0..k-1 / 0..n-1). Lineage formulas are compiled into a flat node pool
/// whose variables are local base indices, so confidence evaluation is a
/// cache-friendly walk with no hash lookups — the hot path of every solver.
class IncrementProblem {
 public:
  /// \brief Builds a multi-query problem.
  ///
  /// \param arena owns the result lineages; held alive by the problem.
  /// \param result_lineages lineage of each intermediate result (all below
  ///        threshold — the caller pre-filters; but this is not enforced).
  /// \param result_query query index of each result; empty means all 0.
  /// \param required_per_query how many results each query must get above β;
  ///        size defines the number of queries.
  /// \param base_tuples every base tuple the lineages mention (extras are
  ///        allowed and simply never help). Duplicate ids are rejected.
  [[nodiscard]] static Result<IncrementProblem> Build(std::shared_ptr<const LineageArena> arena,
                                        const std::vector<LineageRef>& result_lineages,
                                        std::vector<uint32_t> result_query,
                                        std::vector<size_t> required_per_query,
                                        std::vector<BaseTupleSpec> base_tuples,
                                        ProblemOptions options);

  /// Single-query convenience wrapper.
  [[nodiscard]] static Result<IncrementProblem> BuildSingle(std::shared_ptr<const LineageArena> arena,
                                              const std::vector<LineageRef>& result_lineages,
                                              std::vector<BaseTupleSpec> base_tuples,
                                              size_t required, ProblemOptions options);

  /// \name Dimensions.
  /// @{
  size_t num_results() const { return result_roots_.size(); }
  size_t num_base_tuples() const { return base_.size(); }
  size_t num_queries() const { return required_.size(); }
  /// @}

  double beta() const { return options_.beta; }
  double delta() const { return options_.delta; }

  /// Required above-threshold count for query `q`.
  size_t required(size_t q) const { return required_[q]; }

  /// Query index of result `r`.
  uint32_t query_of_result(size_t r) const { return result_query_[r]; }

  /// Base tuple metadata by local index.
  const BaseTupleSpec& base(size_t i) const { return base_[i]; }

  /// Cost level of holding confidence `p` on base tuple `i`.
  double CostLevel(size_t i, double p) const { return base_[i].cost->Level(p); }

  /// Results whose lineage mentions base `i` (sorted, unique).
  const std::vector<uint32_t>& results_of_base(size_t i) const {
    return results_of_base_[i];
  }

  /// Base tuples mentioned by result `r`'s lineage (sorted, unique).
  const std::vector<uint32_t>& bases_of_result(size_t r) const {
    return bases_of_result_[r];
  }

  /// Confidence of result `r` under per-base confidences `probs`
  /// (independence semantics, matching the query engine).
  double EvalResult(size_t r, const std::vector<double>& probs) const;

  /// Number of δ steps available on base `i` from its initial confidence to
  /// its ceiling (the last step may be fractional, landing exactly on the
  /// ceiling).
  size_t NumSteps(size_t i) const;

  /// Grid value of base `i` after `steps` δ-steps, clamped to its ceiling.
  double ValueAtStep(size_t i, size_t steps) const;

  /// Initial confidences as a dense vector (the solvers' starting state).
  std::vector<double> InitialProbs() const;

  /// Local index of the base tuple with lineage-variable id `id`.
  [[nodiscard]] Result<size_t> BaseIndexOf(LineageVarId id) const;

  /// True iff no lineage contains negation, making every result confidence
  /// monotone non-decreasing in every base confidence. The branch-and-bound
  /// heuristics (H2/H3 and the satisfied-stop rule) are only sound on
  /// monotone problems; `HeuristicSolver` rejects non-monotone instances.
  bool is_monotone() const { return monotone_; }

  /// The arena owning every result lineage (shared with sub-problems built
  /// by the divide-and-conquer solver).
  const std::shared_ptr<const LineageArena>& arena() const { return arena_; }

  /// Original lineage of result `r` in `arena()`.
  LineageRef result_lineage(size_t r) const { return result_lineage_[r]; }

 private:
  IncrementProblem() = default;

  /// Compiled lineage node (flat pool, children contiguous in child_pool_).
  struct CNode {
    LineageOp op;
    uint32_t var = 0;  ///< local base index when op == kVar
    uint32_t child_begin = 0;
    uint32_t child_count = 0;
  };

  double EvalNode(uint32_t node, const std::vector<double>& probs) const;

  std::shared_ptr<const LineageArena> arena_;
  ProblemOptions options_;
  std::vector<BaseTupleSpec> base_;
  std::vector<uint32_t> result_query_;
  std::vector<size_t> required_;
  std::vector<CNode> cnodes_;
  std::vector<uint32_t> child_pool_;
  std::vector<uint32_t> result_roots_;  ///< per result: index into cnodes_
  std::vector<LineageRef> result_lineage_;
  std::vector<std::vector<uint32_t>> results_of_base_;
  std::vector<std::vector<uint32_t>> bases_of_result_;
  bool monotone_ = true;
};

/// \brief Mutable solver state: per-base confidences plus incrementally
/// maintained result confidences, per-query satisfaction counts and total
/// cost.
///
/// `SetProb` re-evaluates only the results touching the changed base tuple,
/// which is what makes greedy iterations and DFS backtracking cheap.
class ConfidenceState {
 public:
  /// Starts at the problem's initial confidences.
  explicit ConfidenceState(const IncrementProblem& problem);

  /// Current confidence of base `i`.
  double prob(size_t i) const { return probs_[i]; }

  /// All current confidences (usable with `IncrementProblem::EvalResult`).
  const std::vector<double>& probs() const { return probs_; }

  /// Current confidence of result `r`.
  double result_confidence(size_t r) const { return result_conf_[r]; }

  /// Results of query `q` currently above threshold.
  size_t satisfied(size_t q) const { return satisfied_[q]; }

  /// Results above threshold across all queries.
  size_t total_satisfied() const { return total_satisfied_; }

  /// True iff every query meets its required count.
  bool Feasible() const;

  /// Results of query `q` still needed: required - satisfied, floored at 0.
  size_t Deficit(size_t q) const;

  /// Total deficit across queries.
  size_t TotalDeficit() const;

  /// Σ cost of moving each base from its initial to its current confidence.
  double total_cost() const { return total_cost_; }

  /// Sets base `i` to confidence `p` (any direction), updating result
  /// confidences, satisfaction counts and cost.
  void SetProb(size_t i, double p);

  /// Evaluates result `r` as if base `i` held `value`, without committing
  /// the change (the probability slot is patched and restored; no result
  /// bookkeeping is touched). The what-if probe behind greedy gains.
  double ProbeResult(size_t r, size_t i, double value);

  /// The problem this state tracks.
  const IncrementProblem& problem() const { return *problem_; }

 private:
  const IncrementProblem* problem_;
  std::vector<double> probs_;
  std::vector<double> result_conf_;
  std::vector<size_t> satisfied_;
  size_t total_satisfied_ = 0;
  double total_cost_ = 0.0;
};

}  // namespace pcqe

#endif  // PCQE_STRATEGY_PROBLEM_H_
