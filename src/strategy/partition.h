// Copyright (c) PCQE contributors.
// Result-graph partitioning for divide-and-conquer (paper §4.3, Figure 9/10).

#ifndef PCQE_STRATEGY_PARTITION_H_
#define PCQE_STRATEGY_PARTITION_H_

#include <cstddef>
#include <vector>

#include "strategy/problem.h"

namespace pcqe {

/// \brief One partition group: a set of result tuples and the union of the
/// base tuples their lineages mention.
struct PartitionGroup {
  std::vector<uint32_t> results;      ///< result indices, sorted
  std::vector<uint32_t> base_tuples;  ///< base indices (union), sorted
};

/// \brief Options for the agglomerative partitioner.
struct PartitionOptions {
  /// Merge threshold γ: merging stops once the heaviest remaining edge
  /// weight (shared base tuples between two groups, summed over members)
  /// drops below γ.
  double gamma = 2.0;
  /// Paper requirement 1: never grow a group beyond this many base tuples
  /// (keeps each sub-problem solvable in bounded time). 0 disables the cap.
  size_t max_group_base_tuples = 0;
};

/// \brief Partitions the problem's result tuples.
///
/// Nodes are result tuples; the weight between two results is the number of
/// base tuples their lineages share (the pseudocode's `|Gi ∪ Gj|` is read as
/// `|Gi ∩ Gj|`, matching the paper's worked example). Starting from
/// singleton groups, the two groups joined by the heaviest edge are merged
/// repeatedly — edge weights to the merged group are the sums of the edges
/// to its parts — until the heaviest weight falls below γ or every candidate
/// merge would violate the base-tuple cap.
///
/// Edge weights are only materialized for result pairs that actually share
/// a base tuple (via the problem's inverted index), so cost is
/// O(Σ_b |results_of(b)|²) rather than O(n²) in the common sparse case.
std::vector<PartitionGroup> PartitionResults(const IncrementProblem& problem,
                                             const PartitionOptions& options = {});

}  // namespace pcqe

#endif  // PCQE_STRATEGY_PARTITION_H_
