// Copyright (c) PCQE contributors.
// Exhaustive reference solver (not in the paper; used to verify optimality).

#ifndef PCQE_STRATEGY_BRUTE_FORCE_H_
#define PCQE_STRATEGY_BRUTE_FORCE_H_

#include "common/result.h"
#include "strategy/problem.h"
#include "strategy/solution.h"

namespace pcqe {

/// \brief Options for the brute-force solver.
struct BruteForceOptions {
  /// Hard cap on enumerated assignments; exceeding it returns
  /// `kResourceExhausted`. The grid has Π(steps_i + 1) points, so keep
  /// problems tiny (≤ ~6 tuples at δ = 0.1).
  size_t max_assignments = 50'000'000;
};

/// \brief Enumerates every grid assignment and returns a provably
/// cost-minimal feasible solution (or the best-satisfaction assignment of
/// minimum cost when the problem is infeasible).
///
/// Exists purely as ground truth for tests and the optimality benches; the
/// paper's own exact algorithm is `HeuristicSolver`, which must agree with
/// this on every instance it can solve.
[[nodiscard]] Result<IncrementSolution> SolveBruteForce(const IncrementProblem& problem,
                                          const BruteForceOptions& options = {});

}  // namespace pcqe

#endif  // PCQE_STRATEGY_BRUTE_FORCE_H_
