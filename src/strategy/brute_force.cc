#include "strategy/brute_force.h"

#include "common/stopwatch.h"

namespace pcqe {

namespace {

class BruteForcer {
 public:
  BruteForcer(const IncrementProblem& problem, const BruteForceOptions& options)
      : problem_(problem), options_(options), state_(problem) {}

  Result<IncrementSolution> Run() {
    Stopwatch timer;
    // Seed "best" with the do-nothing assignment so infeasible problems
    // still return the cheapest best-satisfaction attempt found.
    best_ = MakeSolution(state_, "brute_force");
    PCQE_RETURN_NOT_OK(Recurse(0));
    best_.solve_seconds = timer.ElapsedSeconds();
    best_.nodes_explored = visited_;
    return best_;
  }

 private:
  Status Recurse(size_t depth) {  // NOLINT(misc-no-recursion)
    if (++visited_ > options_.max_assignments) {
      return Status::ResourceExhausted("brute force exceeded assignment budget");
    }
    if (depth == problem_.num_base_tuples()) {
      Consider();
      return Status::OK();
    }
    double original = state_.prob(depth);
    size_t steps = problem_.NumSteps(depth);
    for (size_t s = 0; s <= steps; ++s) {
      state_.SetProb(depth, problem_.ValueAtStep(depth, s));
      PCQE_RETURN_NOT_OK(Recurse(depth + 1));
    }
    state_.SetProb(depth, original);
    return Status::OK();
  }

  void Consider() {
    bool feasible = state_.Feasible();
    // Lexicographic preference: feasibility first, then cost, then (for
    // infeasible candidates) satisfaction count.
    bool better;
    if (feasible != best_.feasible) {
      better = feasible;
    } else if (feasible) {
      better = state_.total_cost() < best_.total_cost - kEpsilon;
    } else {
      better = state_.total_satisfied() > best_.satisfied_results ||
               (state_.total_satisfied() == best_.satisfied_results &&
                state_.total_cost() < best_.total_cost - kEpsilon);
    }
    if (better) {
      IncrementSolution candidate = MakeSolution(state_, "brute_force");
      candidate.nodes_explored = visited_;
      best_ = std::move(candidate);
    }
  }

  const IncrementProblem& problem_;
  const BruteForceOptions& options_;
  ConfidenceState state_;
  IncrementSolution best_;
  size_t visited_ = 0;
};

}  // namespace

Result<IncrementSolution> SolveBruteForce(const IncrementProblem& problem,
                                          const BruteForceOptions& options) {
  BruteForcer solver(problem, options);
  return solver.Run();
}

}  // namespace pcqe
