// Copyright (c) PCQE contributors.
// Exact branch-and-bound solver with the paper's heuristics H1-H4 (§4.1).

#ifndef PCQE_STRATEGY_HEURISTIC_H_
#define PCQE_STRATEGY_HEURISTIC_H_

#include <optional>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "strategy/problem.h"
#include "strategy/solution.h"

namespace pcqe {

/// Root steps per wave of the multi-root branch-and-bound search. A
/// lane-count-independent constant: wave boundaries (where incumbent bounds
/// synchronize) must not move with `SolverParallelism`, or node and prune
/// counts would differ between lane counts.
inline constexpr size_t kHeuristicRootWaveWidth = 8;

/// \brief Toggles and budgets for the branch-and-bound search.
///
/// With every heuristic disabled the search is the paper's "Naive" variant:
/// depth-first enumeration pruned only by the incumbent cost. Figures 11(a)
/// and 11(d) sweep these toggles.
struct HeuristicOptions {
  /// H1: order base tuples by descending costβ (the minimum cost at which
  /// raising the tuple alone pushes one of its results over β; unreachable
  /// tuples use the paper's `cost · β / Fmax` adjustment).
  bool use_h1_ordering = true;
  /// H2: when every result touching the current tuple already clears β,
  /// prune the higher-value siblings (raising this tuple further only
  /// benefits already-satisfied results).
  bool use_h2 = true;
  /// H3: when even raising all remaining tuples to their ceilings cannot
  /// reach the required count, prune the subtree below the current node.
  bool use_h3 = true;
  /// H4: when the current cost plus the cheapest possible single δ-step on
  /// any remaining tuple already meets the incumbent, prune.
  bool use_h4 = true;

  /// Optional externally supplied incumbent (e.g. the greedy solution, the
  /// paper's Figure 11(d) setup): `bound` primes the cost bound, and
  /// `assignment`, when set, is returned if the search finds nothing
  /// cheaper.
  std::optional<double> initial_upper_bound;
  std::optional<std::vector<double>> initial_assignment;

  /// Node budget; on exhaustion the best incumbent is returned with
  /// `search_complete = false` / `partial = true`. Shared across lanes.
  size_t max_nodes = 500'000'000;
  /// Wall-clock budget in seconds; 0 disables. Same early-return behavior.
  double max_seconds = 0.0;
  /// Absolute budget, folded with `max_seconds` via `Deadline::Sooner`. On
  /// expiry the search stops within a bounded number of node expansions
  /// (checked every 1024 shared nodes and at every wave boundary) and the
  /// best feasible incumbent — or `initial_assignment`, when supplied and
  /// never beaten — is returned tagged `partial` / `SolveStop::kDeadline`.
  Deadline deadline;
  /// Optional caller-owned cancellation flag, checked on the same cadence.
  const CancelToken* cancel = nullptr;

  /// Multi-root parallel search over fixed-width waves: the first
  /// H1-ordered variable's δ-steps are processed in waves of
  /// `kHeuristicRootWaveWidth` independent units, each seeded with the
  /// incumbent bound as of the wave start and explored with its own local
  /// bound; unit results (best assignment and `SolverEffort` counters) are
  /// combined in root-step order at the wave barrier. Because the wave
  /// width is a constant — not the lane count — the explored tree, the
  /// returned solution *and every effort counter* are bit-identical at any
  /// setting (equal-cost ties go to the smallest root step); lanes only
  /// decide how many units of a wave run concurrently. The one exception
  /// is a `max_nodes`/`max_seconds` abort (`search_complete = false`),
  /// where the budget trips at a scheduling-dependent point.
  SolverParallelism parallelism;
};

/// \brief Exact cost-minimal solver (complete search; worst case O(d^k)).
///
/// Requires a monotone problem (`IncrementProblem::is_monotone()`): the
/// satisfied-stop rule and H2/H3 rely on result confidences being
/// non-decreasing in base confidences. Returns `kInvalidArgument` otherwise.
///
/// When the problem is infeasible even with every tuple at its ceiling, the
/// do-nothing assignment is returned with `feasible = false`.
[[nodiscard]] Result<IncrementSolution> SolveHeuristic(const IncrementProblem& problem,
                                         const HeuristicOptions& options = {});

/// Computes the H1 ordering's costβ for one base tuple (exposed for tests).
double CostBeta(const IncrementProblem& problem, size_t base_index);

}  // namespace pcqe

#endif  // PCQE_STRATEGY_HEURISTIC_H_
