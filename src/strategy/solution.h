// Copyright (c) PCQE contributors.
// Solver output: a confidence assignment plus bookkeeping.

#ifndef PCQE_STRATEGY_SOLUTION_H_
#define PCQE_STRATEGY_SOLUTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "strategy/problem.h"

namespace pcqe {

/// \brief One base-tuple confidence increment in a reported plan.
struct IncrementAction {
  LineageVarId base_tuple = 0;
  double from = 0.0;
  double to = 0.0;
  double cost = 0.0;
};

/// \brief Result of running a strategy-finding algorithm.
struct IncrementSolution {
  /// New confidence per base tuple (dense, parallel to the problem's base
  /// indices; >= initial confidence, on the δ grid).
  std::vector<double> new_confidence;
  /// Σ increment cost of `new_confidence` over the initial assignment.
  double total_cost = 0.0;
  /// True iff every query reaches its required above-threshold count under
  /// `new_confidence`. Solvers return their best attempt either way.
  bool feasible = false;
  /// Results above threshold under `new_confidence` (all queries).
  size_t satisfied_results = 0;

  /// \name Diagnostics.
  /// @{
  std::string algorithm;       ///< "heuristic", "greedy", "dnc", "brute_force"
  double solve_seconds = 0.0;  ///< wall-clock solve time
  size_t nodes_explored = 0;   ///< search-tree nodes (B&B) or iterations (greedy)
  /// False when a node/time budget stopped an exact search early, in which
  /// case the solution is the best found so far and optimality is not
  /// guaranteed.
  bool search_complete = true;
  /// @}

  /// The non-trivial increments, for reporting to the user (paper: "the
  /// increment cost and the data whose confidence needs to be improved will
  /// be reported").
  std::vector<IncrementAction> Actions(const IncrementProblem& problem) const;

  /// Human-readable plan summary.
  std::string ToString(const IncrementProblem& problem) const;
};

/// \brief Recomputes a solution's cost/satisfaction from scratch and checks
/// its invariants against `problem`:
/// - assignment size matches;
/// - every confidence lies in [initial, max] for its tuple;
/// - `total_cost` matches the recomputed cost;
/// - `feasible`/`satisfied_results` match the recomputed satisfaction.
/// Returns `kInternal` describing the first violation — used by tests and
/// by the engine as a safety net before applying improvements.
[[nodiscard]] Status ValidateSolution(const IncrementProblem& problem, const IncrementSolution& solution);

/// Builds the solution record for the state a solver ended in.
IncrementSolution MakeSolution(const ConfidenceState& state, std::string algorithm);

}  // namespace pcqe

#endif  // PCQE_STRATEGY_SOLUTION_H_
