// Copyright (c) PCQE contributors.
// Solver output: a confidence assignment plus bookkeeping.

#ifndef PCQE_STRATEGY_SOLUTION_H_
#define PCQE_STRATEGY_SOLUTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "strategy/problem.h"

namespace pcqe {

/// \brief Search-effort counters every solver fills in alongside its
/// solution — the telemetry layer's audit trail of *where the work went*.
///
/// Determinism contract (same as cost/iterations since the parallel-solving
/// PR): every field is bit-identical at any `SolverParallelism` lane count,
/// provided the search ran to completion (`search_complete`). A node or
/// wall-clock budget abort is the one exception — where the budget lands
/// depends on scheduling. Counters are plain integers summed in a fixed
/// order by the owning solver, never shared atomics.
struct SolverEffort {
  /// \name Branch-and-bound (heuristic solver, also the D&C exact tails).
  /// @{
  uint64_t nodes_expanded = 0;     ///< (tuple, value) nodes visited
  uint64_t incumbent_prunes = 0;   ///< sibling ranges cut by the cost bound
  uint64_t h2_prunes = 0;          ///< all-results-satisfied sibling stops
  uint64_t h3_prunes = 0;          ///< optimistic-completion subtree cuts
  uint64_t h4_prunes = 0;          ///< cheapest-remaining-step subtree cuts
  uint64_t incumbent_updates = 0;  ///< feasible offers that improved a bound
  uint64_t costbeta_evals = 0;     ///< H1 ordering costβ computations
  /// @}

  /// \name Two-phase greedy.
  /// @{
  uint64_t greedy_phase1_iterations = 0;  ///< δ-increments applied
  uint64_t greedy_phase2_steps = 0;       ///< δ-steps walked back down
  uint64_t greedy_fallback_picks = 0;     ///< raw-gain fallback selections
  uint64_t greedy_stale_recomputes = 0;   ///< lazy-queue stale pops recomputed
  /// @}

  /// \name Divide and conquer.
  /// @{
  uint64_t dnc_groups_solved = 0;   ///< group sub-solves in the applied sequence
  uint64_t dnc_waves = 0;           ///< speculative waves started (fixed width)
  uint64_t dnc_invalidations = 0;   ///< group views invalidated within a wave
  uint64_t dnc_topup_iterations = 0;  ///< global top-up greedy increments
  /// @}

  void MergeFrom(const SolverEffort& other);

  /// (name, value) pairs in declaration order — one reflection point for the
  /// registry export, trace annotations and tests.
  std::vector<std::pair<const char*, uint64_t>> Items() const;

  bool operator==(const SolverEffort&) const = default;
};

/// \brief Why a solver returned when it did.
///
/// Anything other than `kComplete` marks the solution `partial`: the
/// algorithm was stopped before its natural end and returned its best
/// anytime state (B&B's incumbent, greedy's phase-1 state, D&C's merged
/// partial). Partial solutions still satisfy every `ValidateSolution`
/// invariant — the β filter is never relaxed — they just drop the
/// optimality / full-coverage claim.
enum class SolveStop : uint8_t {
  kComplete = 0,    ///< natural end: the algorithm's full answer
  kNodeBudget = 1,  ///< `max_nodes` exhausted (exact searches)
  kDeadline = 2,    ///< `Deadline` / `max_seconds` budget expired
  kCancelled = 3,   ///< the caller's `CancelToken` fired
};

/// Canonical lowercase name ("complete", "deadline", ...).
std::string_view SolveStopToString(SolveStop stop);

/// \brief One base-tuple confidence increment in a reported plan.
struct IncrementAction {
  LineageVarId base_tuple = 0;
  double from = 0.0;
  double to = 0.0;
  double cost = 0.0;
};

/// \brief Result of running a strategy-finding algorithm.
struct IncrementSolution {
  /// New confidence per base tuple (dense, parallel to the problem's base
  /// indices; >= initial confidence, on the δ grid).
  std::vector<double> new_confidence;
  /// Σ increment cost of `new_confidence` over the initial assignment.
  double total_cost = 0.0;
  /// True iff every query reaches its required above-threshold count under
  /// `new_confidence`. Solvers return their best attempt either way.
  bool feasible = false;
  /// Results above threshold under `new_confidence` (all queries).
  size_t satisfied_results = 0;

  /// \name Diagnostics.
  /// @{
  std::string algorithm;       ///< "heuristic", "greedy", "dnc", "brute_force"
  double solve_seconds = 0.0;  ///< wall-clock solve time
  size_t nodes_explored = 0;   ///< search-tree nodes (B&B) or iterations (greedy)
  /// Detailed search-effort counters (see SolverEffort for the determinism
  /// contract). `nodes_explored` remains the headline aggregate.
  SolverEffort effort;
  /// False when a node/time budget stopped an exact search early, in which
  /// case the solution is the best found so far and optimality is not
  /// guaranteed. Kept in sync with `partial` (`search_complete == !partial`)
  /// for callers predating the anytime contract.
  bool search_complete = true;
  /// Why the solve returned; anything but `kComplete` implies `partial`.
  SolveStop stop = SolveStop::kComplete;
  /// True when a deadline, cancellation or search budget stopped the solver
  /// early and this is its best anytime state. Always β-compliant
  /// (`ValidateSolution` holds), never optimal-claiming.
  bool partial = false;
  /// @}

  /// The non-trivial increments, for reporting to the user (paper: "the
  /// increment cost and the data whose confidence needs to be improved will
  /// be reported").
  std::vector<IncrementAction> Actions(const IncrementProblem& problem) const;

  /// Human-readable plan summary.
  std::string ToString(const IncrementProblem& problem) const;
};

/// \brief Recomputes a solution's cost/satisfaction from scratch and checks
/// its invariants against `problem`:
/// - assignment size matches;
/// - every confidence lies in [initial, max] for its tuple;
/// - `total_cost` matches the recomputed cost;
/// - `feasible`/`satisfied_results` match the recomputed satisfaction.
/// Returns `kInternal` describing the first violation — used by tests and
/// by the engine as a safety net before applying improvements.
[[nodiscard]] Status ValidateSolution(const IncrementProblem& problem, const IncrementSolution& solution);

/// Builds the solution record for the state a solver ended in.
IncrementSolution MakeSolution(const ConfidenceState& state, std::string algorithm);

}  // namespace pcqe

#endif  // PCQE_STRATEGY_SOLUTION_H_
