#include "strategy/problem.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace pcqe {

Result<IncrementProblem> IncrementProblem::Build(
    std::shared_ptr<const LineageArena> arena,
    const std::vector<LineageRef>& result_lineages, std::vector<uint32_t> result_query,
    std::vector<size_t> required_per_query, std::vector<BaseTupleSpec> base_tuples,
    ProblemOptions options) {
  if (arena == nullptr) return Status::InvalidArgument("lineage arena must not be null");
  if (options.delta <= 0.0 || options.delta > 1.0) {
    return Status::InvalidArgument(StrFormat("delta %g outside (0, 1]", options.delta));
  }
  if (options.beta < 0.0 || options.beta > 1.0) {
    return Status::InvalidArgument(StrFormat("beta %g outside [0, 1]", options.beta));
  }
  if (required_per_query.empty()) {
    return Status::InvalidArgument("at least one query is required");
  }
  if (result_query.empty()) {
    result_query.assign(result_lineages.size(), 0);
  }
  if (result_query.size() != result_lineages.size()) {
    return Status::InvalidArgument(
        StrFormat("result_query size %zu != results %zu", result_query.size(),
                  result_lineages.size()));
  }

  IncrementProblem p;
  p.arena_ = std::move(arena);
  p.options_ = options;
  p.result_query_ = std::move(result_query);
  p.required_ = std::move(required_per_query);

  // Validate queries and per-query capacity.
  std::vector<size_t> results_per_query(p.required_.size(), 0);
  for (uint32_t q : p.result_query_) {
    if (q >= p.required_.size()) {
      return Status::InvalidArgument(
          StrFormat("result assigned to query %u but only %zu queries declared", q,
                    p.required_.size()));
    }
    ++results_per_query[q];
  }
  for (size_t q = 0; q < p.required_.size(); ++q) {
    if (p.required_[q] > results_per_query[q]) {
      return Status::InvalidArgument(
          StrFormat("query %zu requires %zu results but only has %zu", q, p.required_[q],
                    results_per_query[q]));
    }
  }

  // Register base tuples.
  std::unordered_map<LineageVarId, uint32_t> index_of;
  index_of.reserve(base_tuples.size());
  for (size_t i = 0; i < base_tuples.size(); ++i) {
    BaseTupleSpec& spec = base_tuples[i];
    if (!spec.cost) spec.cost = DefaultCostFunction();
    spec.confidence = ClampProbability(spec.confidence);
    spec.max_confidence = ClampProbability(spec.max_confidence);
    if (spec.max_confidence < spec.confidence) {
      return Status::InvalidArgument(
          StrFormat("base tuple %llu: max_confidence %g below confidence %g",
                    static_cast<unsigned long long>(spec.id), spec.max_confidence,
                    spec.confidence));
    }
    if (!index_of.emplace(spec.id, static_cast<uint32_t>(i)).second) {
      return Status::InvalidArgument(StrFormat(
          "duplicate base tuple id %llu", static_cast<unsigned long long>(spec.id)));
    }
  }
  p.base_ = std::move(base_tuples);
  p.results_of_base_.resize(p.base_.size());
  p.bases_of_result_.resize(result_lineages.size());

  // Compile lineages: one pass per result, memoizing arena nodes so shared
  // subformulas compile once.
  std::unordered_map<LineageRef, uint32_t> compiled;
  // Recursive lambda via explicit stack-free recursion helper.
  struct Compiler {
    const LineageArena& arena;
    const std::unordered_map<LineageVarId, uint32_t>& index_of;
    std::unordered_map<LineageRef, uint32_t>& memo;
    IncrementProblem& p;

    Result<uint32_t> Compile(LineageRef ref) {  // NOLINT(misc-no-recursion)
      auto it = memo.find(ref);
      if (it != memo.end()) return it->second;
      CNode node;
      node.op = arena.op(ref);
      switch (node.op) {
        case LineageOp::kVar: {
          auto idx = index_of.find(arena.var(ref));
          if (idx == index_of.end()) {
            return Status::InvalidArgument(
                StrFormat("lineage mentions base tuple %llu not present in the problem",
                          static_cast<unsigned long long>(arena.var(ref))));
          }
          node.var = idx->second;
          break;
        }
        case LineageOp::kTrue:
        case LineageOp::kFalse:
          break;
        case LineageOp::kNot:
          p.monotone_ = false;
          [[fallthrough]];
        case LineageOp::kAnd:
        case LineageOp::kOr: {
          std::vector<uint32_t> kids;
          kids.reserve(arena.children(ref).size());
          for (LineageRef c : arena.children(ref)) {
            PCQE_ASSIGN_OR_RETURN(uint32_t k, Compile(c));
            kids.push_back(k);
          }
          node.child_begin = static_cast<uint32_t>(p.child_pool_.size());
          node.child_count = static_cast<uint32_t>(kids.size());
          p.child_pool_.insert(p.child_pool_.end(), kids.begin(), kids.end());
          break;
        }
      }
      uint32_t id = static_cast<uint32_t>(p.cnodes_.size());
      p.cnodes_.push_back(node);
      memo.emplace(ref, id);
      return id;
    }
  } compiler{*p.arena_, index_of, compiled, p};

  p.result_roots_.reserve(result_lineages.size());
  p.result_lineage_ = result_lineages;
  for (size_t r = 0; r < result_lineages.size(); ++r) {
    PCQE_ASSIGN_OR_RETURN(uint32_t root, compiler.Compile(result_lineages[r]));
    p.result_roots_.push_back(root);
    // Inverted index from the arena's variable listing.
    std::vector<LineageVarId> vars = p.arena_->Variables(result_lineages[r]);
    std::vector<uint32_t>& bases = p.bases_of_result_[r];
    bases.reserve(vars.size());
    for (LineageVarId v : vars) bases.push_back(index_of.at(v));
    std::sort(bases.begin(), bases.end());
    bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
    for (uint32_t b : bases) p.results_of_base_[b].push_back(static_cast<uint32_t>(r));
  }
  return p;
}

Result<IncrementProblem> IncrementProblem::BuildSingle(
    std::shared_ptr<const LineageArena> arena,
    const std::vector<LineageRef>& result_lineages, std::vector<BaseTupleSpec> base_tuples,
    size_t required, ProblemOptions options) {
  return Build(std::move(arena), result_lineages, {}, {required}, std::move(base_tuples),
               options);
}

double IncrementProblem::EvalNode(uint32_t node, const std::vector<double>& probs) const {
  const CNode& n = cnodes_[node];
  switch (n.op) {
    case LineageOp::kFalse:
      return 0.0;
    case LineageOp::kTrue:
      return 1.0;
    case LineageOp::kVar:
      return probs[n.var];
    case LineageOp::kNot:
      return 1.0 - EvalNode(child_pool_[n.child_begin], probs);
    case LineageOp::kAnd: {
      double p = 1.0;
      for (uint32_t c = 0; c < n.child_count; ++c) {
        p *= EvalNode(child_pool_[n.child_begin + c], probs);
        if (p == 0.0) break;
      }
      return p;
    }
    case LineageOp::kOr: {
      double q = 1.0;
      for (uint32_t c = 0; c < n.child_count; ++c) {
        q *= 1.0 - EvalNode(child_pool_[n.child_begin + c], probs);
        if (q == 0.0) break;
      }
      return 1.0 - q;
    }
  }
  return 0.0;
}

double IncrementProblem::EvalResult(size_t r, const std::vector<double>& probs) const {
  return EvalNode(result_roots_[r], probs);
}

size_t IncrementProblem::NumSteps(size_t i) const {
  const BaseTupleSpec& b = base_[i];
  double range = b.max_confidence - b.confidence;
  if (range <= kEpsilon) return 0;
  size_t full = StepsBetween(b.confidence, b.max_confidence, options_.delta);
  // A trailing fractional step lands exactly on the ceiling.
  double reached = b.confidence + static_cast<double>(full) * options_.delta;
  return reached + kEpsilon < b.max_confidence ? full + 1 : full;
}

double IncrementProblem::ValueAtStep(size_t i, size_t steps) const {
  const BaseTupleSpec& b = base_[i];
  double v = b.confidence + static_cast<double>(steps) * options_.delta;
  return std::min(v, b.max_confidence);
}

std::vector<double> IncrementProblem::InitialProbs() const {
  std::vector<double> probs;
  probs.reserve(base_.size());
  for (const BaseTupleSpec& b : base_) probs.push_back(b.confidence);
  return probs;
}

Result<size_t> IncrementProblem::BaseIndexOf(LineageVarId id) const {
  for (size_t i = 0; i < base_.size(); ++i) {
    if (base_[i].id == id) return i;
  }
  return Status::NotFound(
      StrFormat("base tuple %llu not in problem", static_cast<unsigned long long>(id)));
}

ConfidenceState::ConfidenceState(const IncrementProblem& problem)
    : problem_(&problem),
      probs_(problem.InitialProbs()),
      result_conf_(problem.num_results(), 0.0),
      satisfied_(problem.num_queries(), 0) {
  for (size_t r = 0; r < problem.num_results(); ++r) {
    result_conf_[r] = problem.EvalResult(r, probs_);
    if (ClearsThreshold(result_conf_[r], problem.beta())) {
      ++satisfied_[problem.query_of_result(r)];
      ++total_satisfied_;
    }
  }
}

bool ConfidenceState::Feasible() const {
  for (size_t q = 0; q < satisfied_.size(); ++q) {
    if (satisfied_[q] < problem_->required(q)) return false;
  }
  return true;
}

size_t ConfidenceState::Deficit(size_t q) const {
  size_t req = problem_->required(q);
  return satisfied_[q] >= req ? 0 : req - satisfied_[q];
}

size_t ConfidenceState::TotalDeficit() const {
  size_t total = 0;
  for (size_t q = 0; q < satisfied_.size(); ++q) total += Deficit(q);
  return total;
}

double ConfidenceState::ProbeResult(size_t r, size_t i, double value) {
  double saved = probs_[i];
  probs_[i] = value;
  double f = problem_->EvalResult(r, probs_);
  probs_[i] = saved;
  return f;
}

void ConfidenceState::SetProb(size_t i, double p) {
  double old = probs_[i];
  if (ApproxEqual(old, p)) return;
  total_cost_ += problem_->CostLevel(i, p) - problem_->CostLevel(i, old);
  probs_[i] = p;
  double beta = problem_->beta();
  for (uint32_t r : problem_->results_of_base(i)) {
    bool was = ClearsThreshold(result_conf_[r], beta);
    result_conf_[r] = problem_->EvalResult(r, probs_);
    bool now = ClearsThreshold(result_conf_[r], beta);
    if (was != now) {
      size_t q = problem_->query_of_result(r);
      if (now) {
        ++satisfied_[q];
        ++total_satisfied_;
      } else {
        --satisfied_[q];
        --total_satisfied_;
      }
    }
  }
}

}  // namespace pcqe
