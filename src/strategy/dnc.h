// Copyright (c) PCQE contributors.
// Divide-and-conquer solver (paper §4.3, Figure 10).

#ifndef PCQE_STRATEGY_DNC_H_
#define PCQE_STRATEGY_DNC_H_

#include "common/result.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "strategy/partition.h"
#include "strategy/problem.h"
#include "strategy/solution.h"

namespace pcqe {

/// Groups per speculation wave of the multi-query fill. A
/// lane-count-independent constant: wave boundaries (where the global-state
/// snapshot is taken and invalidations are counted) must not move with
/// `SolverParallelism`, or `SolverEffort` counters would differ between
/// lane counts.
inline constexpr size_t kDncWaveWidth = 8;

/// \brief Options for the divide-and-conquer solver.
struct DncOptions {
  /// Graph-partitioning parameters (γ and the group-size cap).
  PartitionOptions partition;
  /// Per-group greedy configuration.
  GreedyOptions greedy;
  /// τ: groups with fewer base tuples than this also get an exact
  /// branch-and-bound pass, seeded with the group's greedy cost as the
  /// initial upper bound. 0 disables the heuristic pass entirely.
  size_t tau = 12;
  /// Budgets for each per-group heuristic pass (Figure 10 notes each
  /// sub-problem must stay "solvable in reasonable time").
  size_t heuristic_max_nodes = 2'000'000;
  double heuristic_max_seconds = 0.5;
  /// Lane budget for the group-level fan-out: single-query curve builds run
  /// fully concurrently (the global state is read-only during that phase);
  /// multi-query sub-solves run speculatively in fixed-width waves of
  /// `kDncWaveWidth` groups against a snapshot and are applied — after
  /// validation, re-solving when an earlier apply invalidated the
  /// speculation — in group order. Both paths produce bit-identical
  /// solutions *and `SolverEffort` counters* at any setting (a wasted
  /// speculative lane is not counted; the sequential path counts the same
  /// invalidations against its wave-start snapshot); per-group sub-solvers
  /// always run sequentially (the group grid is the parallel axis). The
  /// global top-up `GreedyRaise` inherits this budget for its gain
  /// precompute.
  SolverParallelism parallelism;
  /// Absolute budget, folded into every sub-solver (group greedy, bounded
  /// exact tails, top-up, refinement) and polled at wave/phase boundaries.
  /// On expiry the merged partial — whatever the applied group solves have
  /// contributed so far — is returned tagged `partial`. Deadline-stopped
  /// runs are exempt from the lane-count determinism contract (where the
  /// budget lands depends on scheduling), exactly like node-budget aborts.
  Deadline deadline;
  /// Optional caller-owned cancellation flag, same poll points.
  const CancelToken* cancel = nullptr;
};

/// \brief Partition → per-group solve → combine → refine.
///
/// 1. Results are partitioned by shared base tuples (`PartitionResults`).
/// 2. Groups are processed in descending result count; each group is posed
///    as a sub-problem over the group's still-unsatisfied results — capped
///    at the remaining global requirement — and solved with the greedy
///    algorithm (plus a bounded heuristic search when the group has fewer
///    than τ base tuples).
/// 3. Sub-solutions are combined: each shared base tuple takes the maximum
///    confidence any group assigned it (sub-problems start from the running
///    global state, so the maximum is simply the latest value).
/// 4. A global `RefineDown` pass removes increments made redundant by the
///    combination (paper: "a refinement process similar to the second phase
///    of the greedy algorithm").
[[nodiscard]] Result<IncrementSolution> SolveDnc(const IncrementProblem& problem,
                                   const DncOptions& options = {});

}  // namespace pcqe

#endif  // PCQE_STRATEGY_DNC_H_
