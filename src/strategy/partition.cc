#include "strategy/partition.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/logging.h"

namespace pcqe {

namespace {

std::vector<uint32_t> SortedUnion(const std::vector<uint32_t>& a,
                                  const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

size_t UnionSize(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
    ++n;
  }
  return n + (a.size() - i) + (b.size() - j);
}

}  // namespace

std::vector<PartitionGroup> PartitionResults(const IncrementProblem& problem,
                                             const PartitionOptions& options) {
  const size_t n = problem.num_results();

  // Singleton groups.
  std::vector<std::vector<uint32_t>> members(n);
  std::vector<std::vector<uint32_t>> bases(n);
  std::vector<bool> alive(n, true);
  std::vector<uint32_t> version(n, 0);
  for (size_t r = 0; r < n; ++r) {
    members[r] = {static_cast<uint32_t>(r)};
    bases[r] = problem.bases_of_result(r);  // already sorted unique
  }

  // Pairwise shared-base counts, materialized only for co-occurring pairs.
  std::vector<std::unordered_map<uint32_t, double>> adj(n);
  for (size_t b = 0; b < problem.num_base_tuples(); ++b) {
    const std::vector<uint32_t>& rs = problem.results_of_base(b);
    for (size_t i = 0; i < rs.size(); ++i) {
      for (size_t j = i + 1; j < rs.size(); ++j) {
        adj[rs[i]][rs[j]] += 1.0;
        adj[rs[j]][rs[i]] += 1.0;
      }
    }
  }

  struct Edge {
    double weight;
    uint32_t a, b;
    uint32_t va, vb;
    bool operator<(const Edge& other) const { return weight < other.weight; }
  };
  std::priority_queue<Edge> heap;
  for (uint32_t a = 0; a < n; ++a) {
    for (const auto& [b, w] : adj[a]) {
      if (a < b) heap.push({w, a, b, 0, 0});
    }
  }

  while (!heap.empty()) {
    Edge e = heap.top();
    heap.pop();
    if (!alive[e.a] || !alive[e.b] || version[e.a] != e.va || version[e.b] != e.vb) {
      continue;  // stale
    }
    if (e.weight < options.gamma) break;  // heaviest edge below γ: done

    // Requirement 1: respect the per-group base-tuple cap.
    if (options.max_group_base_tuples > 0 &&
        UnionSize(bases[e.a], bases[e.b]) > options.max_group_base_tuples) {
      // Discard this merge permanently (until either endpoint changes, at
      // which point a fresh edge will have been pushed).
      adj[e.a].erase(e.b);
      adj[e.b].erase(e.a);
      continue;
    }

    // Absorb the smaller group into the larger.
    uint32_t a = e.a, b = e.b;
    if (members[a].size() < members[b].size()) std::swap(a, b);
    alive[b] = false;
    ++version[a];
    ++version[b];
    members[a].insert(members[a].end(), members[b].begin(), members[b].end());
    bases[a] = SortedUnion(bases[a], bases[b]);
    members[b].clear();
    bases[b].clear();

    // Fold b's edges into a, summing weights on common neighbors.
    adj[a].erase(b);
    adj[b].erase(a);
    for (const auto& [nbr, w] : adj[b]) {
      adj[a][nbr] += w;
      adj[nbr].erase(b);
      adj[nbr][a] = adj[a][nbr];
    }
    adj[b].clear();
    // All of a's edges carry a's new version.
    for (const auto& [nbr, w] : adj[a]) {
      heap.push({w, a, nbr, version[a], version[nbr]});
    }
  }

  std::vector<PartitionGroup> groups;
  for (size_t g = 0; g < n; ++g) {
    if (!alive[g]) continue;
    PartitionGroup group;
    group.results = std::move(members[g]);
    std::sort(group.results.begin(), group.results.end());
    group.base_tuples = std::move(bases[g]);
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace pcqe
