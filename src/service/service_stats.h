// Copyright (c) PCQE contributors.
// Built-in counters for the query service: request accounting, cache
// effectiveness, queue pressure and a latency histogram. Since the
// telemetry subsystem landed these are registry-backed instruments
// (`pcqe_service_*`), so the same numbers appear in the snapshot API below
// and in `TelemetryRegistry::RenderText()`.

#ifndef PCQE_SERVICE_SERVICE_STATS_H_
#define PCQE_SERVICE_SERVICE_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "telemetry/metrics.h"

namespace pcqe {

/// Upper bounds (inclusive) of the end-to-end latency histogram buckets, in
/// microseconds. The last bucket is unbounded.
inline constexpr std::array<uint64_t, 8> kLatencyBucketBoundsUs = {
    100, 1'000, 5'000, 20'000, 100'000, 500'000, 2'000'000, UINT64_MAX};

/// \brief A coherent-enough point-in-time copy of every counter, safe to
/// read, format and compare after the service has moved on. Counters are
/// sampled individually (no global pause), so sums may be momentarily off by
/// in-flight requests; once the service is idle they reconcile exactly:
/// `submitted == served + failed + rejected + expired + shutdown_dropped`.
struct ServiceStatsSnapshot {
  uint64_t submitted = 0;        ///< Requests accepted into the queue.
  uint64_t served = 0;           ///< Completed with an OK outcome.
  uint64_t failed = 0;           ///< Completed with a non-OK engine status.
  uint64_t rejected = 0;         ///< Refused at admission (queue full or shed).
  uint64_t expired = 0;          ///< Deadline passed while queued.
  uint64_t shutdown_dropped = 0; ///< Still queued when the service stopped.
  /// Breakdown and side counters outside the `submitted` identity: `shed` is
  /// the subset of `rejected` refused at the overload watermark (before the
  /// queue was full); `retried` counts blocking-`Submit` re-attempts after a
  /// retryable rejection (attempts, not requests); `partial_results` counts
  /// served outcomes whose proposal carried an anytime (partial) plan;
  /// `solve_deadline_exceeded` the subset stopped by the request deadline.
  uint64_t shed = 0;
  uint64_t retried = 0;
  uint64_t partial_results = 0;
  uint64_t solve_deadline_exceeded = 0;
  uint64_t policy_blocked_rows = 0;  ///< Rows withheld by confidence policy.
  uint64_t released_rows = 0;        ///< Rows released to subjects.
  uint64_t proposals = 0;        ///< Outcomes that carried a costed proposal.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  size_t queue_depth = 0;        ///< Requests waiting at snapshot time.
  size_t active_sessions = 0;
  std::array<uint64_t, kLatencyBucketBoundsUs.size()> latency_buckets{};

  /// Hit fraction over all cache lookups; 0 when none happened yet.
  double cache_hit_rate() const {
    uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) / static_cast<double>(lookups);
  }

  /// Multi-line human-readable rendering (for the shell's `.stats`).
  std::string ToString() const;
};

/// \brief The service's request counters as cached registry instruments
/// (`pcqe_service_*`). All increments are relaxed atomics on the instrument
/// — the hot path takes no lock and publishes no other memory. The registry
/// must outlive this object.
class ServiceStats {
 public:
  explicit ServiceStats(TelemetryRegistry* registry);

  void OnSubmitted() { submitted_->Increment(); }
  void OnRejected() { rejected_->Increment(); }
  /// Overload shed: a kind of admission rejection (both counters move, so
  /// the snapshot identity keeps holding and `shed` stays a breakdown).
  void OnShed() {
    rejected_->Increment();
    shed_->Increment();
  }
  void OnRetried() { retried_->Increment(); }
  void OnExpired() { expired_->Increment(); }
  void OnShutdownDropped() { shutdown_dropped_->Increment(); }
  void OnFailed() { failed_->Increment(); }
  void OnPartialResult() { partial_results_->Increment(); }
  void OnSolveDeadlineExceeded() { solve_deadline_exceeded_->Increment(); }

  void OnServed(size_t released, size_t blocked, bool proposal) {
    served_->Increment();
    released_rows_->Increment(released);
    policy_blocked_rows_->Increment(blocked);
    if (proposal) proposals_->Increment();
  }

  void RecordLatencyUs(uint64_t us) { latency_us_->Observe(static_cast<double>(us)); }

  /// Copies the request-side counters into `out` (cache and queue fields are
  /// filled in by the service, which owns those components).
  void FillSnapshot(ServiceStatsSnapshot* out) const;

 private:
  Counter* submitted_;
  Counter* served_;
  Counter* failed_;
  Counter* rejected_;
  Counter* shed_;
  Counter* retried_;
  Counter* expired_;
  Counter* shutdown_dropped_;
  Counter* partial_results_;
  Counter* solve_deadline_exceeded_;
  Counter* policy_blocked_rows_;
  Counter* released_rows_;
  Counter* proposals_;
  Histogram* latency_us_;
};

}  // namespace pcqe

#endif  // PCQE_SERVICE_SERVICE_STATS_H_
