// Copyright (c) PCQE contributors.
// Built-in counters for the query service: request accounting, cache
// effectiveness, queue pressure and a latency histogram.

#ifndef PCQE_SERVICE_SERVICE_STATS_H_
#define PCQE_SERVICE_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pcqe {

/// Upper bounds (inclusive) of the end-to-end latency histogram buckets, in
/// microseconds. The last bucket is unbounded.
inline constexpr std::array<uint64_t, 8> kLatencyBucketBoundsUs = {
    100, 1'000, 5'000, 20'000, 100'000, 500'000, 2'000'000, UINT64_MAX};

/// \brief A coherent-enough point-in-time copy of every counter, safe to
/// read, format and compare after the service has moved on. Counters are
/// sampled individually (no global pause), so sums may be momentarily off by
/// in-flight requests; once the service is idle they reconcile exactly:
/// `submitted == served + failed + rejected + expired + shutdown_dropped`.
struct ServiceStatsSnapshot {
  uint64_t submitted = 0;        ///< Requests accepted into the queue.
  uint64_t served = 0;           ///< Completed with an OK outcome.
  uint64_t failed = 0;           ///< Completed with a non-OK engine status.
  uint64_t rejected = 0;         ///< Refused at admission (queue full).
  uint64_t expired = 0;          ///< Deadline passed while queued.
  uint64_t shutdown_dropped = 0; ///< Still queued when the service stopped.
  uint64_t policy_blocked_rows = 0;  ///< Rows withheld by confidence policy.
  uint64_t released_rows = 0;        ///< Rows released to subjects.
  uint64_t proposals = 0;        ///< Outcomes that carried a costed proposal.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  size_t queue_depth = 0;        ///< Requests waiting at snapshot time.
  size_t active_sessions = 0;
  std::array<uint64_t, kLatencyBucketBoundsUs.size()> latency_buckets{};

  /// Hit fraction over all cache lookups; 0 when none happened yet.
  double cache_hit_rate() const {
    uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) / static_cast<double>(lookups);
  }

  /// Multi-line human-readable rendering (for the shell's `.stats`).
  std::string ToString() const;
};

/// \brief Lock-free counter block shared by every worker thread. All
/// increments are relaxed: counters are monotonic and independent, no other
/// memory is published through them.
class ServiceStats {
 public:
  void OnSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void OnRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void OnExpired() { expired_.fetch_add(1, std::memory_order_relaxed); }
  void OnShutdownDropped() { shutdown_dropped_.fetch_add(1, std::memory_order_relaxed); }
  void OnFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }

  void OnServed(size_t released, size_t blocked, bool proposal) {
    served_.fetch_add(1, std::memory_order_relaxed);
    released_rows_.fetch_add(released, std::memory_order_relaxed);
    policy_blocked_rows_.fetch_add(blocked, std::memory_order_relaxed);
    if (proposal) proposals_.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordLatencyUs(uint64_t us) {
    for (size_t b = 0; b < kLatencyBucketBoundsUs.size(); ++b) {
      if (us <= kLatencyBucketBoundsUs[b]) {
        latency_buckets_[b].fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Copies the request-side counters into `out` (cache and queue fields are
  /// filled in by the service, which owns those components).
  void FillSnapshot(ServiceStatsSnapshot* out) const {
    out->submitted = submitted_.load(std::memory_order_relaxed);
    out->served = served_.load(std::memory_order_relaxed);
    out->failed = failed_.load(std::memory_order_relaxed);
    out->rejected = rejected_.load(std::memory_order_relaxed);
    out->expired = expired_.load(std::memory_order_relaxed);
    out->shutdown_dropped = shutdown_dropped_.load(std::memory_order_relaxed);
    out->policy_blocked_rows = policy_blocked_rows_.load(std::memory_order_relaxed);
    out->released_rows = released_rows_.load(std::memory_order_relaxed);
    out->proposals = proposals_.load(std::memory_order_relaxed);
    for (size_t b = 0; b < latency_buckets_.size(); ++b) {
      out->latency_buckets[b] = latency_buckets_[b].load(std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> shutdown_dropped_{0};
  std::atomic<uint64_t> policy_blocked_rows_{0};
  std::atomic<uint64_t> released_rows_{0};
  std::atomic<uint64_t> proposals_{0};
  std::array<std::atomic<uint64_t>, kLatencyBucketBoundsUs.size()> latency_buckets_{};
};

}  // namespace pcqe

#endif  // PCQE_SERVICE_SERVICE_STATS_H_
