#include "service/result_cache.h"

#include <cctype>

namespace pcqe {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  for (char c : sql) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) out.pop_back();
  return out;
}

void ConfidenceResultCache::AttachTelemetry(TelemetryRegistry* registry) {
  MutexLock guard(mu_);
  hits_counter_ = registry->GetCounter("pcqe_cache_hits_total",
                                       "Confidence-result cache lookup hits");
  misses_counter_ = registry->GetCounter("pcqe_cache_misses_total",
                                         "Confidence-result cache lookup misses");
  evictions_counter_ = registry->GetCounter(
      "pcqe_cache_evictions_total", "Entries evicted by the LRU capacity bound");
  invalidations_counter_ = registry->GetCounter(
      "pcqe_cache_invalidations_total", "Entries dropped by explicit Clear()");
}

std::shared_ptr<const QueryResult> ConfidenceResultCache::Lookup(
    const std::string& normalized_sql, uint64_t version) {
  MutexLock guard(mu_);
  auto it = index_.find(Key(normalized_sql, version));
  if (it == index_.end()) {
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->Increment();
    return nullptr;
  }
  ++hits_;
  if (hits_counter_ != nullptr) hits_counter_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

std::shared_ptr<const QueryResult> ConfidenceResultCache::Insert(
    const std::string& normalized_sql, uint64_t version, QueryResult result) {
  auto shared = std::make_shared<const QueryResult>(std::move(result));
  if (capacity_ == 0) return shared;
  MutexLock guard(mu_);
  Key key(normalized_sql, version);
  if (auto it = index_.find(key); it != index_.end()) {
    it->second->second = shared;
    lru_.splice(lru_.begin(), lru_, it->second);
    return shared;
  }
  lru_.emplace_front(key, shared);
  index_.emplace(std::move(key), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    if (evictions_counter_ != nullptr) evictions_counter_->Increment();
  }
  return shared;
}

void ConfidenceResultCache::Clear() {
  MutexLock guard(mu_);
  if (invalidations_counter_ != nullptr) {
    invalidations_counter_->Increment(lru_.size());
  }
  lru_.clear();
  index_.clear();
}

ConfidenceResultCache::Stats ConfidenceResultCache::stats() const {
  MutexLock guard(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  return s;
}

}  // namespace pcqe
