// Copyright (c) PCQE contributors.
// Cross-request cache of policy-independent query evaluations.
//
// Lineage-based confidence computation is the expensive step of the PCQE
// pipeline (exact confidence computation in probabilistic databases is
// #P-hard in general), while the per-subject part — policy resolution and
// threshold filtering — is linear in the result size. The cache therefore
// stores the *pre-policy* `QueryResult`: two sessions with different
// thresholds β share one lineage evaluation and diverge only at the cheap
// filter.
//
// Invalidation protocol: keys embed the catalog's confidence-version, which
// `AcceptProposal` bumps on every committed increment. Entries computed
// against older confidences simply stop matching and age out of the LRU; no
// component ever has to enumerate or clear them.

#ifndef PCQE_SERVICE_RESULT_CACHE_H_
#define PCQE_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/annotations.h"
#include "query/query_engine.h"
#include "telemetry/metrics.h"

namespace pcqe {

/// Canonicalizes SQL text for cache keying: collapses whitespace runs to one
/// space, trims the ends and drops a trailing ';'. Deliberately conservative
/// — it never changes case (string literals are case-sensitive), so two
/// queries differing only in keyword case occupy two entries.
std::string NormalizeSql(const std::string& sql);

/// \brief Thread-safe LRU cache from (normalized SQL, confidence-version) to
/// a shared, immutable `QueryResult`.
///
/// Entries are handed out as `shared_ptr<const QueryResult>`, so a reader
/// keeps its result alive even if the entry is evicted mid-request.
class ConfidenceResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  /// `capacity` is the maximum entry count; 0 disables caching (every
  /// lookup misses, inserts are dropped).
  explicit ConfidenceResultCache(size_t capacity) : capacity_(capacity) {}

  ConfidenceResultCache(const ConfidenceResultCache&) = delete;
  ConfidenceResultCache& operator=(const ConfidenceResultCache&) = delete;

  /// Mirrors hit/miss/eviction/invalidation counts onto `pcqe_cache_*`
  /// registry counters (the internal `Stats` keep working either way).
  /// Explicit `Clear()` drops count as invalidations; version-stale entries
  /// that merely age out of the LRU are indistinguishable from capacity
  /// evictions and count as such. The registry must outlive the cache.
  void AttachTelemetry(TelemetryRegistry* registry);

  /// Returns the cached evaluation for (`normalized_sql`, `version`), or
  /// null on a miss. A hit refreshes the entry's LRU position.
  std::shared_ptr<const QueryResult> Lookup(const std::string& normalized_sql,
                                            uint64_t version);

  /// Stores an evaluation and returns the shared handle (also when capacity
  /// is 0, in which case nothing is retained). Re-inserting an existing key
  /// replaces the entry.
  std::shared_ptr<const QueryResult> Insert(const std::string& normalized_sql,
                                            uint64_t version, QueryResult result);

  /// Drops every entry (e.g. after out-of-band catalog edits the version
  /// counter does not cover, such as bulk CSV loads).
  void Clear();

  Stats stats() const;

 private:
  using Key = std::pair<std::string, uint64_t>;
  using Entry = std::pair<Key, std::shared_ptr<const QueryResult>>;

  mutable Mutex mu_;
  size_t capacity_;
  // front = most recently used
  std::list<Entry> lru_ PCQE_GUARDED_BY(mu_);
  std::map<Key, std::list<Entry>::iterator> index_ PCQE_GUARDED_BY(mu_);
  uint64_t hits_ PCQE_GUARDED_BY(mu_) = 0;
  uint64_t misses_ PCQE_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ PCQE_GUARDED_BY(mu_) = 0;
  // Registry mirrors; null until AttachTelemetry.
  Counter* hits_counter_ PCQE_GUARDED_BY(mu_) = nullptr;
  Counter* misses_counter_ PCQE_GUARDED_BY(mu_) = nullptr;
  Counter* evictions_counter_ PCQE_GUARDED_BY(mu_) = nullptr;
  Counter* invalidations_counter_ PCQE_GUARDED_BY(mu_) = nullptr;
};

}  // namespace pcqe

#endif  // PCQE_SERVICE_RESULT_CACHE_H_
