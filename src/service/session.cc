#include "service/session.h"

#include <utility>

#include "common/string_util.h"

namespace pcqe {

std::string SessionHandle::ToString() const {
  return StrFormat("session %llu: %s/%s (beta=%s)",
                   static_cast<unsigned long long>(id), user.c_str(),
                   purpose.c_str(), FormatDouble(base_decision.threshold).c_str());
}

Result<SessionHandle> SessionManager::Open(const RoleGraph& roles,
                                           const PolicyStore& policies,
                                           const std::string& user,
                                           const std::string& purpose) {
  SessionHandle handle;
  handle.user = user;
  handle.purpose = purpose;
  // ActiveRoles authenticates: unknown users come back kNotFound.
  PCQE_ASSIGN_OR_RETURN(handle.roles, roles.ActiveRoles(user));
  PCQE_ASSIGN_OR_RETURN(handle.base_decision, policies.Resolve(roles, user, purpose));

  MutexLock guard(mu_);
  handle.id = next_id_++;
  sessions_.emplace(handle.id, handle);
  return handle;
}

Status SessionManager::Close(uint64_t id) {
  MutexLock guard(mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound(StrFormat("session %llu is not open",
                                      static_cast<unsigned long long>(id)));
  }
  return Status::OK();
}

Result<SessionHandle> SessionManager::Get(uint64_t id) const {
  MutexLock guard(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound(StrFormat("session %llu is not open",
                                      static_cast<unsigned long long>(id)));
  }
  return it->second;
}

size_t SessionManager::active_count() const {
  MutexLock guard(mu_);
  return sessions_.size();
}

}  // namespace pcqe
