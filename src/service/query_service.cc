#include "service/query_service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace pcqe {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point since) {
  return static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - since)
             .count()));
}

}  // namespace

QueryService::QueryService(PcqeEngine* engine, ServiceOptions options)
    : engine_(engine),
      options_(options),
      owned_registry_(options.registry == nullptr ? std::make_unique<TelemetryRegistry>()
                                                  : nullptr),
      owned_tracer_(options.tracer == nullptr
                        ? std::make_unique<Tracer>(options.trace_capacity)
                        : nullptr),
      owned_audit_(options.audit == nullptr
                       ? std::make_unique<AuditLog>(options.audit_capacity)
                       : nullptr),
      registry_(options.registry != nullptr ? options.registry : owned_registry_.get()),
      tracer_(options.tracer != nullptr ? options.tracer : owned_tracer_.get()),
      audit_(options.audit != nullptr ? options.audit : owned_audit_.get()),
      cache_(options.cache_capacity),
      stats_(registry_) {
  cache_.AttachTelemetry(registry_);
  tracer_->AttachTelemetry(registry_);
  audit_->AttachTelemetry(registry_);
  if (options_.execution_mode.has_value()) {
    engine_->execution_mode = *options_.execution_mode;
  }
  if (engine_->telemetry() == nullptr) {
    engine_->AttachTelemetry(registry_, tracer_);
  }
  if (engine_->audit() == nullptr) {
    engine_->AttachAudit(audit_);
  }
  queue_depth_gauge_ =
      registry_->GetGauge("pcqe_service_queue_depth", "Requests waiting for a worker");
  active_sessions_gauge_ =
      registry_->GetGauge("pcqe_service_active_sessions", "Open sessions");
  active_requests_gauge_ = registry_->GetGauge("pcqe_service_active_requests",
                                               "Requests currently executing");
  cache_entries_gauge_ =
      registry_->GetGauge("pcqe_cache_entries", "Confidence-result cache entries");
  solver_lanes_gauge_ = registry_->GetGauge(
      "pcqe_service_solver_lanes", "Solver lane budget of the most recent request");
  pool_queue_depth_gauge_ = registry_->GetGauge("pcqe_threadpool_queue_depth",
                                                "Shared pool tasks awaiting a worker");
  pool_busy_workers_gauge_ = registry_->GetGauge(
      "pcqe_threadpool_busy_workers", "Shared pool workers executing a task");
  if (options_.durability.enabled() && engine_->storage() == nullptr) {
    owned_storage_ = std::make_unique<StorageManager>();
    Status opened;
    {
      // Exclusive: opening an existing directory recovers, which rewrites
      // the catalog wholesale.
      WriterLock lock(engine_->catalog_mu());
      opened = owned_storage_->Open(options_.durability, engine_->catalog());
    }
    if (opened.ok()) {
      storage_ = owned_storage_.get();
      storage_->AttachTelemetry(registry_);
      engine_->AttachStorage(storage_);
      // Anything cached — evaluations and confidence zone maps — predates
      // the recovered state, and the monotone confidence version cannot be
      // trusted to have moved across a replay.
      cache_.Clear();
      engine_->confidence_index()->Invalidate();
    } else {
      durability_status_ = opened.WithContext("durable storage failed to open");
      owned_storage_.reset();
      PCQE_LOG(Error) << durability_status_.ToString()
                      << "; accepts are disabled, reads still serve";
    }
  } else if (engine_->storage() != nullptr) {
    storage_ = engine_->storage();
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

QueryService::~QueryService() {
  Shutdown();
  // The engine may outlive this service; never leave it pointing at the
  // storage manager that dies with us.
  if (owned_storage_ != nullptr && engine_->storage() == owned_storage_.get()) {
    engine_->AttachStorage(nullptr);
  }
  if (owned_audit_ != nullptr && engine_->audit() == owned_audit_.get()) {
    engine_->AttachAudit(nullptr);
  }
}

Result<SessionHandle> QueryService::OpenSession(const std::string& user,
                                                const std::string& purpose) {
  // Shared lock: session opening reads role/policy configuration, which the
  // exclusive path (Accept) never touches, but holding the read lock keeps
  // the resolved β consistent with any concurrently completing requests.
  ReaderLock lock(engine_->catalog_mu());
  return sessions_.Open(*engine_->roles(), *engine_->policies(), user, purpose);
}

Status QueryService::CloseSession(uint64_t session_id) {
  return sessions_.Close(session_id);
}

Result<std::future<Result<QueryOutcome>>> QueryService::SubmitAsync(
    const SessionHandle& session, ServiceRequest request) {
  PendingRequest pending;
  pending.session = session;
  pending.request = std::move(request);
  pending.enqueued = Clock::now();
  int64_t timeout_ms = pending.request.timeout_ms > 0 ? pending.request.timeout_ms
                                                      : options_.default_timeout_ms;
  pending.deadline =
      timeout_ms > 0
          ? Deadline::At(pending.enqueued + std::chrono::milliseconds(timeout_ms))
          : Deadline::Infinite();
  std::future<Result<QueryOutcome>> future = pending.promise.get_future();

  {
    MutexLock guard(queue_mu_);
    if (!accepting_) {
      stats_.OnRejected();
      return Status::ResourceExhausted("query service is shut down");
    }
    PCQE_INJECT_FAULT(fault_sites::kAdmission);
    if (options_.shed_watermark > 0 && queue_.size() >= options_.shed_watermark) {
      stats_.OnShed();
      return Status::ResourceExhausted(
          StrFormat("service overloaded (%zu queued, shed watermark %zu); "
                    "retry later",
                    queue_.size(), options_.shed_watermark));
    }
    if (queue_.size() >= options_.queue_capacity) {
      stats_.OnRejected();
      PCQE_LOG(Warning) << "rejecting request: queue full (" << queue_.size()
                        << " pending)";
      return Status::ResourceExhausted(
          StrFormat("request queue full (%zu pending); retry later",
                    queue_.size()));
    }
    queue_.push_back(std::move(pending));
  }
  stats_.OnSubmitted();
  queue_cv_.notify_one();
  return future;
}

Result<QueryOutcome> QueryService::Submit(const SessionHandle& session,
                                          ServiceRequest request) {
  int64_t timeout_ms =
      request.timeout_ms > 0 ? request.timeout_ms : options_.default_timeout_ms;
  Deadline deadline =
      timeout_ms > 0 ? Deadline::AfterMillis(timeout_ms) : Deadline::Infinite();
  if (workers_.empty()) {
    // No workers to hand off to: run on the caller's thread.
    stats_.OnSubmitted();
    Clock::time_point start = Clock::now();
    Result<QueryOutcome> outcome = Execute(session, request, start, deadline);
    stats_.RecordLatencyUs(ElapsedUs(start));
    return outcome;
  }
  // Bounded retry with exponential backoff on retryable admission
  // rejections (queue full or shed — a shut-down service never comes
  // back, so that rejection is final). The backoff never outlives the
  // request's own deadline: sleeping past it would only convert a crisp
  // rejection into a guaranteed in-queue expiry.
  for (size_t attempt = 0;; ++attempt) {
    Result<std::future<Result<QueryOutcome>>> future = SubmitAsync(session, request);
    if (future.ok()) return future->get();
    if (!future.status().IsResourceExhausted() ||
        attempt >= options_.admission_retries) {
      return future.status();
    }
    {
      MutexLock guard(queue_mu_);
      if (!accepting_) return future.status();
    }
    int64_t backoff_ms = std::min<int64_t>(
        std::max<int64_t>(1, options_.retry_backoff_ms)
            << std::min<size_t>(attempt, 8),
        250);
    if (deadline.RemainingSeconds() * 1000.0 <= static_cast<double>(backoff_ms)) {
      return future.status();
    }
    stats_.OnRetried();
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

Result<QueryOutcome> QueryService::Execute(const SessionHandle& session,
                                           const ServiceRequest& request,
                                           Clock::time_point enqueued,
                                           Deadline deadline) {
  size_t active = active_requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  // One trace per request; the origin is submission time, so the root span
  // includes queue wait. Null when tracing is off — every span below is
  // tolerant of that.
  std::optional<TraceBuilder> trace;
  if (tracer_->enabled()) trace.emplace("request", enqueued);
  TraceBuilder* tb = trace.has_value() ? &*trace : nullptr;

  Result<QueryOutcome> outcome = [&]() -> Result<QueryOutcome> {
    ScopedSpan request_span(tb, "request");
    {
      ScopedSpan wait_span(tb, "queue-wait");
      wait_span.Annotate("wait_us", StrFormat("%llu", static_cast<unsigned long long>(
                                                          ElapsedUs(enqueued))));
    }

    // No `const PcqeEngine&` alias here: the thread-safety analysis matches
    // capability expressions syntactically, so the locked object and the
    // call targets must both spell `engine_->`.
    ReaderLock lock(engine_->catalog_mu());

    // The version is read under the same shared lock as the evaluation, so
    // a cached entry can never mix confidences from before and after an
    // interleaved Accept.
    uint64_t version = engine_->catalog()->confidence_version();

    QueryRequest engine_request;
    engine_request.sql = request.sql;
    engine_request.user = session.user;
    engine_request.purpose = session.purpose;
    engine_request.required_fraction = request.required_fraction;
    engine_request.solver = request.solver;
    engine_request.deadline = deadline;
    engine_request.cancel = request.cancel;
    engine_request.pushdown = request.pushdown;

    // A pushed evaluation omits sub-β rows, so it may only serve requests
    // that resolve to the *same* pushdown β — the key forks on it. Resolved
    // under the same shared lock as the lookup, so the decision and the
    // served entry read one catalog state.
    std::optional<double> push_beta = engine_->ResolvePushdownBeta(engine_request);
    std::string key = NormalizeSql(request.sql);
    if (push_beta.has_value()) {
      key += StrFormat("|pd=%.17g", *push_beta);
    }
    // A profiled request bypasses the cache lookup — a hit executes nothing,
    // so there would be no operator tree to report — but still populates the
    // cache for later (unprofiled) requests.
    std::shared_ptr<OperatorProfile> profile;
    if (request.profile) profile = std::make_shared<OperatorProfile>();
    std::shared_ptr<const QueryResult> evaluated;
    if (profile == nullptr) {
      ScopedSpan lookup_span(tb, "cache-lookup");
      PCQE_INJECT_FAULT(fault_sites::kCacheLookup);
      evaluated = cache_.Lookup(key, version);
      lookup_span.Annotate("hit", evaluated != nullptr ? "true" : "false");
    }
    if (evaluated == nullptr) {
      PCQE_ASSIGN_OR_RETURN(
          QueryResult fresh,
          engine_->Evaluate(request.sql, tb, profile.get(), push_beta));
      // The cache shares one entry (and its lineage arena) across concurrent
      // completions read-only; interning deferred lineage on demand would be
      // a write. Box it here, while this thread still owns the result.
      fresh.MaterializeLineage();
      evaluated = cache_.Insert(key, version, std::move(fresh));
    }

    if (options_.adaptive_solver_lanes) {
      // Share the hardware between in-flight requests: a lone request fans
      // the solver out to the engine's full budget, a saturated service
      // degrades toward one lane each. Counters and solutions are
      // lane-count independent, so this only trades wall clock.
      size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
      size_t budget = engine_->solver_parallelism.Resolve();
      size_t lanes = std::max<size_t>(
          1, std::min(budget, hw / std::max<size_t>(1, active)));
      engine_request.solver_lanes = SolverParallelism{lanes};
      solver_lanes_gauge_->Set(static_cast<int64_t>(lanes));
    }
    // Completion copies the shared evaluation into the outcome: rows are
    // duplicated, the lineage arena is shared by shared_ptr and read-only.
    PCQE_ASSIGN_OR_RETURN(QueryOutcome completed,
                          engine_->Complete(engine_request, *evaluated, tb));
    completed.profile = std::move(profile);
    return completed;
  }();

  if (outcome.ok()) {
    size_t released = outcome->released.size();
    stats_.OnServed(released, outcome->intermediate.rows.size() - released,
                    outcome->proposal.needed);
    if (outcome->proposal.partial) {
      stats_.OnPartialResult();
      if (outcome->proposal.stop == SolveStop::kDeadline) {
        stats_.OnSolveDeadlineExceeded();
      }
    }
  } else {
    stats_.OnFailed();
  }
  if (trace.has_value()) {
    uint64_t trace_id = tracer_->Record(trace->Finish());
    if (outcome.ok()) outcome->trace_id = trace_id;
  }
  active_requests_.fetch_sub(1, std::memory_order_relaxed);
  return outcome;
}

void QueryService::Process(PendingRequest pending) {
  if (FaultInjector::Global().enabled()) {
    Status injected = FaultInjector::Global().Probe(fault_sites::kWorkerProcess);
    if (!injected.ok()) {
      stats_.OnFailed();
      pending.promise.set_value(std::move(injected));
      return;
    }
  }
  if (pending.deadline.Expired()) {
    stats_.OnExpired();
    PCQE_LOG(Warning) << "request expired after "
                      << ElapsedUs(pending.enqueued) / 1000 << "ms in queue";
    pending.promise.set_value(Status::ResourceExhausted(
        StrFormat("deadline expired after %llums in queue",
                  static_cast<unsigned long long>(
                      ElapsedUs(pending.enqueued) / 1000))));
    return;
  }
  Result<QueryOutcome> outcome =
      Execute(pending.session, pending.request, pending.enqueued, pending.deadline);
  stats_.RecordLatencyUs(ElapsedUs(pending.enqueued));
  pending.promise.set_value(std::move(outcome));
}

void QueryService::WorkerLoop(std::stop_token stop) {
  while (true) {
    PendingRequest pending;
    {
      MutexLock lock(queue_mu_);
      // Wakes on new work or stop; after a stop request the predicate still
      // wins while the queue is non-empty, so shutdown drains gracefully.
      bool has_work = queue_cv_.wait(lock, stop, [this] { return HasPendingRequest(); });
      if (!has_work) return;  // stop requested and queue drained
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Process(std::move(pending));
  }
}

Status QueryService::Accept(const StrategyProposal& proposal) {
  // Fail-safe: with durability configured but broken, refusing the accept
  // beats committing confidence changes that would vanish on restart.
  if (!durability_status_.ok()) return durability_status_;
  // Exclusive: the single writer. AcceptProposal routes every confidence
  // write through Catalog::SetConfidence, which bumps the version and thus
  // retires all cached evaluations keyed on the old one.
  WriterLock lock(engine_->catalog_mu());
  return engine_->AcceptProposal(proposal);
}

Status QueryService::Checkpoint() {
  if (!durability_status_.ok()) return durability_status_;
  if (storage_ == nullptr) {
    return Status::InvalidArgument("durability is not configured");
  }
  // Shared hold: a checkpoint is a consistent read of the catalog; accepts
  // wait, concurrent queries proceed.
  ReaderLock lock(engine_->catalog_mu());
  return storage_->Checkpoint(*engine_->catalog());
}

Status QueryService::Recover() {
  if (!durability_status_.ok()) return durability_status_;
  if (storage_ == nullptr) {
    return Status::InvalidArgument("durability is not configured");
  }
  Status recovered;
  {
    WriterLock lock(engine_->catalog_mu());
    recovered = storage_->Recover();
  }
  // Even a failed recovery may have partially rewritten the catalog;
  // entries keyed on pre-recovery versions must not be served either way.
  // The confidence index needs the same treatment: replay restores durable
  // confidences but `RestoreConfidenceVersion` is monotone, so a zone map
  // built over unlogged pre-crash mutations could still validate — and a
  // stale map may wrongly *skip* rows, not just over-scan.
  cache_.Clear();
  engine_->confidence_index()->Invalidate();
  return recovered;
}

void QueryService::Shutdown() {
  {
    MutexLock guard(queue_mu_);
    if (!accepting_ && workers_.empty() && queue_.empty()) return;  // already down
    accepting_ = false;
  }
  for (std::jthread& worker : workers_) worker.request_stop();
  queue_cv_.notify_all();
  workers_.clear();  // jthread dtor joins; workers drain the queue first

  // With zero workers (test configurations) requests may still be queued:
  // fail them rather than breaking their promises.
  std::deque<PendingRequest> leftover;
  {
    MutexLock guard(queue_mu_);
    leftover.swap(queue_);
  }
  for (PendingRequest& pending : leftover) {
    stats_.OnShutdownDropped();
    pending.promise.set_value(
        Status::ResourceExhausted("query service shut down before execution"));
  }
}

ServiceStatsSnapshot QueryService::stats() const {
  ServiceStatsSnapshot snapshot;
  stats_.FillSnapshot(&snapshot);
  ConfidenceResultCache::Stats cache_stats = cache_.stats();
  snapshot.cache_hits = cache_stats.hits;
  snapshot.cache_misses = cache_stats.misses;
  snapshot.cache_evictions = cache_stats.evictions;
  snapshot.cache_entries = cache_stats.entries;
  snapshot.queue_depth = queue_depth();
  snapshot.active_sessions = sessions_.active_count();
  return snapshot;
}

size_t QueryService::queue_depth() const {
  MutexLock guard(queue_mu_);
  return queue_.size();
}

void QueryService::RefreshGauges() {
  queue_depth_gauge_->Set(static_cast<int64_t>(queue_depth()));
  active_sessions_gauge_->Set(static_cast<int64_t>(sessions_.active_count()));
  active_requests_gauge_->Set(
      static_cast<int64_t>(active_requests_.load(std::memory_order_relaxed)));
  cache_entries_gauge_->Set(static_cast<int64_t>(cache_.stats().entries));
  ThreadPool& pool = ThreadPool::Shared();
  pool_queue_depth_gauge_->Set(static_cast<int64_t>(pool.queue_depth()));
  pool_busy_workers_gauge_->Set(static_cast<int64_t>(pool.busy_workers()));
}

std::string QueryService::RenderMetricsText() {
  RefreshGauges();
  return registry_->RenderText();
}

std::string QueryService::MetricsJson() {
  RefreshGauges();
  return registry_->RenderJson();
}

}  // namespace pcqe
