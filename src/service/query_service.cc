#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace pcqe {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point since) {
  return static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - since)
             .count()));
}

}  // namespace

QueryService::QueryService(PcqeEngine* engine, ServiceOptions options)
    : engine_(engine), options_(options), cache_(options.cache_capacity) {
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

QueryService::~QueryService() { Shutdown(); }

Result<SessionHandle> QueryService::OpenSession(const std::string& user,
                                                const std::string& purpose) {
  // Shared lock: session opening reads role/policy configuration, which the
  // exclusive path (Accept) never touches, but holding the read lock keeps
  // the resolved β consistent with any concurrently completing requests.
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  const PcqeEngine& engine = *engine_;
  return sessions_.Open(engine.roles(), engine.policies(), user, purpose);
}

Status QueryService::CloseSession(uint64_t session_id) {
  return sessions_.Close(session_id);
}

Result<std::future<Result<QueryOutcome>>> QueryService::SubmitAsync(
    const SessionHandle& session, ServiceRequest request) {
  PendingRequest pending;
  pending.session = session;
  pending.request = std::move(request);
  pending.enqueued = Clock::now();
  int64_t timeout_ms = pending.request.timeout_ms > 0 ? pending.request.timeout_ms
                                                      : options_.default_timeout_ms;
  pending.deadline = timeout_ms > 0
                         ? pending.enqueued + std::chrono::milliseconds(timeout_ms)
                         : Clock::time_point::max();
  std::future<Result<QueryOutcome>> future = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> guard(queue_mu_);
    if (!accepting_) {
      stats_.OnRejected();
      return Status::ResourceExhausted("query service is shut down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      stats_.OnRejected();
      return Status::ResourceExhausted(
          StrFormat("request queue full (%zu pending); retry later",
                    queue_.size()));
    }
    queue_.push_back(std::move(pending));
  }
  stats_.OnSubmitted();
  queue_cv_.notify_one();
  return future;
}

Result<QueryOutcome> QueryService::Submit(const SessionHandle& session,
                                          ServiceRequest request) {
  if (workers_.empty()) {
    // No workers to hand off to: run on the caller's thread.
    stats_.OnSubmitted();
    Clock::time_point start = Clock::now();
    Result<QueryOutcome> outcome = Execute(session, request);
    stats_.RecordLatencyUs(ElapsedUs(start));
    return outcome;
  }
  PCQE_ASSIGN_OR_RETURN(std::future<Result<QueryOutcome>> future,
                        SubmitAsync(session, std::move(request)));
  return future.get();
}

Result<QueryOutcome> QueryService::Execute(const SessionHandle& session,
                                           const ServiceRequest& request) {
  Result<QueryOutcome> outcome = [&]() -> Result<QueryOutcome> {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    const PcqeEngine& engine = *engine_;

    // The version is read under the same shared lock as the evaluation, so
    // a cached entry can never mix confidences from before and after an
    // interleaved Accept.
    uint64_t version = engine.catalog().confidence_version();
    std::string key = NormalizeSql(request.sql);
    std::shared_ptr<const QueryResult> evaluated = cache_.Lookup(key, version);
    if (evaluated == nullptr) {
      PCQE_ASSIGN_OR_RETURN(QueryResult fresh, engine.Evaluate(request.sql));
      evaluated = cache_.Insert(key, version, std::move(fresh));
    }

    QueryRequest engine_request;
    engine_request.sql = request.sql;
    engine_request.user = session.user;
    engine_request.purpose = session.purpose;
    engine_request.required_fraction = request.required_fraction;
    engine_request.solver = request.solver;
    // Completion copies the shared evaluation into the outcome: rows are
    // duplicated, the lineage arena is shared by shared_ptr and read-only.
    return engine.Complete(engine_request, *evaluated);
  }();

  if (outcome.ok()) {
    size_t released = outcome->released.size();
    stats_.OnServed(released, outcome->intermediate.rows.size() - released,
                    outcome->proposal.needed);
  } else {
    stats_.OnFailed();
  }
  return outcome;
}

void QueryService::Process(PendingRequest pending) {
  if (Clock::now() > pending.deadline) {
    stats_.OnExpired();
    pending.promise.set_value(Status::ResourceExhausted(
        StrFormat("deadline expired after %llums in queue",
                  static_cast<unsigned long long>(
                      ElapsedUs(pending.enqueued) / 1000))));
    return;
  }
  Result<QueryOutcome> outcome = Execute(pending.session, pending.request);
  stats_.RecordLatencyUs(ElapsedUs(pending.enqueued));
  pending.promise.set_value(std::move(outcome));
}

void QueryService::WorkerLoop(std::stop_token stop) {
  while (true) {
    PendingRequest pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      // Wakes on new work or stop; after a stop request the predicate still
      // wins while the queue is non-empty, so shutdown drains gracefully.
      bool has_work = queue_cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (!has_work) return;  // stop requested and queue drained
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Process(std::move(pending));
  }
}

Status QueryService::Accept(const StrategyProposal& proposal) {
  // Exclusive: the single writer. AcceptProposal routes every confidence
  // write through Catalog::SetConfidence, which bumps the version and thus
  // retires all cached evaluations keyed on the old one.
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  return engine_->AcceptProposal(proposal);
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> guard(queue_mu_);
    if (!accepting_ && workers_.empty() && queue_.empty()) return;  // already down
    accepting_ = false;
  }
  for (std::jthread& worker : workers_) worker.request_stop();
  queue_cv_.notify_all();
  workers_.clear();  // jthread dtor joins; workers drain the queue first

  // With zero workers (test configurations) requests may still be queued:
  // fail them rather than breaking their promises.
  std::deque<PendingRequest> leftover;
  {
    std::lock_guard<std::mutex> guard(queue_mu_);
    leftover.swap(queue_);
  }
  for (PendingRequest& pending : leftover) {
    stats_.OnShutdownDropped();
    pending.promise.set_value(
        Status::ResourceExhausted("query service shut down before execution"));
  }
}

ServiceStatsSnapshot QueryService::stats() const {
  ServiceStatsSnapshot snapshot;
  stats_.FillSnapshot(&snapshot);
  ConfidenceResultCache::Stats cache_stats = cache_.stats();
  snapshot.cache_hits = cache_stats.hits;
  snapshot.cache_misses = cache_stats.misses;
  snapshot.cache_evictions = cache_stats.evictions;
  snapshot.cache_entries = cache_stats.entries;
  snapshot.queue_depth = queue_depth();
  snapshot.active_sessions = sessions_.active_count();
  return snapshot;
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> guard(queue_mu_);
  return queue_.size();
}

}  // namespace pcqe
