// Copyright (c) PCQE contributors.
// QueryService: the PCQE engine as a multi-client server-in-a-library.
//
// The paper's framework (Figure 1) is a serving architecture — subjects
// submit ⟨Q, pu, perc⟩ requests, the system evaluates, policy-filters and
// proposes increments. This module adds the serving substrate around the
// single-threaded `PcqeEngine`:
//
//   * a fixed-size pool of `std::jthread` workers over a bounded request
//     queue with admission control (`kResourceExhausted` on overflow),
//     optional overload shedding that trips before the queue overflows, a
//     bounded retry-with-backoff loop in the blocking `Submit`, and
//     per-request deadlines that propagate into the engine's solvers
//     (anytime partial results; see `QueryRequest::deadline`);
//   * sessions (session.h) that authenticate once and pin β;
//   * a shared `ConfidenceResultCache` (result_cache.h) so concurrent
//     sessions reuse one lineage evaluation per distinct query;
//   * built-in counters (service_stats.h).
//
// Concurrency protocol (lock order: engine catalog_mu -> cache-internal
// mutex; queue_mu_ is never held together with either):
//
//   * The engine's `catalog_mu()` is a reader–writer lock over all
//     engine/catalog state. Workers execute the engine's const read path
//     under a shared lock; `Accept` — the only mutator, wrapping
//     `PcqeEngine::AcceptProposal` — takes it exclusively and implicitly
//     invalidates the cache by bumping `Catalog::confidence_version()`.
//     Under clang the engine's `PCQE_REQUIRES*` annotations make this
//     discipline compile-checked (see common/annotations.h).
//   * Role/policy *configuration* must be complete before requests are
//     submitted concurrently (the shell's `.serve` mode obeys this: its REPL
//     is sequential, so config commands never overlap an in-flight request).

#ifndef PCQE_SERVICE_QUERY_SERVICE_H_
#define PCQE_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/deadline.h"
#include "engine/pcqe_engine.h"
#include "service/result_cache.h"
#include "service/service_stats.h"
#include "service/session.h"
#include "storage/storage_manager.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace pcqe {

/// \brief Sizing and policy knobs for a `QueryService`.
struct ServiceOptions {
  /// Worker threads. 0 is allowed for tests: requests queue up and are only
  /// drained (as shutdown drops) by `Shutdown`; `Submit` executes inline.
  size_t num_workers = 4;
  /// Admission bound: submissions beyond this many queued requests are
  /// rejected with `kResourceExhausted`.
  size_t queue_capacity = 64;
  /// Applied when a request's own `timeout_ms` is 0. 0 = no deadline.
  int64_t default_timeout_ms = 0;
  /// Blocking `Submit` re-attempts after a retryable `kResourceExhausted`
  /// admission rejection (queue full or shed — never after shutdown), with
  /// exponential backoff starting at `retry_backoff_ms` and bounded by the
  /// request's own deadline. 0 (default) keeps the historical fail-fast
  /// behavior; `SubmitAsync` never retries.
  size_t admission_retries = 0;
  int64_t retry_backoff_ms = 1;
  /// Overload shedding: reject (`kResourceExhausted`, counted as shed) once
  /// this many requests are queued, tripping *before* the hard
  /// `queue_capacity` bound so latecomers fail fast while the queue can
  /// still absorb retries. 0 (default) disables shedding.
  size_t shed_watermark = 0;
  /// Entry bound of the confidence-result cache; 0 disables caching.
  size_t cache_capacity = 128;
  /// Metrics registry and trace ring the service publishes to. Borrowed
  /// (must outlive the service); null means the service owns private ones,
  /// reachable via `telemetry()` / `tracer()`. The engine, if it has no
  /// telemetry attached yet, is attached to the service's.
  TelemetryRegistry* registry = nullptr;
  Tracer* tracer = nullptr;
  /// Capacity of the service-owned trace ring (only used when `tracer` is
  /// null).
  size_t trace_capacity = 64;
  /// Compliance audit log the engine appends policy decisions to. Borrowed
  /// (must outlive the service); null means the service owns a private one,
  /// reachable via `audit()`. The engine, if it has no audit log attached
  /// yet, is attached to the service's.
  AuditLog* audit = nullptr;
  /// Capacity of the service-owned audit ring (only used when `audit` is
  /// null); 0 disables audit recording.
  size_t audit_capacity = 256;
  /// Choose each request's solver lane budget as
  /// `max(1, hardware_threads / active_requests)` (capped at the engine's
  /// own budget), so a lone request fans out wide while a full worker pool
  /// degrades to one lane per request instead of oversubscribing.
  /// Solutions and effort counters are lane-count independent, so this
  /// only trades wall clock. The last decision is exported as the
  /// `pcqe_service_solver_lanes` gauge.
  bool adaptive_solver_lanes = true;
  /// When set, overrides the engine's `execution_mode` at construction
  /// (row vs. vectorized query interpreter). Unset leaves the engine's own
  /// setting — vectorized by default — untouched.
  std::optional<ExecutionMode> execution_mode = std::nullopt;
  /// Durable catalog (src/storage/). With a non-empty `durability.dir` the
  /// service opens (and, when a manifest exists, *recovers*) the directory
  /// on construction and every `Accept` becomes a WAL-logged transaction.
  /// An open/recovery failure is fail-safe: the service still serves
  /// reads, but `Accept` returns the stored failure instead of mutating a
  /// catalog it could not make durable (see `durability_status()`).
  DurabilityOptions durability = {};
};

/// \brief One query submission through a session.
struct ServiceRequest {
  std::string sql;
  /// perc/θ: fraction of the query's results the subject needs released.
  double required_fraction = 0.5;
  SolverKind solver = SolverKind::kAuto;
  /// Deadline measured from submission; a request still queued when it
  /// expires completes with `kResourceExhausted`, and a request that reaches
  /// the engine carries the remaining budget into the strategy solve (on
  /// expiry mid-solve the outcome's proposal is the solver's best anytime
  /// plan, tagged `partial`). 0 = use the service default.
  int64_t timeout_ms = 0;
  /// Optional caller-owned cancellation flag, forwarded into the engine's
  /// solvers; must outlive the request's future.
  const CancelToken* cancel = nullptr;
  /// `EXPLAIN ANALYZE`: collect a per-operator profile for this request
  /// (attached to `QueryOutcome::profile`). A profiled request bypasses the
  /// result cache's lookup — a cache hit executes nothing, so there would be
  /// no operator tree to report — but still populates it for later requests.
  bool profile = false;
  /// Opt-out knob for β pushdown (see `QueryRequest::pushdown`). When the
  /// engine decides pushdown applies, the cache key forks on the resolved β
  /// so a pushed (partial) evaluation can never serve an unpushed request.
  bool pushdown = true;
};

/// \brief Concurrent, policy-compliant query service over one engine.
///
/// The engine (and its catalog) must outlive the service. All public methods
/// are thread-safe.
class QueryService {
 public:
  QueryService(PcqeEngine* engine, ServiceOptions options);

  /// Drains and stops the workers (`Shutdown`).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Authenticates ⟨user, purpose⟩ and opens a session (see SessionManager).
  [[nodiscard]] Result<SessionHandle> OpenSession(const std::string& user,
                                                  const std::string& purpose);

  /// Closes a session. Requests already queued under it still complete.
  [[nodiscard]] Status CloseSession(uint64_t session_id);

  /// Enqueues a request and returns a future for its outcome. Fails
  /// immediately with `kResourceExhausted` when the queue is full or the
  /// service is shut down.
  [[nodiscard]] Result<std::future<Result<QueryOutcome>>> SubmitAsync(
      const SessionHandle& session, ServiceRequest request);

  /// Convenience blocking submission. With workers this waits on the future;
  /// with `num_workers == 0` it executes inline on the caller's thread
  /// (bypassing queue admission, still counted in the stats).
  [[nodiscard]] Result<QueryOutcome> Submit(const SessionHandle& session,
                                            ServiceRequest request);

  /// Applies an improvement proposal under the engine's exclusive catalog
  /// lock. The confidence-version bump makes every cached evaluation stale.
  /// With durability configured the accept is WAL-logged (and synced)
  /// before any confidence changes; a durability failure rejects it whole.
  [[nodiscard]] Status Accept(const StrategyProposal& proposal);

  /// Durability entry points; `kInvalidArgument` when `ServiceOptions`
  /// configured no storage. `Checkpoint` snapshots the catalog and rotates
  /// the WAL under a shared catalog hold; `Recover` rebuilds the catalog
  /// from disk under an exclusive hold (discarding non-durable state) and
  /// drops every cached evaluation — entries keyed on the pre-recovery
  /// version must never be served against replayed confidences.
  [[nodiscard]] Status Checkpoint();
  [[nodiscard]] Status Recover();

  /// OK while durable storage (if configured) is healthy; otherwise the
  /// open/recovery failure that `Accept` now returns.
  [[nodiscard]] Status durability_status() const { return durability_status_; }

  /// The storage manager behind this service (null when not configured).
  StorageManager* storage() const { return storage_; }

  /// Stops admission, lets workers drain the queue, joins them, and fails
  /// any request still queued (0-worker services) with
  /// `kResourceExhausted`. Idempotent.
  void Shutdown();

  /// Point-in-time counters (see ServiceStatsSnapshot for the invariant).
  [[nodiscard]] ServiceStatsSnapshot stats() const;

  /// Requests currently waiting for a worker.
  [[nodiscard]] size_t queue_depth() const;

  /// Drops every cached evaluation and confidence zone map (after
  /// out-of-band catalog edits such as bulk loads, which do not bump the
  /// confidence version — exactly the edits a version-validated index
  /// cannot detect).
  void InvalidateCache() {
    cache_.Clear();
    engine_->confidence_index()->Invalidate();
  }

  size_t num_workers() const { return workers_.size(); }
  const ServiceOptions& options() const { return options_; }

  /// The registry / trace ring this service publishes to (service-owned
  /// unless supplied via `ServiceOptions`).
  TelemetryRegistry* telemetry() const { return registry_; }
  Tracer* tracer() const { return tracer_; }

  /// The compliance audit log the engine records into (service-owned unless
  /// supplied via `ServiceOptions`). Never null after construction.
  AuditLog* audit() const { return audit_; }

  /// Prometheus-style text exposition of the registry, with the service's
  /// point-in-time gauges (queue depth, sessions, in-flight requests,
  /// cache entries, solver lanes, thread-pool pressure) refreshed first.
  [[nodiscard]] std::string RenderMetricsText();

  /// Same refresh, JSON dump (bench conventions).
  [[nodiscard]] std::string MetricsJson();

 private:
  struct PendingRequest {
    SessionHandle session;
    ServiceRequest request;
    std::chrono::steady_clock::time_point enqueued;
    /// Infinite when the request has no timeout; also the solve budget.
    Deadline deadline;
    std::promise<Result<QueryOutcome>> promise;
  };

  void WorkerLoop(std::stop_token stop);

  /// Wait predicate for WorkerLoop: invoked by `queue_cv_.wait` with
  /// `queue_mu_` held, through a release/re-acquire cycle the analysis
  /// cannot model, so the check is opted out instead of annotated
  /// PCQE_REQUIRES(queue_mu_).
  bool HasPendingRequest() const PCQE_NO_THREAD_SAFETY_ANALYSIS {
    return !queue_.empty();
  }

  /// Executes one request under the shared catalog lock: cache lookup,
  /// evaluation on miss, per-subject completion. Updates serve/fail/row
  /// counters. `enqueued` is the trace origin (submission time), so the
  /// recorded trace duration covers queue wait too; `deadline` is the
  /// remaining budget handed to the engine's strategy solve.
  Result<QueryOutcome> Execute(const SessionHandle& session,
                               const ServiceRequest& request,
                               std::chrono::steady_clock::time_point enqueued,
                               Deadline deadline);

  /// Runs one dequeued request end to end (deadline check, execution,
  /// latency recording) and fulfills its promise.
  void Process(PendingRequest pending);

  /// Updates the point-in-time gauges from live component state.
  void RefreshGauges();

  PcqeEngine* engine_;
  ServiceOptions options_;

  /// Owned fallbacks when `ServiceOptions` supplies no registry/tracer.
  /// Declared before every member that caches instrument pointers.
  std::unique_ptr<TelemetryRegistry> owned_registry_;
  std::unique_ptr<Tracer> owned_tracer_;
  std::unique_ptr<AuditLog> owned_audit_;
  TelemetryRegistry* registry_;  // never null after construction
  Tracer* tracer_;               // never null after construction
  AuditLog* audit_;              // never null after construction

  /// Service-owned storage when `ServiceOptions::durability` asked for it
  /// and the engine had none attached; `storage_` also covers the case of
  /// a manager attached to the engine before construction. Both set only
  /// in the constructor, immutable afterwards — hence readable lock-free.
  std::unique_ptr<StorageManager> owned_storage_;
  StorageManager* storage_ = nullptr;
  Status durability_status_ = Status::OK();

  SessionManager sessions_;
  ConfidenceResultCache cache_;
  ServiceStats stats_;

  /// Requests currently inside `Execute` (drives the adaptive lane policy).
  std::atomic<size_t> active_requests_{0};

  /// Point-in-time gauges, refreshed by `RefreshGauges`.
  Gauge* queue_depth_gauge_;
  Gauge* active_sessions_gauge_;
  Gauge* active_requests_gauge_;
  Gauge* cache_entries_gauge_;
  Gauge* solver_lanes_gauge_;
  Gauge* pool_queue_depth_gauge_;
  Gauge* pool_busy_workers_gauge_;

  mutable Mutex queue_mu_;
  std::condition_variable_any queue_cv_;
  std::deque<PendingRequest> queue_ PCQE_GUARDED_BY(queue_mu_);
  bool accepting_ PCQE_GUARDED_BY(queue_mu_) = true;

  std::vector<std::jthread> workers_;
};

}  // namespace pcqe

#endif  // PCQE_SERVICE_QUERY_SERVICE_H_
