#include "service/service_stats.h"

#include "common/string_util.h"

namespace pcqe {

std::string ServiceStatsSnapshot::ToString() const {
  std::string out;
  out += StrFormat(
      "requests: %llu submitted, %llu served, %llu failed, %llu rejected, "
      "%llu expired, %llu dropped at shutdown\n",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(shutdown_dropped));
  out += StrFormat("rows: %llu released, %llu policy-blocked; %llu proposals\n",
                   static_cast<unsigned long long>(released_rows),
                   static_cast<unsigned long long>(policy_blocked_rows),
                   static_cast<unsigned long long>(proposals));
  out += StrFormat(
      "cache: %llu hits, %llu misses (%.1f%% hit rate), %llu evictions, "
      "%zu entries\n",
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_hit_rate() * 100.0,
      static_cast<unsigned long long>(cache_evictions), cache_entries);
  out += StrFormat("queue depth: %zu; active sessions: %zu\n", queue_depth,
                   active_sessions);
  out += "latency (end-to-end):";
  for (size_t b = 0; b < latency_buckets.size(); ++b) {
    if (latency_buckets[b] == 0) continue;
    if (kLatencyBucketBoundsUs[b] == UINT64_MAX) {
      out += StrFormat(" >%llums=%llu",
                       static_cast<unsigned long long>(
                           kLatencyBucketBoundsUs[b - 1] / 1000),
                       static_cast<unsigned long long>(latency_buckets[b]));
    } else if (kLatencyBucketBoundsUs[b] >= 1000) {
      out += StrFormat(
          " <=%llums=%llu",
          static_cast<unsigned long long>(kLatencyBucketBoundsUs[b] / 1000),
          static_cast<unsigned long long>(latency_buckets[b]));
    } else {
      out += StrFormat(" <=%lluus=%llu",
                       static_cast<unsigned long long>(kLatencyBucketBoundsUs[b]),
                       static_cast<unsigned long long>(latency_buckets[b]));
    }
  }
  out += "\n";
  return out;
}

}  // namespace pcqe
