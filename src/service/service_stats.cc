#include "service/service_stats.h"

#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace pcqe {

namespace {

/// The histogram's explicit bounds: every latency bucket bound except the
/// trailing UINT64_MAX sentinel (the histogram's implicit +Inf bucket).
std::vector<double> LatencyBounds() {
  std::vector<double> bounds;
  for (uint64_t b : kLatencyBucketBoundsUs) {
    if (b != UINT64_MAX) bounds.push_back(static_cast<double>(b));
  }
  return bounds;
}

}  // namespace

ServiceStats::ServiceStats(TelemetryRegistry* registry) {
  PCQE_CHECK(registry != nullptr);
  submitted_ = registry->GetCounter("pcqe_service_requests_submitted_total",
                                    "Requests accepted into the queue");
  served_ = registry->GetCounter("pcqe_service_requests_served_total",
                                 "Requests completed with an OK outcome");
  failed_ = registry->GetCounter("pcqe_service_requests_failed_total",
                                 "Requests completed with a non-OK engine status");
  rejected_ = registry->GetCounter("pcqe_service_requests_rejected_total",
                                   "Requests refused at admission (queue full or shed)");
  shed_ = registry->GetCounter(
      "pcqe_service_requests_shed_total",
      "Admission rejections at the overload watermark (subset of rejected)");
  retried_ = registry->GetCounter(
      "pcqe_service_admission_retries_total",
      "Blocking-Submit re-attempts after a retryable admission rejection");
  expired_ = registry->GetCounter("pcqe_service_requests_expired_total",
                                  "Requests whose deadline passed while queued");
  shutdown_dropped_ =
      registry->GetCounter("pcqe_service_requests_shutdown_dropped_total",
                           "Requests still queued when the service stopped");
  policy_blocked_rows_ = registry->GetCounter(
      "pcqe_service_rows_blocked_total", "Rows withheld by confidence policy");
  released_rows_ = registry->GetCounter("pcqe_service_rows_released_total",
                                        "Rows released to subjects");
  proposals_ = registry->GetCounter("pcqe_service_proposals_total",
                                    "Outcomes that carried a costed proposal");
  partial_results_ = registry->GetCounter(
      "pcqe_service_partial_results_total",
      "Served outcomes whose proposal was an anytime (partial) plan");
  solve_deadline_exceeded_ = registry->GetCounter(
      "pcqe_service_solve_deadline_exceeded_total",
      "Served outcomes whose strategy solve was stopped by the deadline");
  latency_us_ = registry->GetHistogram("pcqe_service_latency_us", LatencyBounds(),
                                       "End-to-end request latency (microseconds)");
}

void ServiceStats::FillSnapshot(ServiceStatsSnapshot* out) const {
  out->submitted = submitted_->value();
  out->served = served_->value();
  out->failed = failed_->value();
  out->rejected = rejected_->value();
  out->shed = shed_->value();
  out->retried = retried_->value();
  out->expired = expired_->value();
  out->shutdown_dropped = shutdown_dropped_->value();
  out->partial_results = partial_results_->value();
  out->solve_deadline_exceeded = solve_deadline_exceeded_->value();
  out->policy_blocked_rows = policy_blocked_rows_->value();
  out->released_rows = released_rows_->value();
  out->proposals = proposals_->value();
  Histogram::Snapshot latency = latency_us_->snapshot();
  for (size_t b = 0; b < out->latency_buckets.size() && b < latency.counts.size(); ++b) {
    out->latency_buckets[b] = latency.counts[b];
  }
}

std::string ServiceStatsSnapshot::ToString() const {
  std::string out;
  out += StrFormat(
      "requests: %llu submitted, %llu served, %llu failed, %llu rejected, "
      "%llu expired, %llu dropped at shutdown\n",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(shutdown_dropped));
  if (shed + retried + partial_results + solve_deadline_exceeded > 0) {
    out += StrFormat(
        "overload: %llu shed, %llu admission retries; %llu partial results "
        "(%llu by solve deadline)\n",
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(retried),
        static_cast<unsigned long long>(partial_results),
        static_cast<unsigned long long>(solve_deadline_exceeded));
  }
  out += StrFormat("rows: %llu released, %llu policy-blocked; %llu proposals\n",
                   static_cast<unsigned long long>(released_rows),
                   static_cast<unsigned long long>(policy_blocked_rows),
                   static_cast<unsigned long long>(proposals));
  out += StrFormat(
      "cache: %llu hits, %llu misses (%.1f%% hit rate), %llu evictions, "
      "%zu entries\n",
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_hit_rate() * 100.0,
      static_cast<unsigned long long>(cache_evictions), cache_entries);
  out += StrFormat("queue depth: %zu; active sessions: %zu\n", queue_depth,
                   active_sessions);
  out += "latency (end-to-end):";
  for (size_t b = 0; b < latency_buckets.size(); ++b) {
    if (latency_buckets[b] == 0) continue;
    if (kLatencyBucketBoundsUs[b] == UINT64_MAX) {
      out += StrFormat(" >%llums=%llu",
                       static_cast<unsigned long long>(
                           kLatencyBucketBoundsUs[b - 1] / 1000),
                       static_cast<unsigned long long>(latency_buckets[b]));
    } else if (kLatencyBucketBoundsUs[b] >= 1000) {
      out += StrFormat(
          " <=%llums=%llu",
          static_cast<unsigned long long>(kLatencyBucketBoundsUs[b] / 1000),
          static_cast<unsigned long long>(latency_buckets[b]));
    } else {
      out += StrFormat(" <=%lluus=%llu",
                       static_cast<unsigned long long>(kLatencyBucketBoundsUs[b]),
                       static_cast<unsigned long long>(latency_buckets[b]));
    }
  }
  out += "\n";
  return out;
}

}  // namespace pcqe
