// Copyright (c) PCQE contributors.
// Sessions: authenticate a ⟨user, purpose⟩ pair once, pin the resolved role
// set and confidence threshold, and hand out a handle for later requests.
//
// Controlled Query Evaluation systems enforce per-subject censoring at the
// service boundary; the session is that boundary here. Opening a session
// fails fast (`kNotFound`) for unknown users, so per-request submission
// never has to re-authenticate.

#ifndef PCQE_SERVICE_SESSION_H_
#define PCQE_SERVICE_SESSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "policy/confidence_policy.h"
#include "policy/rbac.h"

namespace pcqe {

/// \brief An authenticated ⟨user, purpose⟩ binding. Cheap to copy; requests
/// carry it by value so the session registry is never touched on the hot
/// path.
///
/// `base_decision` is the *unscoped* policy resolution (no table context)
/// pinned at open time — the threshold β a subject sees before any
/// table-scoped policy tightens it. Per-query enforcement still resolves
/// against the tables the query actually touched, so a stricter table-scoped
/// policy is never bypassed by pinning.
struct SessionHandle {
  uint64_t id = 0;
  std::string user;
  std::string purpose;
  /// The user's effective roles at open time (direct + inherited juniors).
  std::vector<std::string> roles;
  /// Unscoped policy decision: pinned β and the policies behind it.
  PolicyDecision base_decision;

  /// "session 3: mary/investment (beta=0.06)".
  std::string ToString() const;
};

/// \brief Thread-safe registry of open sessions.
class SessionManager {
 public:
  SessionManager() = default;

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Authenticates `user` against `roles`, resolves the unscoped policy for
  /// (user, purpose) in `policies`, and registers a new session. Unknown
  /// users yield `kNotFound`.
  [[nodiscard]] Result<SessionHandle> Open(const RoleGraph& roles,
                                           const PolicyStore& policies,
                                           const std::string& user,
                                           const std::string& purpose);

  /// Unregisters a session; `kNotFound` when the id is not open.
  [[nodiscard]] Status Close(uint64_t id);

  /// Looks up an open session by id.
  [[nodiscard]] Result<SessionHandle> Get(uint64_t id) const;

  /// Number of currently open sessions.
  size_t active_count() const;

 private:
  mutable Mutex mu_;
  uint64_t next_id_ PCQE_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, SessionHandle> sessions_ PCQE_GUARDED_BY(mu_);
};

}  // namespace pcqe

#endif  // PCQE_SERVICE_SESSION_H_
