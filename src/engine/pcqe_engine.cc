#include "engine/pcqe_engine.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/vec_executor.h"
#include "storage/storage_manager.h"
#include "strategy/brute_force.h"
#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"

namespace pcqe {

std::string QueryOutcome::ReleasedTable(size_t max_rows) const {
  QueryResult view;
  view.schema = intermediate.schema;
  view.arena = intermediate.arena;
  view.rows.reserve(released.size());
  for (size_t i : released) {
    QueryResult::Row row = intermediate.rows[i];
    // Deferred vectorized results box values on demand; only the rows the
    // table will actually show pay for boxing.
    if (row.values.empty() && view.rows.size() < max_rows) {
      row.values = intermediate.ValuesOfRow(i);
    }
    view.rows.push_back(std::move(row));
  }
  return view.ToTable(max_rows);
}

void PcqeEngine::AttachTelemetry(TelemetryRegistry* registry, Tracer* tracer) {
  registry_ = registry;
  tracer_ = tracer;
  if (registry_ == nullptr) {
    metrics_ = EngineMetrics{};
    return;
  }
  metrics_.queries = registry_->GetCounter("pcqe_engine_queries_total",
                                           "Queries evaluated by the engine");
  metrics_.rows_released = registry_->GetCounter(
      "pcqe_engine_rows_released_total", "Result rows released by policy filtering");
  metrics_.rows_blocked = registry_->GetCounter(
      "pcqe_engine_rows_blocked_total", "Result rows blocked by policy filtering");
  metrics_.proposals = registry_->GetCounter(
      "pcqe_engine_proposals_total", "Strategy proposals computed for shortfalls");
  metrics_.deadline_exceeded = registry_->GetCounter(
      "pcqe_engine_deadline_exceeded_total",
      "Strategy solves stopped by the request deadline");
  metrics_.partial = registry_->GetCounter(
      "pcqe_engine_partial_total",
      "Proposals carrying an anytime (partial) plan: deadline, cancellation "
      "or node-budget stop");
  metrics_.vec_chunks = registry_->GetCounter(
      "pcqe_engine_vec_chunks_total",
      "Column chunks scanned by the vectorized interpreter");
  metrics_.vec_rows = registry_->GetCounter(
      "pcqe_engine_vec_rows_total",
      "Base rows scanned by the vectorized interpreter");
  metrics_.vec_join_groups = registry_->GetCounter(
      "pcqe_engine_vec_join_groups_total",
      "Factorized join match groups built by the vectorized interpreter");
  metrics_.vec_fallback_rows = registry_->GetCounter(
      "pcqe_engine_vec_fallback_rows_total",
      "Rows the vectorized interpreter evaluated row-at-a-time (no kernel)");
  metrics_.pushdown_chunks_pruned = registry_->GetCounter(
      "pcqe_engine_pushdown_chunks_pruned_total",
      "Whole column chunks skipped by beta pushdown via the confidence index");
  metrics_.pushdown_rows_pruned = registry_->GetCounter(
      "pcqe_engine_pushdown_rows_pruned_total",
      "Base rows pruned under scans by beta pushdown");
  metrics_.index_rebuilds = registry_->GetCounter(
      "pcqe_engine_index_rebuilds_total",
      "Per-table confidence zone-map (re)builds for beta pushdown");
  metrics_.solve_seconds = registry_->GetHistogram(
      "pcqe_engine_solve_seconds", {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0},
      "Strategy solve wall-clock seconds");
  metrics_.solver_effort.clear();
  for (const auto& [name, value] : SolverEffort{}.Items()) {
    (void)value;
    metrics_.solver_effort.push_back(registry_->GetCounter(
        StrFormat("pcqe_solver_%s_total", name), "Solver search effort; see SolverEffort"));
  }
  metrics_.operator_seconds.clear();
  for (PlanKind kind :
       {PlanKind::kScan, PlanKind::kFilter, PlanKind::kProject, PlanKind::kJoin,
        PlanKind::kDistinct, PlanKind::kUnionAll, PlanKind::kUnion,
        PlanKind::kExcept, PlanKind::kIntersect, PlanKind::kSort, PlanKind::kLimit,
        PlanKind::kAggregate, PlanKind::kConfidencePrune}) {
    std::string key = ToLowerAscii(PlanKindToString(kind));
    metrics_.operator_seconds[key] = registry_->GetHistogram(
        StrFormat("pcqe_query_operator_seconds_%s", key.c_str()),
        {0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0},
        "Per-operator wall seconds from profiled (EXPLAIN ANALYZE) queries");
  }
}

void PcqeEngine::ObserveOperatorSeconds(const OperatorProfile& profile) const {
  if (metrics_.operator_seconds.empty()) return;
  for (const OperatorProfile::Node& node : profile.nodes) {
    std::string kind = ToLowerAscii(node.label.substr(0, node.label.find(' ')));
    auto it = metrics_.operator_seconds.find(kind);
    if (it == metrics_.operator_seconds.end()) continue;
    it->second->Observe(static_cast<double>(node.wall_ns) / 1e9);
  }
}

Result<QueryOutcome> PcqeEngine::Submit(const QueryRequest& request) const {
  std::shared_ptr<OperatorProfile> profile;
  if (request.profile) profile = std::make_shared<OperatorProfile>();
  std::optional<double> pushdown_beta = ResolvePushdownBeta(request);
  if (tracer_ == nullptr || !tracer_->enabled()) {
    PCQE_ASSIGN_OR_RETURN(QueryResult intermediate,
                          Evaluate(request.sql, nullptr, profile.get(), pushdown_beta));
    Result<QueryOutcome> outcome = Complete(request, std::move(intermediate));
    if (outcome.ok()) outcome->profile = std::move(profile);
    return outcome;
  }
  TraceBuilder trace("submit");
  Result<QueryOutcome> outcome = [&]() -> Result<QueryOutcome> {
    PCQE_ASSIGN_OR_RETURN(QueryResult intermediate,
                          Evaluate(request.sql, &trace, profile.get(), pushdown_beta));
    return Complete(request, std::move(intermediate), &trace);
  }();
  uint64_t id = tracer_->Record(trace.Finish());
  if (outcome.ok()) {
    outcome->trace_id = id;
    outcome->profile = std::move(profile);
  }
  return outcome;
}

Result<QueryResult> PcqeEngine::Evaluate(const std::string& sql,
                                         TraceBuilder* trace,
                                         OperatorProfile* profile,
                                         std::optional<double> pushdown_beta) const {
  // (1)-(4): evaluate the query and compute result confidences.
  ScopedSpan span(trace, "evaluate");
  PCQE_INJECT_FAULT(fault_sites::kEngineEvaluate);
  if (metrics_.queries != nullptr) metrics_.queries->Increment();
  ConfidencePushdown pushdown;
  const ConfidencePushdown* pd = nullptr;
  if (pushdown_beta.has_value()) {
    pushdown.beta = *pushdown_beta;
    pushdown.index = &index_cache_;
    pd = &pushdown;
  }
  // The policy filter and the solvers consume confidences and lineage only;
  // value boxing is deferred until something displays rows (ReleasedTable /
  // ToTable / MaterializeValues) — the factorized engine's late
  // materialization.
  Result<QueryResult> result = RunQuery(*catalog_, sql, trace, execution_mode,
                                        /*materialize_values=*/false, profile, pd);
  if (result.ok() && profile != nullptr) ObserveOperatorSeconds(*profile);
  if (result.ok() && metrics_.vec_chunks != nullptr) {
    const VecExecStats& s = result->vec_stats;
    metrics_.vec_chunks->Increment(s.chunks_scanned);
    metrics_.vec_rows->Increment(s.rows_scanned);
    metrics_.vec_join_groups->Increment(s.join_groups);
    metrics_.vec_fallback_rows->Increment(s.fallback_rows);
    metrics_.pushdown_chunks_pruned->Increment(s.pruned_chunks);
    metrics_.pushdown_rows_pruned->Increment(s.pruned_rows);
  }
  return result;
}

std::optional<double> PcqeEngine::ResolvePushdownBeta(
    const QueryRequest& request) const {
  // Pushdown is only provably result-identical when the request releases by
  // β alone: with required_fraction == 0 the needed-rows target is always 0,
  // so the strategy solver never runs in either mode and pruned blocked rows
  // cannot surface through proposals or released fractions.
  if (!request.pushdown || request.required_fraction != 0.0) return std::nullopt;
  Result<std::unique_ptr<SelectStatement>> stmt = ParseSelect(request.sql);
  if (!stmt.ok()) return std::nullopt;
  Result<std::unique_ptr<PlanNode>> plan = PlanQuery(*catalog_, **stmt);
  if (!plan.ok() || !IsConfidencePushdownSafe(**plan)) return std::nullopt;
  std::vector<std::string> tables = CollectScannedTables(**plan);
  Result<PolicyDecision> decision =
      policies_.Resolve(roles_, request.user, request.purpose, tables);
  // β ≤ 0 prunes nothing (every confidence clears it) — evaluating unpushed
  // keeps policy-less queries bit-identical and cache-shareable.
  if (!decision.ok() || decision->threshold <= 0.0) return std::nullopt;
  // Pre-warm the per-table confidence indexes here so rebuilds are counted
  // once per version bump; a failed rebuild (fault injection, see
  // fault_sites::kIndexRebuild) degrades the plan to row-exact pruning.
  for (const std::string& name : tables) {
    Result<const Table*> table =
        static_cast<const Catalog*>(catalog_)->GetTable(name);
    if (!table.ok()) continue;
    bool rebuilt = false;
    (void)index_cache_.Get(*catalog_, **table, &rebuilt);
    if (rebuilt && metrics_.index_rebuilds != nullptr) {
      metrics_.index_rebuilds->Increment();
    }
  }
  return decision->threshold;
}

Result<size_t> PcqeEngine::FilterOne(const QueryRequest& request, QueryOutcome* outcome,
                                     std::vector<size_t>* blocked) const {
  if (request.required_fraction < 0.0 || request.required_fraction > 1.0) {
    return Status::InvalidArgument(
        StrFormat("required_fraction %g outside [0, 1]", request.required_fraction));
  }

  // (5)-(6): resolve and enforce the confidence policy for this user,
  // purpose and the data (tables) the query touched.
  PCQE_ASSIGN_OR_RETURN(outcome->policy,
                        policies_.Resolve(roles_, request.user, request.purpose,
                                          outcome->intermediate.tables));
  size_t n = outcome->intermediate.rows.size();
  for (size_t i = 0; i < n; ++i) {
    if (outcome->policy.Allows(outcome->intermediate.rows[i].confidence)) {
      outcome->released.push_back(i);
    } else {
      blocked->push_back(i);
    }
  }
  outcome->released_fraction =
      n == 0 ? 1.0
             : static_cast<double>(outcome->released.size()) / static_cast<double>(n);

  size_t target = static_cast<size_t>(
      std::ceil(request.required_fraction * static_cast<double>(n)));
  return target > outcome->released.size() ? target - outcome->released.size() : 0;
}

Result<QueryOutcome> PcqeEngine::Complete(const QueryRequest& request,
                                          QueryResult intermediate,
                                          TraceBuilder* trace) const {
  ScopedSpan span(trace, "complete");
  QueryOutcome outcome;
  outcome.intermediate = std::move(intermediate);
  std::vector<size_t> blocked;
  size_t needed = 0;
  {
    // The audit trail: which β applied and how many rows it released/
    // dropped for this subject.
    ScopedSpan filter_span(trace, "policy-filter");
    PCQE_ASSIGN_OR_RETURN(needed, FilterOne(request, &outcome, &blocked));
    filter_span.Annotate("beta", FormatDouble(outcome.policy.threshold, 4));
    filter_span.Annotate("released", std::to_string(outcome.released.size()));
    filter_span.Annotate("blocked", std::to_string(blocked.size()));
  }
  if (metrics_.rows_released != nullptr) {
    metrics_.rows_released->Increment(outcome.released.size());
    metrics_.rows_blocked->Increment(blocked.size());
  }
  if (needed > 0) {
    // The solvers pool per-row formulas; a deferred result interns them
    // only now — compliant queries (no shortfall) never build a single
    // per-row lineage node.
    if (outcome.intermediate.lineage_deferred()) {
      ScopedSpan box_span(trace, "lineage-box");
      outcome.intermediate.MaterializeLineage();
    }
    PCQE_ASSIGN_OR_RETURN(
        outcome.proposal,
        FindStrategy({&outcome}, {blocked}, {needed}, outcome.policy.threshold,
                     request.solver,
                     request.solver_lanes.value_or(solver_parallelism),
                     request.deadline, request.cancel, trace));
  }
  outcome.audit_id = RecordQueryAudit(request, outcome, blocked);
  return outcome;
}

namespace {

/// Privacy-safe per-row lineage summary for the audit log: the contributing
/// base tuples as `table#row` identifiers joined with " * " (conjunction).
/// Never renders tuple values — see telemetry/audit.h.
std::string BlockedRowLineageSummary(
    const QueryResult& qr, size_t row,
    const std::map<uint32_t, std::string>& table_names) {
  std::vector<std::string> parts;
  if (!qr.lineage_deferred() && qr.rows[row].lineage != kNullLineage) {
    for (LineageVarId id : qr.arena->Variables(qr.rows[row].lineage)) {
      auto table_id = static_cast<uint32_t>(id >> 32);
      auto base_row = static_cast<uint32_t>(id & 0xffffffffU);
      auto it = table_names.find(table_id);
      std::string table =
          it != table_names.end() ? it->second : StrFormat("t%u", table_id);
      parts.push_back(StrFormat("%s#%u", table.c_str(), base_row));
    }
  } else if (qr.columnar != nullptr) {
    // Deferred factorized result: the factors name the base tuples directly,
    // no lineage interning needed.
    for (const VecFactor& f : qr.columnar->factors) {
      if (f.table == nullptr) continue;
      parts.push_back(StrFormat("%s#%u", f.table->name().c_str(), f.sel[row]));
    }
  }
  return JoinStrings(parts, " * ");
}

}  // namespace

uint64_t PcqeEngine::RecordQueryAudit(const QueryRequest& request,
                                      const QueryOutcome& outcome,
                                      const std::vector<size_t>& blocked) const {
  if (audit_ == nullptr || !audit_->enabled()) return 0;
  const QueryResult& qr = outcome.intermediate;
  AuditRecord rec;
  rec.kind = AuditRecord::Kind::kQuery;
  rec.user = request.user;
  rec.purpose = request.purpose;
  rec.sql = request.sql;
  rec.beta = outcome.policy.threshold;
  rec.confidence_version = catalog_->confidence_version();
  rec.required_fraction = request.required_fraction;
  rec.released_fraction = outcome.released_fraction;
  rec.rows_total = qr.rows.size();
  rec.rows_released = outcome.released.size();
  rec.rows_blocked = blocked.size();
  rec.pushed_down = qr.pushed_down;
  rec.pruned_chunks = qr.vec_stats.pruned_chunks;
  rec.pruned_rows = qr.vec_stats.pruned_rows;

  std::map<uint32_t, std::string> table_names;
  for (const std::string& name : qr.tables) {
    Result<const Table*> table =
        static_cast<const Catalog*>(catalog_)->GetTable(name);
    if (table.ok()) table_names[(*table)->table_id()] = name;
  }
  std::vector<bool> released(qr.rows.size(), false);
  for (size_t i : outcome.released) released[i] = true;
  size_t cap = audit_->max_rows_per_record();
  for (size_t i = 0; i < qr.rows.size(); ++i) {
    if (rec.rows.size() >= cap) {
      rec.rows_truncated = qr.rows.size() - rec.rows.size();
      break;
    }
    AuditRowDecision decision;
    decision.row = i;
    decision.confidence = qr.rows[i].confidence;
    decision.released = released[i];
    if (!released[i]) {
      decision.lineage = BlockedRowLineageSummary(qr, i, table_names);
    }
    rec.rows.push_back(std::move(decision));
  }
  if (outcome.proposal.needed) {
    rec.proposal_needed = true;
    rec.proposal_feasible = outcome.proposal.feasible;
    rec.proposal_partial = outcome.proposal.partial;
    rec.proposal_cost = outcome.proposal.total_cost;
    rec.proposal_algorithm = outcome.proposal.algorithm;
  }
  return audit_->Record(std::move(rec));
}

Result<std::vector<QueryOutcome>> PcqeEngine::SubmitBatch(
    const std::vector<QueryRequest>& requests) const {
  if (requests.empty()) return Status::InvalidArgument("empty request batch");

  std::vector<QueryOutcome> outcomes(requests.size());
  std::vector<std::vector<size_t>> blocked(requests.size());
  std::vector<size_t> needed(requests.size(), 0);

  for (size_t q = 0; q < requests.size(); ++q) {
    PCQE_ASSIGN_OR_RETURN(outcomes[q].intermediate,
                          Evaluate(requests[q].sql, nullptr, nullptr,
                                   ResolvePushdownBeta(requests[q])));
    PCQE_ASSIGN_OR_RETURN(needed[q], FilterOne(requests[q], &outcomes[q], &blocked[q]));
  }

  // (7): strategy finding across every request that came up short.
  std::vector<const QueryOutcome*> short_outcomes;
  std::vector<std::vector<size_t>> short_blocked;
  std::vector<size_t> short_needed;
  double beta = -1.0;
  size_t first_short = requests.size();
  for (size_t q = 0; q < requests.size(); ++q) {
    if (needed[q] == 0) continue;
    if (outcomes[q].intermediate.lineage_deferred()) {
      outcomes[q].intermediate.MaterializeLineage();
    }
    if (first_short == requests.size()) first_short = q;
    if (beta < 0.0) {
      beta = outcomes[q].policy.threshold;
    } else if (!ApproxEqual(beta, outcomes[q].policy.threshold)) {
      return Status::InvalidArgument(
          "batched requests that need improvement must share one confidence "
          "threshold (same role/purpose policy)");
    }
    short_outcomes.push_back(&outcomes[q]);
    short_blocked.push_back(blocked[q]);
    short_needed.push_back(needed[q]);
  }
  if (first_short < requests.size()) {
    PCQE_ASSIGN_OR_RETURN(
        StrategyProposal proposal,
        FindStrategy(short_outcomes, short_blocked, short_needed, beta,
                     requests[first_short].solver,
                     requests[first_short].solver_lanes.value_or(solver_parallelism),
                     requests[first_short].deadline, requests[first_short].cancel));
    outcomes[first_short].proposal = std::move(proposal);
  }
  return outcomes;
}

Result<StrategyProposal> PcqeEngine::FindStrategy(
    const std::vector<const QueryOutcome*>& outcomes,
    const std::vector<std::vector<size_t>>& blocked, const std::vector<size_t>& needed,
    double beta, SolverKind solver, SolverParallelism lanes, Deadline deadline,
    const CancelToken* cancel, TraceBuilder* trace) const {
  ScopedSpan span(trace, "solve");
  // Pool the blocked rows' lineages into one arena.
  auto arena = std::make_shared<LineageArena>();
  std::vector<LineageRef> lineages;
  std::vector<uint32_t> query_of;
  std::set<LineageVarId> var_ids;
  for (size_t q = 0; q < outcomes.size(); ++q) {
    const QueryResult& qr = outcomes[q]->intermediate;
    for (size_t row : blocked[q]) {
      LineageRef copied = arena->CopyFrom(*qr.arena, qr.rows[row].lineage);
      lineages.push_back(copied);
      query_of.push_back(static_cast<uint32_t>(q));
      for (LineageVarId id : arena->Variables(copied)) var_ids.insert(id);
    }
  }

  // Base-tuple specs straight from the stored tuples.
  std::vector<BaseTupleSpec> specs;
  specs.reserve(var_ids.size());
  for (LineageVarId id : var_ids) {
    PCQE_ASSIGN_OR_RETURN(const Tuple* t, catalog_->FindTuple(id));
    BaseTupleSpec spec;
    spec.id = id;
    spec.confidence = t->confidence();
    spec.max_confidence = t->max_confidence();
    spec.cost = t->cost_function();
    specs.push_back(std::move(spec));
  }

  ProblemOptions options;
  options.beta = beta;
  options.delta = improvement_delta;
  PCQE_ASSIGN_OR_RETURN(
      IncrementProblem problem,
      IncrementProblem::Build(arena, lineages, query_of,
                              std::vector<size_t>(needed.begin(), needed.end()),
                              std::move(specs), options));

  SolverKind effective = solver;
  if (effective == SolverKind::kAuto) {
    effective = (problem.num_base_tuples() <= auto_heuristic_limit && problem.is_monotone())
                    ? SolverKind::kHeuristic
                    : SolverKind::kDnc;
  }
  Result<IncrementSolution> solved = [&]() -> Result<IncrementSolution> {
    switch (effective) {
      case SolverKind::kHeuristic: {
        HeuristicOptions heuristic_options;
        heuristic_options.parallelism = lanes;
        heuristic_options.deadline = deadline;
        heuristic_options.cancel = cancel;
        if (greedy_fallback_under_pressure && !deadline.infinite() &&
            problem.is_monotone()) {
          // Prime the exact search with a fast greedy incumbent: B&B then
          // only explores subtrees that can beat it, and if the deadline
          // lands mid-search the incumbent is already a feasible anytime
          // answer. When the greedy pass alone ate the budget, skip the
          // exact pass and hand back the greedy plan tagged partial (it is
          // feasible but not proven optimal).
          GreedyOptions primer;
          primer.parallelism = lanes;
          primer.deadline = deadline;
          primer.cancel = cancel;
          Result<IncrementSolution> primed = SolveGreedy(problem, primer);
          if (primed.ok() && primed->feasible) {
            if (deadline.RemainingSeconds() < pressure_fallback_seconds) {
              IncrementSolution fallback = std::move(*primed);
              if (!fallback.partial) {
                fallback.partial = true;
                fallback.stop = SolveStop::kDeadline;
                fallback.search_complete = false;
              }
              return fallback;
            }
            heuristic_options.initial_upper_bound = primed->total_cost;
            heuristic_options.initial_assignment = primed->new_confidence;
          }
        }
        return SolveHeuristic(problem, heuristic_options);
      }
      case SolverKind::kGreedy: {
        GreedyOptions greedy_options;
        greedy_options.parallelism = lanes;
        greedy_options.deadline = deadline;
        greedy_options.cancel = cancel;
        return SolveGreedy(problem, greedy_options);
      }
      case SolverKind::kDnc: {
        DncOptions dnc_options;
        dnc_options.parallelism = lanes;
        dnc_options.deadline = deadline;
        dnc_options.cancel = cancel;
        return SolveDnc(problem, dnc_options);
      }
      case SolverKind::kBruteForce:
        // The reference solver stays un-deadlined: it is the ground truth
        // the differential harness compares against, never a serving path.
        return SolveBruteForce(problem);
      case SolverKind::kAuto:
        break;
    }
    return Status::Internal("unresolved solver kind");
  }();
  if (!solved.ok()) return solved.status();
  const IncrementSolution& solution = *solved;
  PCQE_RETURN_NOT_OK(ValidateSolution(problem, solution));

  if (metrics_.proposals != nullptr) {
    metrics_.proposals->Increment();
    metrics_.solve_seconds->Observe(solution.solve_seconds);
    if (solution.partial) metrics_.partial->Increment();
    if (solution.stop == SolveStop::kDeadline) metrics_.deadline_exceeded->Increment();
    const auto items = solution.effort.Items();
    for (size_t i = 0; i < items.size() && i < metrics_.solver_effort.size(); ++i) {
      metrics_.solver_effort[i]->Increment(items[i].second);
    }
  }
  span.Annotate("algorithm", solution.algorithm);
  span.Annotate("cost", FormatDouble(solution.total_cost, 4));
  span.Annotate("feasible", solution.feasible ? "yes" : "no");
  span.Annotate("nodes", std::to_string(solution.nodes_explored));
  if (solution.partial) {
    span.Annotate("partial", "yes");
    span.Annotate("stop", std::string(SolveStopToString(solution.stop)));
  }

  StrategyProposal proposal;
  proposal.needed = true;
  proposal.feasible = solution.feasible;
  proposal.total_cost = solution.total_cost;
  proposal.actions = solution.Actions(problem);
  proposal.algorithm = solution.algorithm;
  proposal.solve_seconds = solution.solve_seconds;
  proposal.effort = solution.effort;
  proposal.partial = solution.partial;
  proposal.stop = solution.stop;
  return proposal;
}

Status PcqeEngine::AcceptProposal(const StrategyProposal& proposal) {
  if (!proposal.needed) {
    return Status::InvalidArgument("proposal carries no improvement actions");
  }
  PCQE_INJECT_FAULT(fault_sites::kCatalogAccept);
  // Write-ahead discipline: validate first (a doomed accept must not reach
  // the log), then append + sync the transaction, and only then mutate the
  // catalog. A logging failure leaves the catalog untouched — version
  // included — so callers and caches never observe an unlogged accept.
  PCQE_RETURN_NOT_OK(improver_.Validate(proposal.actions));
  if (storage_ != nullptr) {
    std::vector<WalAction> logged;
    logged.reserve(proposal.actions.size());
    for (const IncrementAction& a : proposal.actions) {
      PCQE_ASSIGN_OR_RETURN(const Tuple* t, catalog_->FindTuple(a.base_tuple));
      logged.push_back({a.base_tuple, t->confidence(), a.to,
                        t->cost_function()->Increment(t->confidence(), a.to)});
    }
    PCQE_RETURN_NOT_OK(storage_->LogAccept(catalog_->confidence_version(),
                                           logged));
  }
  Status applied = improver_.Apply(proposal.actions);
  if (audit_ != nullptr && audit_->enabled()) {
    AuditRecord rec;
    rec.kind = AuditRecord::Kind::kAccept;
    rec.accept_actions = proposal.actions.size();
    rec.accept_cost = proposal.total_cost;
    rec.accept_ok = applied.ok();
    if (!applied.ok()) rec.accept_error = applied.message();
    // Post-apply version: a successful accept bumped it, so the record pins
    // which catalog state subsequent query decisions read.
    rec.confidence_version = catalog_->confidence_version();
    audit_->Record(std::move(rec));
  }
  return applied;
}

}  // namespace pcqe
