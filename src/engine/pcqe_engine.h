// Copyright (c) PCQE contributors.
// The PCQE engine: the paper's Figure 1 data flow behind one facade.

#ifndef PCQE_ENGINE_PCQE_ENGINE_H_
#define PCQE_ENGINE_PCQE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/deadline.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "improve/improver.h"
#include "policy/confidence_policy.h"
#include "policy/rbac.h"
#include "query/confidence_index.h"
#include "query/query_engine.h"
#include "relational/catalog.h"
#include "strategy/solution.h"
#include "telemetry/audit.h"
#include "telemetry/metrics.h"
#include "telemetry/profile.h"
#include "telemetry/trace.h"

namespace pcqe {

class StorageManager;

/// \brief Which strategy-finding algorithm the engine runs.
enum class SolverKind : uint8_t {
  /// Exact branch-and-bound on small problems (≤ `auto_heuristic_limit`
  /// base tuples), divide-and-conquer otherwise.
  kAuto = 0,
  kHeuristic = 1,
  kGreedy = 2,
  kDnc = 3,
  kBruteForce = 4,  ///< tiny problems only; for verification
};

/// \brief A user query as the paper defines it: ⟨Q, pu, perc⟩ plus the
/// issuing user (the subject whose roles select the policy).
struct QueryRequest {
  std::string sql;
  std::string user;
  std::string purpose;
  /// perc/θ: fraction of the query's results the user needs released.
  double required_fraction = 0.5;
  SolverKind solver = SolverKind::kAuto;
  /// Per-request solver lane budget; unset inherits the engine-wide
  /// `solver_parallelism`. The service layer sets this adaptively
  /// (hardware threads / active requests) so concurrent requests share the
  /// pool instead of each fanning out to every core.
  std::optional<SolverParallelism> solver_lanes = std::nullopt;
  /// Absolute budget for the strategy solve (the β filter itself always
  /// runs in full — a deadline can cost plan optimality, never policy
  /// compliance). On expiry the proposal carries the solver's anytime
  /// result tagged `partial`. Infinite by default.
  Deadline deadline = Deadline::Infinite();
  /// Optional caller-owned cancellation flag, forwarded to the solvers.
  const CancelToken* cancel = nullptr;
  /// `EXPLAIN ANALYZE`: collect an `OperatorProfile` for the evaluation and
  /// attach it to `QueryOutcome::profile`. Off by default — profiling is
  /// pay-for-what-you-use (the executors allocate nothing for it when off).
  bool profile = false;
  /// Opt-out knob for β pushdown (`.pushdown off` in the shell). When true
  /// *and* the request qualifies (see `PcqeEngine::ResolvePushdownBeta`),
  /// evaluation prunes sub-β base tuples below joins using per-table
  /// confidence indexes — result-identical to post-filtering. When false the
  /// engine always evaluates the full intermediate result.
  bool pushdown = true;
};

/// \brief The strategy-finding component's report: what it would cost to
/// release enough results, and which base tuples to improve.
struct StrategyProposal {
  /// False when policy filtering already released enough (no strategy run).
  bool needed = false;
  /// True when the computed plan reaches the requirement.
  bool feasible = false;
  /// Total improvement cost of `actions`.
  double total_cost = 0.0;
  /// Base-tuple increments, by catalog-wide tuple id.
  std::vector<IncrementAction> actions;
  /// Which algorithm produced the plan, with its diagnostics.
  std::string algorithm;
  double solve_seconds = 0.0;
  /// Search-effort counters of the solve that produced `actions`
  /// (deterministic at any lane count; see `SolverEffort`).
  SolverEffort effort;
  /// True when the solve was stopped early (deadline / cancellation / node
  /// budget) and `actions` is its best anytime plan; `stop` says why.
  bool partial = false;
  SolveStop stop = SolveStop::kComplete;
};

/// \brief Everything the engine hands back for one request.
struct QueryOutcome {
  /// All intermediate results (pre-policy), with lineage and confidence.
  QueryResult intermediate;
  /// The resolved policy decision (threshold β and matched policies).
  PolicyDecision policy;
  /// Indices into `intermediate.rows` the user may see.
  std::vector<size_t> released;
  /// Released fraction θ′ = |released| / |rows| (1 when there are no rows).
  double released_fraction = 1.0;
  /// Set when `released_fraction` fell short of the requested fraction.
  StrategyProposal proposal;
  /// Id of the recorded pipeline trace (0 when tracing was off); retrieve
  /// it with `Tracer::Get`.
  uint64_t trace_id = 0;
  /// Per-operator execution profile; set only when `QueryRequest::profile`
  /// was on (`EXPLAIN ANALYZE`).
  std::shared_ptr<OperatorProfile> profile;
  /// Id of the audit record documenting this decision (0 when no audit log
  /// is attached); retrieve it with `AuditLog::Get`.
  uint64_t audit_id = 0;

  /// Formats the released rows (only) as a text table.
  std::string ReleasedTable(size_t max_rows = 50) const;
};

/// \brief Facade wiring query evaluation, confidence computation, policy
/// enforcement, strategy finding and quality improvement together.
///
/// Lifecycle of `Submit` (Figure 1):
///  1. evaluate the SQL query, computing per-result confidence by lineage;
///  2. resolve the confidence policy for (user, purpose) and filter;
///  3. if fewer than `required_fraction` of results clear the threshold,
///     run strategy finding on the blocked results and attach a costed
///     proposal (nothing is modified yet — the user must accept);
///  4. `AcceptProposal` applies the improvement via `QualityImprover`;
///     re-`Submit` then returns the enlarged result set.
///
/// Const-correctness doubles as the concurrency contract: the whole read
/// path (`Submit`, `SubmitBatch`, `Evaluate`, `Complete`) is `const`, and
/// `AcceptProposal` is the only member that mutates the catalog. The engine
/// owns the reader–writer lock (`catalog_mu()`) that makes the contract
/// operational but never takes it itself: concurrent callers hold a
/// `ReaderLock` across the read path and a `WriterLock` around
/// `AcceptProposal`, and under clang the `PCQE_REQUIRES*` annotations turn
/// a missing lock into a compile error. Strictly single-threaded callers
/// outside the analyzed tree (unit tests, benches) may call lock-free —
/// with one thread there is nothing to race — but everything the analyzer
/// sees (the library and the shell) takes the lock.
class PcqeEngine {
 public:
  /// The engine borrows the catalog (it must outlive the engine) and owns
  /// the RBAC and policy configuration.
  PcqeEngine(Catalog* catalog, RoleGraph roles, PolicyStore policies)
      : catalog_(catalog),
        roles_(std::move(roles)),
        policies_(std::move(policies)),
        improver_(catalog) {}

  /// Points the engine at a metrics registry and trace ring (both borrowed;
  /// they must outlive the engine). Registers the engine's counters on the
  /// registry and caches the instrument pointers. Call before serving —
  /// attachment is not synchronized against concurrent `Submit`s.
  void AttachTelemetry(TelemetryRegistry* registry, Tracer* tracer);

  TelemetryRegistry* telemetry() const { return registry_; }
  Tracer* tracer() const { return tracer_; }

  /// Attaches a compliance audit log (borrowed; must outlive the engine;
  /// null detaches). Once attached, every `Complete` appends one record per
  /// policy decision and every `AcceptProposal` one per applied increment —
  /// see telemetry/audit.h for the privacy contract. Call before serving;
  /// attachment is not synchronized against concurrent `Submit`s (the log
  /// itself is thread-safe once attached).
  void AttachAudit(AuditLog* audit) { audit_ = audit; }
  AuditLog* audit() const { return audit_; }

  /// Attaches a durable-storage manager (borrowed; must outlive the
  /// engine; null detaches). Once attached, `AcceptProposal` becomes a
  /// logged transaction: the increments are appended + synced to the WAL
  /// *before* any confidence changes, and a logging failure rolls the
  /// whole accept back — no catalog mutation, no version bump. Call before
  /// serving; attachment is not synchronized against concurrent accepts.
  void AttachStorage(StorageManager* storage) { storage_ = storage; }
  StorageManager* storage() const { return storage_; }

  /// The reader–writer lock over engine/catalog state. Concurrent callers
  /// hold it shared across the read path (`Submit`, `SubmitBatch`,
  /// `Evaluate`, `Complete`) and exclusive around `AcceptProposal`; the
  /// engine itself never locks, so callers control the critical-section
  /// extent (e.g. the service pairs a cache lookup with the evaluation
  /// under one shared hold).
  SharedMutex& catalog_mu() const PCQE_RETURN_CAPABILITY(catalog_mu_) {
    return catalog_mu_;
  }

  /// Runs steps 1-3 above. When a `Tracer` is attached and enabled, records
  /// one trace per call ("submit" root with evaluate / policy-filter / solve
  /// child spans) and sets `QueryOutcome::trace_id`.
  [[nodiscard]] Result<QueryOutcome> Submit(const QueryRequest& request) const
      PCQE_REQUIRES_SHARED(catalog_mu_);

  /// Runs several requests as one batch (§4's multi-query extension): the
  /// strategy problem spans all blocked results and must satisfy every
  /// request's requirement simultaneously. All requests must resolve to the
  /// same confidence threshold (same role/purpose class); otherwise
  /// `kInvalidArgument`. Per-request outcomes carry a shared proposal
  /// (attached to the first outcome whose request needed it).
  [[nodiscard]] Result<std::vector<QueryOutcome>> SubmitBatch(
      const std::vector<QueryRequest>& requests) const
      PCQE_REQUIRES_SHARED(catalog_mu_);

  /// Step 1 alone: evaluates the SQL and computes result confidences. The
  /// returned `QueryResult` is user-independent (no policy applied), which
  /// makes it shareable across subjects — the service layer caches it keyed
  /// on (normalized SQL, catalog confidence-version). When `trace` is
  /// non-null an "evaluate" span (with parse/plan/execute/lineage children)
  /// is added. A non-null `profile` collects per-operator statistics
  /// (`EXPLAIN ANALYZE`) and feeds the `pcqe_query_operator_seconds_*`
  /// histograms. A set `pushdown_beta` asks the planner to prune base
  /// tuples at or below that confidence under every scan (see
  /// `ResolvePushdownBeta` — only pass a β that resolver returned for the
  /// requesting subject; the result then differs from the unpushed one only
  /// in rows the policy filter would block anyway).
  [[nodiscard]] Result<QueryResult> Evaluate(
      const std::string& sql, TraceBuilder* trace = nullptr,
      OperatorProfile* profile = nullptr,
      std::optional<double> pushdown_beta = std::nullopt) const
      PCQE_REQUIRES_SHARED(catalog_mu_);

  /// Decides whether β pushdown applies to `request` and, if so, returns the
  /// resolved policy threshold to prune at. Returns `nullopt` — evaluate
  /// unpushed — unless ALL of:
  ///  - `request.pushdown` is true (the opt-out knob);
  ///  - `request.required_fraction == 0.0`: with no release requirement the
  ///    strategy solver never runs, so pruned blocked rows can't change
  ///    proposals, released sets, or fractions;
  ///  - the SQL parses and plans, and the plan shape is pushdown-safe
  ///    (`IsConfidencePushdownSafe`);
  ///  - the subject's resolved threshold β is > 0 (a zero threshold prunes
  ///    nothing — skipping keeps policy-less queries bit-identical).
  /// Qualifying calls pre-warm the per-table confidence indexes (counted by
  /// `pcqe_engine_index_rebuilds_total`). The service layer calls this under
  /// the same shared lock as the cache lookup so the cache key can fork on
  /// the pushdown mode.
  [[nodiscard]] std::optional<double> ResolvePushdownBeta(
      const QueryRequest& request) const PCQE_REQUIRES_SHARED(catalog_mu_);

  /// The per-table confidence-index cache backing β pushdown. Exposed so
  /// recovery paths can `Invalidate()` it: WAL replay restores durable
  /// confidences while `RestoreConfidenceVersion` keeps the version
  /// monotone, so a zone map built over unlogged post-crash mutations could
  /// otherwise still validate against the replayed catalog.
  ConfidenceIndexCache* confidence_index() const { return &index_cache_; }

  /// Steps 2-3 on an already-evaluated result: resolves the policy for the
  /// request's subject, filters, and runs strategy finding on a shortfall.
  /// `intermediate` must come from `Evaluate` (or a cache of it) against the
  /// catalog's current confidences. When `trace` is non-null a "complete"
  /// span with "policy-filter" (β and per-β release/drop counts — the audit
  /// trail) and "solve" children is added.
  [[nodiscard]] Result<QueryOutcome> Complete(const QueryRequest& request,
                                              QueryResult intermediate,
                                              TraceBuilder* trace = nullptr) const
      PCQE_REQUIRES_SHARED(catalog_mu_);

  /// Applies a proposal's increments to the database. The caller re-submits
  /// the query afterwards to receive the enlarged result set. Sole mutator
  /// of catalog state; bumps `Catalog::confidence_version()`. With a
  /// storage manager attached (see `AttachStorage`) the accept is durable:
  /// validate, WAL-log + sync, then apply — all or nothing.
  [[nodiscard]] Status AcceptProposal(const StrategyProposal& proposal)
      PCQE_REQUIRES(catalog_mu_);

  /// \name Component access.
  /// @{
  RoleGraph* roles() { return &roles_; }
  const RoleGraph& roles() const { return roles_; }
  PolicyStore* policies() { return &policies_; }
  const PolicyStore& policies() const { return policies_; }
  const QualityImprover& improver() const { return improver_; }
  Catalog* catalog() { return catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  /// @}

  /// Problems at or below this base-tuple count use the exact solver under
  /// `SolverKind::kAuto`.
  size_t auto_heuristic_limit = 10;

  /// Confidence-increment granularity δ used when posing strategy problems.
  double improvement_delta = 0.1;

  /// Under a finite request deadline, `kAuto` (and an explicit `kHeuristic`)
  /// first runs a deadline-bounded greedy pass whose result both primes the
  /// exact search (initial upper bound + feasible incumbent) and serves as
  /// the anytime fallback; when the remaining budget is already below
  /// `pressure_fallback_seconds` the exact pass is skipped entirely and the
  /// greedy plan is returned tagged `partial` (feasible, not proven optimal).
  bool greedy_fallback_under_pressure = true;
  double pressure_fallback_seconds = 0.010;

  /// Which query interpreter `Evaluate` runs. Both produce bit-identical
  /// results (rows, confidences, lineage — see tests/vectorized_test.cc);
  /// the row engine is kept as the differential reference, the vectorized
  /// column-chunk engine is the default.
  ExecutionMode execution_mode = ExecutionMode::kVectorized;

  /// Worker-lane budget for the strategy solvers (0 = hardware concurrency,
  /// 1 = fully sequential). The solvers return identical solutions at any
  /// setting; this only trades solve wall-clock. Threads come from the
  /// process-wide `ThreadPool::Shared()`, so concurrent `Submit`s contend
  /// for the same lanes rather than oversubscribing the machine.
  SolverParallelism solver_parallelism;

 private:
  /// Step 2 for one request: validates the required fraction, resolves the
  /// policy and splits `outcome->intermediate.rows` into released/blocked.
  /// Returns how many more rows must clear the threshold (0 = satisfied).
  [[nodiscard]] Result<size_t> FilterOne(const QueryRequest& request, QueryOutcome* outcome,
                                         std::vector<size_t>* blocked) const
      PCQE_REQUIRES_SHARED(catalog_mu_);

  /// Builds and solves the increment problem for the blocked rows of one or
  /// more evaluated queries. `blocked[q]` are row indices into
  /// `outcomes[q]->intermediate.rows`; `needed[q]` is how many must flip.
  /// `lanes` is the resolved per-request lane budget; `deadline`/`cancel`
  /// bound the solve (see `QueryRequest`); `trace`, when non-null, receives
  /// a "solve" span.
  [[nodiscard]] Result<StrategyProposal> FindStrategy(const std::vector<const QueryOutcome*>& outcomes,
                                        const std::vector<std::vector<size_t>>& blocked,
                                        const std::vector<size_t>& needed, double beta,
                                        SolverKind solver, SolverParallelism lanes,
                                        Deadline deadline, const CancelToken* cancel,
                                        TraceBuilder* trace = nullptr) const
      PCQE_REQUIRES_SHARED(catalog_mu_);

  /// Cached instrument pointers, registered by `AttachTelemetry`.
  struct EngineMetrics {
    Counter* queries = nullptr;
    Counter* rows_released = nullptr;
    Counter* rows_blocked = nullptr;
    Counter* proposals = nullptr;
    Counter* deadline_exceeded = nullptr;
    Counter* partial = nullptr;
    Histogram* solve_seconds = nullptr;
    /// Vectorized-interpreter throughput counters (zero under `kRow`).
    Counter* vec_chunks = nullptr;
    Counter* vec_rows = nullptr;
    Counter* vec_join_groups = nullptr;
    Counter* vec_fallback_rows = nullptr;
    /// β-pushdown counters: whole chunks skipped via the zone map
    /// (vectorized engine only), rows pruned under scans (both engines),
    /// and confidence-index (re)builds.
    Counter* pushdown_chunks_pruned = nullptr;
    Counter* pushdown_rows_pruned = nullptr;
    Counter* index_rebuilds = nullptr;
    /// `pcqe_solver_<field>_total`, in `SolverEffort::Items()` order.
    std::vector<Counter*> solver_effort;
    /// `pcqe_query_operator_seconds_<kind>`, keyed by lowercase operator
    /// kind ("scan", "join", ...); fed by profiled evaluations only.
    std::map<std::string, Histogram*> operator_seconds;
  };

  /// Feeds each profiled operator's wall time into its per-kind
  /// `pcqe_query_operator_seconds_<kind>` histogram.
  void ObserveOperatorSeconds(const OperatorProfile& profile) const;

  /// Appends the `Complete` decision (β filter + solver outcome) to the
  /// attached audit log; returns the record id (0 when unattached).
  [[nodiscard]] uint64_t RecordQueryAudit(const QueryRequest& request,
                                          const QueryOutcome& outcome,
                                          const std::vector<size_t>& blocked) const
      PCQE_REQUIRES_SHARED(catalog_mu_);

  /// See `catalog_mu()`. Mutable: the lock is taken (by callers) around
  /// const reads too.
  mutable SharedMutex catalog_mu_;

  Catalog* catalog_;
  RoleGraph roles_;
  PolicyStore policies_;
  QualityImprover improver_;
  TelemetryRegistry* registry_ = nullptr;  // borrowed; may be null
  Tracer* tracer_ = nullptr;               // borrowed; may be null
  StorageManager* storage_ = nullptr;      // borrowed; may be null
  AuditLog* audit_ = nullptr;              // borrowed; may be null
  EngineMetrics metrics_;
  /// Lazily (re)built per-table confidence zone maps for β pushdown. The
  /// cache has its own internal mutex (it must be consultable under the
  /// shared read path), so it is *not* guarded by `catalog_mu_`; mutable
  /// because `Evaluate`/`ResolvePushdownBeta` are const reads.
  mutable ConfidenceIndexCache index_cache_;
};

}  // namespace pcqe

#endif  // PCQE_ENGINE_PCQE_ENGINE_H_
