// Copyright (c) PCQE contributors.
// Lead-time estimation for improvement plans — the paper's stated future
// work: "Since actually improving data quality may take some time, the user
// can submit the query in advance [...] and statistics can be used to let
// the user know 'how much time' in advance he needs to issue the query."

#ifndef PCQE_IMPROVE_LEAD_TIME_H_
#define PCQE_IMPROVE_LEAD_TIME_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "relational/tuple.h"
#include "strategy/solution.h"

namespace pcqe {

/// \brief How long one acquisition action takes: a fixed setup time (order
/// the report, schedule the audit) plus a duration proportional to how much
/// confidence is being bought.
struct AcquisitionTimeModel {
  double fixed_seconds = 0.0;
  double seconds_per_unit = 0.0;  ///< per unit of confidence raised

  /// Duration of raising confidence by `delta` (>= 0).
  double Duration(double delta) const {
    return delta <= 0.0 ? 0.0 : fixed_seconds + seconds_per_unit * delta;
  }
};

/// \brief Estimates how far in advance a query must be issued for a given
/// improvement plan to complete.
///
/// Each base tuple may carry its own time model (e.g. medical-record
/// abstraction takes weeks, a registry lookup minutes); unmapped tuples use
/// the default. Acquisitions may run concurrently on a bounded number of
/// "workers" (auditors, analysts): the estimate schedules actions with the
/// longest-processing-time-first rule, a standard (4/3 − 1/3m)-approximation
/// of the optimal makespan.
class LeadTimeEstimator {
 public:
  explicit LeadTimeEstimator(AcquisitionTimeModel default_model = {})
      : default_model_(default_model) {}

  /// Overrides the time model for one base tuple.
  void SetModel(BaseTupleId tuple, AcquisitionTimeModel model) {
    models_[tuple] = model;
  }

  /// The model in effect for `tuple`.
  const AcquisitionTimeModel& ModelFor(BaseTupleId tuple) const {
    auto it = models_.find(tuple);
    return it == models_.end() ? default_model_ : it->second;
  }

  /// Duration of one action under its tuple's model.
  double ActionSeconds(const IncrementAction& action) const {
    return ModelFor(action.base_tuple).Duration(action.to - action.from);
  }

  /// \brief Estimated wall-clock completion time of the whole plan with
  /// `workers` concurrent acquisition channels.
  ///
  /// `workers == 1` degenerates to the exact sum of durations; otherwise
  /// the LPT makespan is returned. Returns `kInvalidArgument` for zero
  /// workers.
  [[nodiscard]] Result<double> EstimateSeconds(const std::vector<IncrementAction>& actions,
                                 size_t workers = 1) const;

 private:
  AcquisitionTimeModel default_model_;
  std::map<BaseTupleId, AcquisitionTimeModel> models_;
};

}  // namespace pcqe

#endif  // PCQE_IMPROVE_LEAD_TIME_H_
