#include "improve/improver.h"

#include "common/string_util.h"

namespace pcqe {

Status QualityImprover::Validate(const std::vector<IncrementAction>& actions) const {
  // Nothing is written unless every action is applicable.
  for (const IncrementAction& a : actions) {
    PCQE_ASSIGN_OR_RETURN(const Tuple* t, catalog_->FindTuple(a.base_tuple));
    if (a.to <= t->confidence() + kEpsilon) {
      return Status::InvalidArgument(StrFormat(
          "improvement for tuple %llu targets %g but confidence is already %g",
          static_cast<unsigned long long>(a.base_tuple), a.to, t->confidence()));
    }
    if (a.to > t->max_confidence() + kEpsilon) {
      return Status::InvalidArgument(StrFormat(
          "improvement for tuple %llu targets %g above its ceiling %g",
          static_cast<unsigned long long>(a.base_tuple), a.to, t->max_confidence()));
    }
  }
  return Status::OK();
}

Status QualityImprover::Apply(const std::vector<IncrementAction>& actions) {
  PCQE_RETURN_NOT_OK(Validate(actions));
  // Commit pass.
  for (const IncrementAction& a : actions) {
    PCQE_ASSIGN_OR_RETURN(const Tuple* t, catalog_->FindTuple(a.base_tuple));
    double from = t->confidence();
    double cost = t->cost_function()->Increment(from, a.to);
    PCQE_RETURN_NOT_OK(catalog_->SetConfidence(a.base_tuple, a.to));
    log_.push_back({a.base_tuple, from, a.to, cost});
    total_cost_ += cost;
  }
  return Status::OK();
}

}  // namespace pcqe
