#include "improve/lead_time.h"

#include <algorithm>
#include <queue>

namespace pcqe {

Result<double> LeadTimeEstimator::EstimateSeconds(
    const std::vector<IncrementAction>& actions, size_t workers) const {
  if (workers == 0) {
    return Status::InvalidArgument("lead-time estimate needs at least one worker");
  }
  std::vector<double> durations;
  durations.reserve(actions.size());
  for (const IncrementAction& a : actions) durations.push_back(ActionSeconds(a));

  if (workers == 1) {
    double total = 0.0;
    for (double d : durations) total += d;
    return total;
  }

  // Longest-processing-time-first onto the least-loaded worker.
  std::sort(durations.begin(), durations.end(), std::greater<>());
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (size_t w = 0; w < workers; ++w) loads.push(0.0);
  for (double d : durations) {
    double least = loads.top();
    loads.pop();
    loads.push(least + d);
  }
  double makespan = 0.0;
  while (!loads.empty()) {
    makespan = loads.top();
    loads.pop();
  }
  return makespan;
}

}  // namespace pcqe
