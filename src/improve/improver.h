// Copyright (c) PCQE contributors.
// Data-quality improvement — the component that *applies* a chosen strategy
// (Figure 1, steps (8)-(9)).

#ifndef PCQE_IMPROVE_IMPROVER_H_
#define PCQE_IMPROVE_IMPROVER_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/catalog.h"
#include "strategy/solution.h"

namespace pcqe {

/// \brief One committed confidence change, for auditing.
struct ImprovementRecord {
  BaseTupleId tuple = 0;
  double from = 0.0;
  double to = 0.0;
  double cost = 0.0;
};

/// \brief Applies increment actions to the catalog, atomically per call.
///
/// In the paper this component stands for the real-world acquisition step
/// (buying a report, running an audit); here it updates stored confidences
/// and keeps an audit log of every change and its cost. Apply is
/// all-or-nothing: every action is validated (tuple exists, target within
/// (current, ceiling]) before any confidence is written.
class QualityImprover {
 public:
  /// `catalog` must outlive the improver.
  explicit QualityImprover(Catalog* catalog) : catalog_(catalog) {}

  /// Validates and commits `actions`. Returns `kInvalidArgument` /
  /// `kNotFound` without modifying anything when any action is invalid.
  /// Actions targeting a confidence at or below the current value are
  /// rejected (quality improvement never lowers confidence).
  [[nodiscard]] Status Apply(const std::vector<IncrementAction>& actions);

  /// The validation pass of `Apply` alone, mutating nothing. The engine's
  /// durable accept path runs this *before* logging the transaction, so a
  /// doomed accept is rejected without ever touching the WAL.
  [[nodiscard]] Status Validate(const std::vector<IncrementAction>& actions) const;

  /// Total cost committed through this improver.
  double total_cost_spent() const { return total_cost_; }

  /// Every committed change, in order.
  const std::vector<ImprovementRecord>& log() const { return log_; }

 private:
  Catalog* catalog_;
  std::vector<ImprovementRecord> log_;
  double total_cost_ = 0.0;
};

}  // namespace pcqe

#endif  // PCQE_IMPROVE_IMPROVER_H_
