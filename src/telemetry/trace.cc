#include "telemetry/trace.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "telemetry/metrics.h"

namespace pcqe {

namespace {

void AppendSpanTree(const Trace& trace, int32_t parent, int indent,
                    std::string* out) {  // NOLINT(misc-no-recursion)
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& s = trace.spans[i];
    if (s.parent != parent) continue;
    double ms = static_cast<double>(s.end_ns - s.start_ns) / 1e6;
    *out += StrFormat("%*s%s %.3fms", indent * 2, "", s.name.c_str(), ms);
    for (const auto& [key, value] : s.annotations) {
      *out += StrFormat(" %s=%s", key.c_str(), value.c_str());
    }
    *out += "\n";
    AppendSpanTree(trace, static_cast<int32_t>(i), indent + 1, out);
  }
}

}  // namespace

std::string Trace::ToString() const {
  std::string out = StrFormat("trace %llu [%s] %.3fms, %zu span(s)\n",
                              static_cast<unsigned long long>(id), label.c_str(),
                              static_cast<double>(duration_ns) / 1e6, spans.size());
  AppendSpanTree(*this, -1, 1, &out);
  return out;
}

TraceBuilder::TraceBuilder(std::string label, Clock::time_point origin)
    : origin_(origin) {
  trace_.label = std::move(label);
}

uint64_t TraceBuilder::ElapsedNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - origin_)
          .count());
}

size_t TraceBuilder::BeginSpan(std::string name) {
  Span span;
  span.name = std::move(name);
  span.start_ns = ElapsedNs();
  span.parent = open_.empty() ? -1 : static_cast<int32_t>(open_.back());
  trace_.spans.push_back(std::move(span));
  open_.push_back(trace_.spans.size() - 1);
  return trace_.spans.size() - 1;
}

void TraceBuilder::EndSpan(size_t index) {
  PCQE_CHECK(!open_.empty() && open_.back() == index)
      << "spans must close innermost-first";
  trace_.spans[index].end_ns = ElapsedNs();
  open_.pop_back();
}

void TraceBuilder::Annotate(size_t index, std::string key, std::string value) {
  PCQE_CHECK(index < trace_.spans.size());
  trace_.spans[index].annotations.emplace_back(std::move(key), std::move(value));
}

Trace TraceBuilder::Finish() {
  while (!open_.empty()) EndSpan(open_.back());
  trace_.duration_ns = ElapsedNs();
  return std::move(trace_);
}

bool Tracer::TracingEnabledEnv() { return TelemetryEnabled(); }

void Tracer::AttachTelemetry(TelemetryRegistry* registry) {
  MutexLock lock(mu_);
  evicted_total_ = registry->GetCounter(
      "pcqe_traces_evicted_total", "Traces evicted from the bounded ring.");
}

uint64_t Tracer::Record(Trace trace) {
  MutexLock lock(mu_);
  trace.id = next_id_++;
  uint64_t id = trace.id;
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    if (evicted_total_ != nullptr) evicted_total_->Increment();
  }
  return id;
}

std::vector<Trace> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  return {ring_.rbegin(), ring_.rend()};
}

std::optional<Trace> Tracer::Get(uint64_t id) const {
  MutexLock lock(mu_);
  for (const Trace& t : ring_) {
    if (t.id == id) return t;
  }
  return std::nullopt;
}

uint64_t Tracer::total_recorded() const {
  MutexLock lock(mu_);
  return next_id_ - 1;
}

}  // namespace pcqe
