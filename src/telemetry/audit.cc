#include "telemetry/audit.h"

#include "common/string_util.h"
#include "telemetry/metrics.h"

namespace pcqe {

std::string AuditRecord::ToString() const {
  if (kind == Kind::kAccept) {
    std::string out = StrFormat(
        "audit %llu [accept] actions=%llu cost=%s version=%llu %s\n",
        static_cast<unsigned long long>(id),
        static_cast<unsigned long long>(accept_actions),
        FormatDouble(accept_cost).c_str(),
        static_cast<unsigned long long>(confidence_version),
        accept_ok ? "applied" : "rejected");
    if (!accept_error.empty()) out += StrFormat("  error: %s\n", accept_error.c_str());
    return out;
  }
  std::string out = StrFormat(
      "audit %llu [query] user=%s purpose=%s beta=%s version=%llu\n",
      static_cast<unsigned long long>(id), user.c_str(), purpose.c_str(),
      FormatDouble(beta).c_str(),
      static_cast<unsigned long long>(confidence_version));
  out += StrFormat("  sql: %s\n", sql.c_str());
  out += StrFormat(
      "  rows: %llu released / %llu blocked of %llu (released_fraction=%s, "
      "required=%s)\n",
      static_cast<unsigned long long>(rows_released),
      static_cast<unsigned long long>(rows_blocked),
      static_cast<unsigned long long>(rows_total),
      FormatDouble(released_fraction).c_str(),
      FormatDouble(required_fraction).c_str());
  if (pushed_down) {
    out += StrFormat("  pushdown: pruned %llu row(s) / %llu chunk(s)\n",
                     static_cast<unsigned long long>(pruned_rows),
                     static_cast<unsigned long long>(pruned_chunks));
  }
  for (const AuditRowDecision& r : rows) {
    out += StrFormat("  row %llu conf=%s %s", static_cast<unsigned long long>(r.row),
                     FormatDouble(r.confidence).c_str(),
                     r.released ? "released" : "blocked");
    if (!r.lineage.empty()) out += StrFormat(" lineage=%s", r.lineage.c_str());
    out += "\n";
  }
  if (rows_truncated > 0) {
    out += StrFormat("  (+%llu row decision(s) beyond the per-record cap)\n",
                     static_cast<unsigned long long>(rows_truncated));
  }
  if (proposal_needed) {
    out += StrFormat("  proposal: %s cost=%s%s algorithm=%s\n",
                     proposal_feasible ? "feasible" : "infeasible",
                     FormatDouble(proposal_cost).c_str(),
                     proposal_partial ? " (partial)" : "",
                     proposal_algorithm.c_str());
  }
  return out;
}

std::string AuditRecord::ToJson() const {
  if (kind == Kind::kAccept) {
    return StrFormat(
        "{\"id\":%llu,\"kind\":\"accept\",\"actions\":%llu,\"cost\":%.17g,"
        "\"confidence_version\":%llu,\"ok\":%s,\"error\":\"%s\"}",
        static_cast<unsigned long long>(id),
        static_cast<unsigned long long>(accept_actions), accept_cost,
        static_cast<unsigned long long>(confidence_version),
        accept_ok ? "true" : "false", JsonEscape(accept_error).c_str());
  }
  std::string row_items;
  for (const AuditRowDecision& r : rows) {
    if (!row_items.empty()) row_items += ",";
    row_items += StrFormat(
        "{\"row\":%llu,\"confidence\":%.17g,\"released\":%s,\"lineage\":\"%s\"}",
        static_cast<unsigned long long>(r.row), r.confidence,
        r.released ? "true" : "false", JsonEscape(r.lineage).c_str());
  }
  std::string out = StrFormat(
      "{\"id\":%llu,\"kind\":\"query\",\"user\":\"%s\",\"purpose\":\"%s\","
      "\"sql\":\"%s\",\"beta\":%.17g,\"confidence_version\":%llu,"
      "\"required_fraction\":%.17g,\"released_fraction\":%.17g,"
      "\"rows_total\":%llu,\"rows_released\":%llu,\"rows_blocked\":%llu,"
      "\"rows_truncated\":%llu,\"rows\":[%s]",
      static_cast<unsigned long long>(id), JsonEscape(user).c_str(),
      JsonEscape(purpose).c_str(), JsonEscape(sql).c_str(), beta,
      static_cast<unsigned long long>(confidence_version), required_fraction,
      released_fraction, static_cast<unsigned long long>(rows_total),
      static_cast<unsigned long long>(rows_released),
      static_cast<unsigned long long>(rows_blocked),
      static_cast<unsigned long long>(rows_truncated), row_items.c_str());
  if (pushed_down) {
    out += StrFormat(",\"pushdown\":{\"pruned_rows\":%llu,\"pruned_chunks\":%llu}",
                     static_cast<unsigned long long>(pruned_rows),
                     static_cast<unsigned long long>(pruned_chunks));
  }
  if (proposal_needed) {
    out += StrFormat(
        ",\"proposal\":{\"feasible\":%s,\"partial\":%s,\"cost\":%.17g,"
        "\"algorithm\":\"%s\"}",
        proposal_feasible ? "true" : "false", proposal_partial ? "true" : "false",
        proposal_cost, JsonEscape(proposal_algorithm).c_str());
  }
  out += "}";
  return out;
}

void AuditLog::AttachTelemetry(TelemetryRegistry* registry) {
  MutexLock lock(mu_);
  records_total_ = registry->GetCounter("pcqe_audit_records_total",
                                        "Audit records appended to the ring.");
  evicted_total_ = registry->GetCounter(
      "pcqe_audit_evicted_total", "Audit records evicted from the bounded ring.");
}

uint64_t AuditLog::Record(AuditRecord record) {
  if (!enabled()) return 0;
  MutexLock lock(mu_);
  record.id = next_id_++;
  uint64_t id = record.id;
  ring_.push_back(std::move(record));
  if (records_total_ != nullptr) records_total_->Increment();
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    if (evicted_total_ != nullptr) evicted_total_->Increment();
  }
  return id;
}

std::vector<AuditRecord> AuditLog::Snapshot() const {
  MutexLock lock(mu_);
  return {ring_.rbegin(), ring_.rend()};
}

std::optional<AuditRecord> AuditLog::Get(uint64_t id) const {
  MutexLock lock(mu_);
  for (const AuditRecord& r : ring_) {
    if (r.id == id) return r;
  }
  return std::nullopt;
}

uint64_t AuditLog::total_recorded() const {
  MutexLock lock(mu_);
  return next_id_ - 1;
}

std::string AuditLog::RenderJson() const {
  std::vector<AuditRecord> records = Snapshot();
  std::string items;
  for (const AuditRecord& r : records) {
    if (!items.empty()) items += ",";
    items += r.ToJson();
  }
  return StrFormat("{\"audit\":[%s]}", items.c_str());
}

}  // namespace pcqe
