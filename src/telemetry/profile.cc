#include "telemetry/profile.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace pcqe {

namespace {

void AppendNodeTree(const OperatorProfile& profile, int32_t parent, int indent,
                    std::string* out) {  // NOLINT(misc-no-recursion)
  for (size_t i = 0; i < profile.nodes.size(); ++i) {
    const OperatorProfile::Node& n = profile.nodes[i];
    if (n.parent != parent) continue;
    *out += StrFormat("%*s%s  rows=%llu", indent * 2, "", n.label.c_str(),
                      static_cast<unsigned long long>(n.rows_out));
    if (n.rows_in != n.rows_out) {
      *out += StrFormat(" in=%llu sel=%.1f%%",
                        static_cast<unsigned long long>(n.rows_in),
                        n.rows_in == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(n.rows_out) /
                                  static_cast<double>(n.rows_in));
    }
    if (n.chunks > 0) {
      *out += StrFormat(" chunks=%llu", static_cast<unsigned long long>(n.chunks));
    }
    if (n.fallback_rows > 0) {
      *out += StrFormat(" fallback_rows=%llu",
                        static_cast<unsigned long long>(n.fallback_rows));
    }
    if (n.scan_factors > 0 || n.mat_factors > 0) {
      *out += StrFormat(" factors=%llu deferred/%llu materialized",
                        static_cast<unsigned long long>(n.scan_factors),
                        static_cast<unsigned long long>(n.mat_factors));
    }
    if (n.arena_nodes > 0) {
      *out += StrFormat(" arena=%llu", static_cast<unsigned long long>(n.arena_nodes));
    }
    if (n.pruned_chunks > 0 || n.pruned_rows > 0) {
      *out += StrFormat(" pruned=%llu rows/%llu chunks",
                        static_cast<unsigned long long>(n.pruned_rows),
                        static_cast<unsigned long long>(n.pruned_chunks));
    }
    *out += StrFormat(" time=%.3fms\n", static_cast<double>(n.wall_ns) / 1e6);
    AppendNodeTree(profile, static_cast<int32_t>(i), indent + 1, out);
  }
}

}  // namespace

std::string OperatorProfile::RenderText() const {
  uint64_t total_ns = nodes.empty() ? 0 : nodes.front().wall_ns;
  std::string out =
      StrFormat("explain analyze [%s] %zu operator(s), %.3fms\n", mode.c_str(),
                nodes.size(), static_cast<double>(total_ns) / 1e6);
  AppendNodeTree(*this, -1, 1, &out);
  return out;
}

std::string OperatorProfile::RenderJson() const {
  std::string ops;
  for (const Node& n : nodes) {
    if (!ops.empty()) ops += ",";
    ops += StrFormat(
        "{\"op\":\"%s\",\"parent\":%d,\"rows_in\":%llu,\"rows_out\":%llu,"
        "\"chunks\":%llu,\"fallback_rows\":%llu,\"scan_factors\":%llu,"
        "\"mat_factors\":%llu,\"arena_nodes\":%llu,\"pruned_chunks\":%llu,"
        "\"pruned_rows\":%llu,\"seconds\":%.9f}",
        JsonEscape(n.label).c_str(), n.parent,
        static_cast<unsigned long long>(n.rows_in),
        static_cast<unsigned long long>(n.rows_out),
        static_cast<unsigned long long>(n.chunks),
        static_cast<unsigned long long>(n.fallback_rows),
        static_cast<unsigned long long>(n.scan_factors),
        static_cast<unsigned long long>(n.mat_factors),
        static_cast<unsigned long long>(n.arena_nodes),
        static_cast<unsigned long long>(n.pruned_chunks),
        static_cast<unsigned long long>(n.pruned_rows),
        static_cast<double>(n.wall_ns) / 1e9);
  }
  return StrFormat("{\"mode\":\"%s\",\"operators\":[%s]}", JsonEscape(mode).c_str(),
                   ops.c_str());
}

size_t OperatorProfiler::Begin(std::string label) {
  if (profile_ == nullptr) return 0;
  OperatorProfile::Node node;
  node.label = std::move(label);
  node.parent = open_.empty() ? -1 : static_cast<int32_t>(open_.back());
  profile_->nodes.push_back(std::move(node));
  open_.push_back(profile_->nodes.size() - 1);
  start_.push_back(Clock::now());
  return profile_->nodes.size() - 1;
}

void OperatorProfiler::End(size_t index, uint64_t rows_out, const Extra& extra) {
  if (profile_ == nullptr) return;
  PCQE_CHECK(!open_.empty() && open_.back() == index)
      << "operators must close innermost-first";
  OperatorProfile::Node& node = profile_->nodes[index];
  node.rows_out = rows_out;
  // `extra` holds inclusive deltas. Because operators close innermost-first,
  // every node after `index` is one of its descendants and already carries
  // its exclusive share — subtracting them leaves this operator's own work.
  Extra self = extra;
  for (size_t i = index + 1; i < profile_->nodes.size(); ++i) {
    const OperatorProfile::Node& d = profile_->nodes[i];
    self.chunks -= std::min(self.chunks, d.chunks);
    self.fallback_rows -= std::min(self.fallback_rows, d.fallback_rows);
    self.arena_nodes -= std::min(self.arena_nodes, d.arena_nodes);
    self.pruned_chunks -= std::min(self.pruned_chunks, d.pruned_chunks);
    self.pruned_rows -= std::min(self.pruned_rows, d.pruned_rows);
  }
  node.chunks = self.chunks;
  node.fallback_rows = self.fallback_rows;
  node.scan_factors = extra.scan_factors;
  node.mat_factors = extra.mat_factors;
  node.arena_nodes = self.arena_nodes;
  node.pruned_chunks = self.pruned_chunks;
  node.pruned_rows = self.pruned_rows;
  node.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start_.back())
          .count());
  // rows_in: what the children fed this operator; a leaf feeds itself.
  uint64_t rows_in = 0;
  bool has_children = false;
  for (size_t i = index + 1; i < profile_->nodes.size(); ++i) {
    if (profile_->nodes[i].parent == static_cast<int32_t>(index)) {
      has_children = true;
      rows_in += profile_->nodes[i].rows_out;
    }
  }
  node.rows_in = has_children ? rows_in : rows_out;
  open_.pop_back();
  start_.pop_back();
}

}  // namespace pcqe
