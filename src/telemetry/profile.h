// Copyright (c) PCQE contributors.
// Operator-level query profiling (`EXPLAIN ANALYZE`).
//
// An `OperatorProfile` is a pre-order plan tree annotated with per-operator
// execution statistics: rows in/out, column chunks scanned, row-at-a-time
// fallback rows, factors kept deferred vs. materialized, lineage-arena nodes
// interned, and inclusive wall time. Both executors collect into the same
// structure (the row engine simply leaves the chunk/factor columns at zero),
// so an `EXPLAIN ANALYZE` differential across `ExecutionMode`s compares
// per-operator row counts directly.
//
// Collection protocol: the executor wraps its dispatch with an
// `OperatorProfiler`, a TraceBuilder-style parent-stack collector. A null
// profiler (the serving default) costs one pointer test per operator and
// allocates nothing — profiling is strictly pay-for-what-you-use
// (`bench/micro_query` pins the overhead).
//
// This header knows nothing about plans or executors: operators arrive as
// pre-rendered label strings, so the telemetry library stays below the query
// layer in the dependency order.

#ifndef PCQE_TELEMETRY_PROFILE_H_
#define PCQE_TELEMETRY_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pcqe {

/// \brief A profiled plan tree, one node per executed operator in pre-order
/// (a node's children follow it and point back via `parent`).
struct OperatorProfile {
  struct Node {
    std::string label;      ///< operator summary, e.g. `Scan orders`
    int32_t parent = -1;    ///< index of the enclosing operator, -1 for the root
    uint64_t rows_in = 0;   ///< sum of the children's `rows_out` (own rows for leaves)
    uint64_t rows_out = 0;  ///< rows (or factorized row count) this operator produced
    uint64_t chunks = 0;    ///< column chunks this operator itself scanned
    uint64_t fallback_rows = 0;   ///< rows routed through the row-at-a-time fallback
    uint64_t scan_factors = 0;    ///< result factors still backed by a base table
    uint64_t mat_factors = 0;     ///< result factors with materialized lineage
    uint64_t arena_nodes = 0;     ///< lineage nodes interned while this operator ran
    uint64_t pruned_chunks = 0;   ///< chunks skipped whole by β pushdown's zone map
    uint64_t pruned_rows = 0;     ///< base rows dropped by β pushdown
    uint64_t wall_ns = 0;         ///< inclusive wall time (children included)
  };

  std::string mode;  ///< `row` or `vectorized`
  std::vector<Node> nodes;

  /// Annotated plan tree for the shell's `.explain analyze`: one line per
  /// operator with rows, selectivity, chunk/factor/arena counts and time.
  std::string RenderText() const;

  /// One-line JSON: `{"mode":"...","operators":[{...}]}` with labels escaped.
  std::string RenderJson() const;
};

/// \brief Parent-stack collector used by one executor at a time.
///
/// Null-tolerant: every method is a no-op single branch when constructed over
/// a null profile, so the executors call it unconditionally on their hot path.
class OperatorProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  /// Counters accumulated between the matching `Begin` and `End` (inclusive
  /// deltas — executors snapshot their cumulative stats at `Begin`). `End`
  /// attributes them exclusively: it subtracts what the descendants already
  /// recorded, so e.g. chunk counts land on the scans, not on the join above.
  struct Extra {
    uint64_t chunks = 0;
    uint64_t fallback_rows = 0;
    uint64_t scan_factors = 0;
    uint64_t mat_factors = 0;
    uint64_t arena_nodes = 0;
    uint64_t pruned_chunks = 0;
    uint64_t pruned_rows = 0;
  };

  explicit OperatorProfiler(OperatorProfile* profile) : profile_(profile) {}
  OperatorProfiler(const OperatorProfiler&) = delete;
  OperatorProfiler& operator=(const OperatorProfiler&) = delete;

  bool enabled() const { return profile_ != nullptr; }

  /// Opens an operator node as a child of the innermost open one and returns
  /// its index. Returns 0 when disabled (ignored by `End`).
  size_t Begin(std::string label);

  /// Closes the innermost open node (must be `index`), recording its row
  /// count and counters and computing `rows_in` from the children.
  void End(size_t index, uint64_t rows_out, const Extra& extra);

 private:
  OperatorProfile* profile_;
  std::vector<size_t> open_;                  // parent stack of node indices
  std::vector<Clock::time_point> start_;      // parallel to open_
};

}  // namespace pcqe

#endif  // PCQE_TELEMETRY_PROFILE_H_
