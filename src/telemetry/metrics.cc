#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace pcqe {

namespace {

/// Instrument names double as exposition-format identifiers; reject anything
/// that would not round-trip through the text parser.
bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  if (name[0] >= '0' && name[0] <= '9') return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

/// Shortest round-trip-ish rendering for sample values; integers print
/// without a decimal point so counters stay exact in the text format.
std::string FormatSample(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.10g", v);
}

std::string FormatBound(double bound) {
  if (std::isinf(bound)) return "+Inf";
  return FormatSample(bound);
}

/// Round-trip rendering for the JSON dump: integers stay exact and compact,
/// everything else gets the full 17 significant digits so `strtod` on the
/// emitted text reproduces the stored double bit-for-bit.
std::string FormatJsonNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

constexpr double kRenderedQuantiles[] = {0.5, 0.95, 0.99};
constexpr const char* kQuantileLabels[] = {"0.5", "0.95", "0.99"};

}  // namespace

bool TelemetryEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("PCQE_TELEMETRY");
    if (v == nullptr) return true;
    std::string s = ToLowerAscii(v);
    return !(s == "0" || s == "off" || s == "false");
  }();
  return enabled;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    PCQE_CHECK(bounds_[i - 1] < bounds_[i]) << "histogram bounds must ascend";
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

double Histogram::Quantile(const std::vector<double>& bounds, const Snapshot& snap,
                           double q) {
  if (snap.count == 0) return 0.0;
  double rank = q * static_cast<double>(snap.count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < snap.counts.size(); ++b) {
    uint64_t in_bucket = snap.counts[b];
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank || in_bucket == 0) continue;
    if (b >= bounds.size()) {
      // +Inf bucket: no upper edge to interpolate toward; clamp to the
      // highest finite bound (0 when the histogram has no finite bounds).
      return bounds.empty() ? 0.0 : bounds.back();
    }
    double lower = b == 0 ? 0.0 : bounds[b - 1];
    double upper = bounds[b];
    double before = static_cast<double>(cumulative - in_bucket);
    return lower +
           (upper - lower) * (rank - before) / static_cast<double>(in_bucket);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Counter* TelemetryRegistry::GetCounter(std::string_view name, std::string_view help) {
  PCQE_CHECK(ValidMetricName(name)) << "bad metric name '" << std::string(name) << "'";
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    PCQE_CHECK(it->second.kind == Kind::kCounter)
        << "'" << std::string(name) << "' already registered with another kind";
    return &counters_[it->second.index];
  }
  counters_.emplace_back();
  entries_.emplace(std::string(name),
                   Entry{Kind::kCounter, counters_.size() - 1, std::string(help)});
  return &counters_.back();
}

Gauge* TelemetryRegistry::GetGauge(std::string_view name, std::string_view help) {
  PCQE_CHECK(ValidMetricName(name)) << "bad metric name '" << std::string(name) << "'";
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    PCQE_CHECK(it->second.kind == Kind::kGauge)
        << "'" << std::string(name) << "' already registered with another kind";
    return &gauges_[it->second.index];
  }
  gauges_.emplace_back();
  entries_.emplace(std::string(name),
                   Entry{Kind::kGauge, gauges_.size() - 1, std::string(help)});
  return &gauges_.back();
}

Histogram* TelemetryRegistry::GetHistogram(std::string_view name,
                                           std::vector<double> bounds,
                                           std::string_view help) {
  PCQE_CHECK(ValidMetricName(name)) << "bad metric name '" << std::string(name) << "'";
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    PCQE_CHECK(it->second.kind == Kind::kHistogram)
        << "'" << std::string(name) << "' already registered with another kind";
    Histogram* h = &histograms_[it->second.index];
    PCQE_CHECK(h->bounds() == bounds)
        << "'" << std::string(name) << "' re-registered with different bounds";
    return h;
  }
  histograms_.emplace_back(std::move(bounds));
  entries_.emplace(std::string(name),
                   Entry{Kind::kHistogram, histograms_.size() - 1, std::string(help)});
  return &histograms_.back();
}

std::string TelemetryRegistry::RenderText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) {
      out += StrFormat("# HELP %s %s\n", name.c_str(), entry.help.c_str());
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += StrFormat("# TYPE %s counter\n", name.c_str());
        out += StrFormat("%s %llu\n", name.c_str(),
                         static_cast<unsigned long long>(
                             counters_[entry.index].value()));
        break;
      case Kind::kGauge:
        out += StrFormat("# TYPE %s gauge\n", name.c_str());
        out += StrFormat("%s %lld\n", name.c_str(),
                         static_cast<long long>(gauges_[entry.index].value()));
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[entry.index];
        Histogram::Snapshot snap = h.snapshot();
        out += StrFormat("# TYPE %s histogram\n", name.c_str());
        uint64_t cumulative = 0;
        for (size_t b = 0; b < snap.counts.size(); ++b) {
          cumulative += snap.counts[b];
          double bound = b < h.bounds().size()
                             ? h.bounds()[b]
                             : std::numeric_limits<double>::infinity();
          out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
                           FormatBound(bound).c_str(),
                           static_cast<unsigned long long>(cumulative));
        }
        out += StrFormat("%s_sum %s\n", name.c_str(), FormatSample(snap.sum).c_str());
        out += StrFormat("%s_count %llu\n", name.c_str(),
                         static_cast<unsigned long long>(snap.count));
        if (snap.count > 0) {
          for (size_t q = 0; q < std::size(kRenderedQuantiles); ++q) {
            out += StrFormat(
                "%s{quantile=\"%s\"} %s\n", name.c_str(), kQuantileLabels[q],
                FormatSample(
                    Histogram::Quantile(h.bounds(), snap, kRenderedQuantiles[q]))
                    .c_str());
          }
        }
        break;
      }
    }
  }
  return out;
}

std::string TelemetryRegistry::RenderJson() const {
  MutexLock lock(mu_);
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += StrFormat("\"%s\":%llu", name.c_str(),
                              static_cast<unsigned long long>(
                                  counters_[entry.index].value()));
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += StrFormat("\"%s\":%lld", name.c_str(),
                            static_cast<long long>(gauges_[entry.index].value()));
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[entry.index];
        Histogram::Snapshot snap = h.snapshot();
        // Bounds and sums go through the round-trip formatter: the JSON dump
        // is machine-consumed, so a bound like 0.1 must parse back to the
        // exact registered double (`%.10g` silently drops low bits).
        std::string bounds;
        for (double b : h.bounds()) {
          if (!bounds.empty()) bounds += ",";
          bounds += FormatJsonNumber(b);
        }
        std::string counts;
        for (uint64_t c : snap.counts) {
          if (!counts.empty()) counts += ",";
          counts += StrFormat("%llu", static_cast<unsigned long long>(c));
        }
        std::string quantiles;
        if (snap.count > 0) {
          quantiles = StrFormat(
              ",\"p50\":%s,\"p95\":%s,\"p99\":%s",
              FormatJsonNumber(Histogram::Quantile(h.bounds(), snap, 0.5)).c_str(),
              FormatJsonNumber(Histogram::Quantile(h.bounds(), snap, 0.95)).c_str(),
              FormatJsonNumber(Histogram::Quantile(h.bounds(), snap, 0.99)).c_str());
        }
        if (!histograms.empty()) histograms += ",";
        histograms += StrFormat(
            "\"%s\":{\"bounds\":[%s],\"counts\":[%s],\"sum\":%s,\"count\":%llu%s}",
            name.c_str(), bounds.c_str(), counts.c_str(),
            FormatJsonNumber(snap.sum).c_str(),
            static_cast<unsigned long long>(snap.count), quantiles.c_str());
        break;
      }
    }
  }
  return StrFormat("{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}",
                   counters.c_str(), gauges.c_str(), histograms.c_str());
}

}  // namespace pcqe
