// Copyright (c) PCQE contributors.
// Lock-cheap metrics registry: named counters, gauges and histograms with
// Prometheus-style text exposition and a JSON dump.
//
// Design rules (the reason this lives in its own library):
//   * Instruments are registered once (mutex-guarded, idempotent by name)
//     and then updated through plain pointers with relaxed atomics — the
//     hot path takes no lock and publishes no other memory.
//   * Instrument pointers stay valid for the registry's lifetime (deque
//     storage, entries are never removed), so callers cache them in
//     constructors and never look anything up per event.
//   * Names are flat `snake_case` identifiers (`pcqe_<component>_<what>`,
//     counters end in `_total`); there are no labels. One name maps to one
//     instrument forever — re-registering returns the existing one.

#ifndef PCQE_TELEMETRY_METRICS_H_
#define PCQE_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"

namespace pcqe {

/// True unless the environment opts out (`PCQE_TELEMETRY` set to `0`, `off`
/// or `false`, case-insensitive). Read once per process. Gates the *optional*
/// observability work (trace recording); registries themselves always
/// function so tests can rely on them.
bool TelemetryEnabled();

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time signed value (queue depths, active sessions, lane
/// decisions). Settable from any thread.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket distribution (the service latency-bucket scheme
/// generalized): `bounds` are inclusive upper bounds in ascending order, and
/// an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// Non-cumulative per-bucket counts (`bounds.size() + 1` entries, the last
  /// is the +Inf bucket), plus total count and sum of observed values.
  struct Snapshot {
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Bucket-interpolated quantile estimate (`q` in [0, 1]), the Prometheus
  /// `histogram_quantile` scheme: the target rank is located in the cumulative
  /// bucket counts and linearly interpolated inside its bucket (lower edge 0
  /// for the first bucket). Observations in the +Inf bucket clamp to the
  /// highest finite bound. Returns 0 for an empty snapshot.
  static double Quantile(const std::vector<double>& bounds, const Snapshot& snap,
                         double q);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};  // CAS add; doubles have no fetch_add pre-C++20 on all ABIs
};

/// \brief Process- or service-scoped collection of named instruments.
///
/// `Get*` is registration and lookup in one: the first call with a name
/// creates the instrument, later calls return the same pointer (the kind and
/// histogram bounds must match — a mismatch is a programming error and
/// PCQE_CHECK-fails). Returned pointers live as long as the registry.
class TelemetryRegistry {
 public:
  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds,
                          std::string_view help = "");

  /// Prometheus-style text exposition: `# HELP` / `# TYPE` preambles, one
  /// sample line per counter/gauge, cumulative `_bucket{le="..."}` plus
  /// `_sum` / `_count` per histogram. Instruments render sorted by name.
  std::string RenderText() const;

  /// One-line JSON object (the bench `BENCH {...}` conventions):
  /// `{"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
  /// "counts":[...],"sum":s,"count":n}}}`.
  std::string RenderJson() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    size_t index;  // into the deque for its kind
    std::string help;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_ PCQE_GUARDED_BY(mu_);
  std::deque<Counter> counters_ PCQE_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ PCQE_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ PCQE_GUARDED_BY(mu_);
};

}  // namespace pcqe

#endif  // PCQE_TELEMETRY_METRICS_H_
