// Copyright (c) PCQE contributors.
// Compliance audit log: a bounded ring of structured policy decisions.
//
// Every β filter the engine applies appends one record — who asked, for what
// purpose, which threshold the policy resolved to, the catalog confidence
// version the decision read, and the per-row released/blocked verdicts — and
// every `AcceptProposal` appends the accepted increment's outcome. Together
// they make the paper's pipeline reconstructible after the fact: given the
// ring, an auditor can replay why each row was released or withheld and which
// confidence improvements were applied.
//
// Privacy contract: blocked rows are described by *lineage identifiers only*
// (`table#row` of the contributing base tuples). Audit records never carry
// result values — a blocked value leaking through an audit export would
// defeat the policy the record documents. `audit_test` pins this.
//
// Thread-safety: the ring is mutex-guarded like the Tracer; `Record` is one
// short lock hold per decision and is safe from concurrent service workers.

#ifndef PCQE_TELEMETRY_AUDIT_H_
#define PCQE_TELEMETRY_AUDIT_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"

namespace pcqe {

class Counter;
class TelemetryRegistry;

/// \brief One row's verdict under the β filter.
struct AuditRowDecision {
  uint64_t row = 0;        ///< index in the query result
  double confidence = 0.0; ///< the confidence the policy compared against β
  bool released = false;
  /// Lineage summary for blocked rows (`orders#3 * customers#1`); empty for
  /// released rows and when lineage identifiers are unavailable. Never holds
  /// result values.
  std::string lineage;
};

/// \brief One audit record: a query-time policy decision or an accepted
/// confidence-improvement proposal.
struct AuditRecord {
  enum class Kind : uint8_t { kQuery, kAccept };

  uint64_t id = 0;  ///< assigned by the log on Record (1-based, monotonic)
  Kind kind = Kind::kQuery;

  // -- kQuery: the ⟨user, purpose, β⟩ decision --------------------------------
  std::string user;
  std::string purpose;
  std::string sql;
  double beta = 0.0;                 ///< resolved policy threshold
  uint64_t confidence_version = 0;   ///< catalog version the decision read
  double required_fraction = 0.0;
  double released_fraction = 0.0;
  uint64_t rows_total = 0;
  uint64_t rows_released = 0;
  uint64_t rows_blocked = 0;
  std::vector<AuditRowDecision> rows;  ///< capped; see `rows_truncated`
  uint64_t rows_truncated = 0;         ///< per-row detail dropped beyond the cap
  /// β pushdown: whether the evaluated plan pruned sub-β base tuples below
  /// joins, and how much it skipped. Pruned rows are policy-blocked by
  /// construction (monotonicity), so the verdicts above remain the complete
  /// released set either way.
  bool pushed_down = false;
  uint64_t pruned_chunks = 0;  ///< whole chunks skipped via the zone map
  uint64_t pruned_rows = 0;    ///< base rows pruned under scans
  // Solver outcome when the release fraction fell short.
  bool proposal_needed = false;
  bool proposal_feasible = false;
  bool proposal_partial = false;
  double proposal_cost = 0.0;
  std::string proposal_algorithm;

  // -- kAccept: an applied proposal ------------------------------------------
  uint64_t accept_actions = 0;
  double accept_cost = 0.0;
  bool accept_ok = false;
  std::string accept_error;

  /// Multi-line human rendering for the shell's `.audit <id>`.
  std::string ToString() const;

  /// One-line JSON object.
  std::string ToJson() const;
};

/// \brief Bounded in-memory ring of audit records. Thread-safe.
///
/// Unlike tracing, the audit log ignores the `PCQE_TELEMETRY` opt-out:
/// accountability is part of the policy model, not optional observability.
/// A capacity of 0 disables it.
class AuditLog {
 public:
  explicit AuditLog(size_t capacity = 256, size_t max_rows_per_record = 64)
      : capacity_(capacity), max_rows_(max_rows_per_record) {}
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  bool enabled() const { return capacity_ > 0; }

  /// Per-record cap on retained `AuditRowDecision` detail; producers trim to
  /// this and set `rows_truncated` before recording.
  size_t max_rows_per_record() const { return max_rows_; }

  /// Registers `pcqe_audit_records_total` / `pcqe_audit_evicted_total`.
  /// Call before the log is shared with concurrent writers.
  void AttachTelemetry(TelemetryRegistry* registry);

  /// Assigns the next id, stores the record (evicting the oldest beyond
  /// capacity) and returns the id. Returns 0 when disabled.
  uint64_t Record(AuditRecord record);

  /// Newest-first copies of the retained records.
  std::vector<AuditRecord> Snapshot() const;

  /// The record with `id`, if still in the ring.
  std::optional<AuditRecord> Get(uint64_t id) const;

  uint64_t total_recorded() const;

  /// One-line JSON export, newest first: `{"audit":[{...},...]}`.
  std::string RenderJson() const;

 private:
  size_t capacity_;
  size_t max_rows_;
  mutable Mutex mu_;
  uint64_t next_id_ PCQE_GUARDED_BY(mu_) = 1;
  std::deque<AuditRecord> ring_ PCQE_GUARDED_BY(mu_);  // front = oldest
  Counter* records_total_ PCQE_GUARDED_BY(mu_) = nullptr;
  Counter* evicted_total_ PCQE_GUARDED_BY(mu_) = nullptr;
};

}  // namespace pcqe

#endif  // PCQE_TELEMETRY_AUDIT_H_
