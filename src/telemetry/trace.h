// Copyright (c) PCQE contributors.
// Span-based tracing for the PCQE pipeline (Figure 1 stages as spans).
//
// Lifecycle: a request path constructs one `TraceBuilder` on its own stack,
// opens/closes named spans as the stages run (spans nest via a parent
// stack; `ScopedSpan` closes on scope exit and tolerates a null builder so
// untraced paths pay one branch), then hands the finished `Trace` to a
// `Tracer`, which assigns an id and keeps it in a bounded ring. Timestamps
// are monotonic (`steady_clock`) offsets from the trace origin in
// nanoseconds — never wall-clock, so spans order correctly across clock
// adjustments.

#ifndef PCQE_TELEMETRY_TRACE_H_
#define PCQE_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"

namespace pcqe {

class Counter;
class TelemetryRegistry;

/// \brief One named stage of a traced request.
struct Span {
  std::string name;
  uint64_t start_ns = 0;  ///< offset from the trace origin
  uint64_t end_ns = 0;    ///< 0 while open; >= start_ns once closed
  int32_t parent = -1;    ///< index of the enclosing span, -1 for roots
  /// Ordered key/value audit annotations (β, drop counts, solver effort).
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// \brief A finished trace: label, total duration and the span tree.
struct Trace {
  uint64_t id = 0;  ///< assigned by the Tracer on Record (1-based)
  std::string label;
  uint64_t duration_ns = 0;
  std::vector<Span> spans;

  /// Indented span tree with millisecond durations and annotations, for the
  /// shell's `.trace <id>`.
  std::string ToString() const;
};

/// \brief Single-threaded builder used by one request path at a time.
class TraceBuilder {
 public:
  using Clock = std::chrono::steady_clock;

  /// Origin defaults to now; pass an earlier `origin` to account time spent
  /// before the builder existed (e.g. queue wait measured from enqueue).
  explicit TraceBuilder(std::string label, Clock::time_point origin = Clock::now());

  /// Opens a span as a child of the innermost open span and returns its
  /// index. Spans close in LIFO order (`EndSpan` checks).
  size_t BeginSpan(std::string name);
  void EndSpan(size_t index);

  /// Appends an audit annotation to an open or closed span.
  void Annotate(size_t index, std::string key, std::string value);

  /// Closes any spans left open and returns the trace (builder is spent).
  Trace Finish();

  uint64_t ElapsedNs() const;

 private:
  Clock::time_point origin_;
  Trace trace_;
  std::vector<size_t> open_;  // parent stack
};

/// \brief RAII span that tolerates a null builder (untraced path).
class ScopedSpan {
 public:
  ScopedSpan(TraceBuilder* builder, const char* name)
      : builder_(builder),
        index_(builder == nullptr ? 0 : builder->BeginSpan(name)) {}
  ~ScopedSpan() {
    if (builder_ != nullptr) builder_->EndSpan(index_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Annotate(std::string key, std::string value) {
    if (builder_ != nullptr) builder_->Annotate(index_, std::move(key), std::move(value));
  }

 private:
  TraceBuilder* builder_;
  size_t index_;
};

/// \brief Bounded in-memory ring of finished traces. Thread-safe; `Record`
/// takes one short mutex hold per finished request.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 64) : capacity_(capacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// False when tracing is off (`PCQE_TELEMETRY` opt-out or capacity 0);
  /// request paths skip building traces entirely then.
  bool enabled() const { return capacity_ > 0 && TracingEnabledEnv(); }

  /// Registers `pcqe_traces_evicted_total` so a dropped trace is observable
  /// (the ring otherwise evicts silently). Call before the tracer is shared
  /// with concurrent writers.
  void AttachTelemetry(TelemetryRegistry* registry);

  /// Assigns the next id, stores the trace (evicting the oldest beyond
  /// capacity) and returns the id.
  uint64_t Record(Trace trace);

  /// Newest-first copies of the retained traces.
  std::vector<Trace> Snapshot() const;

  /// The trace with `id`, if still in the ring.
  std::optional<Trace> Get(uint64_t id) const;

  uint64_t total_recorded() const;

 private:
  static bool TracingEnabledEnv();

  mutable Mutex mu_;
  size_t capacity_;
  uint64_t next_id_ PCQE_GUARDED_BY(mu_) = 1;
  std::deque<Trace> ring_ PCQE_GUARDED_BY(mu_);  // front = oldest
  Counter* evicted_total_ PCQE_GUARDED_BY(mu_) = nullptr;
};

}  // namespace pcqe

#endif  // PCQE_TELEMETRY_TRACE_H_
