#include "relational/column_chunk.h"

namespace pcqe {

Value ColumnChunk::ValueAt(size_t i) const {
  PCQE_DCHECK(i < size_);
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value::Bool(bools_[i] != 0);
    case DataType::kInt64:
      return Value::Int(ints_[i]);
    case DataType::kDouble:
      return Value::Double(doubles_[i]);
    case DataType::kString:
      return Value::String(strings_[i]);
  }
  return Value::Null();
}

void ColumnChunk::Append(const Value& v) {
  PCQE_DCHECK(size_ < kColumnChunkCapacity);
  if (v.is_null()) {
    if (nulls_.empty()) nulls_.assign(kColumnChunkCapacity, 0);
    nulls_[size_] = 1;
  }
  switch (type_) {
    case DataType::kNull:
      break;  // a NULL-typed column stores no payload
    case DataType::kBool:
      bools_.push_back(!v.is_null() && *v.AsBool() ? 1 : 0);
      break;
    case DataType::kInt64:
      ints_.push_back(v.is_null() ? 0 : *v.AsInt());
      break;
    case DataType::kDouble:
      doubles_.push_back(v.is_null() ? 0.0 : *v.AsDouble());
      break;
    case DataType::kString:
      strings_.push_back(v.is_null() ? std::string() : *v.AsString());
      break;
  }
  ++size_;
}

void TableColumnData::Reset(const Schema& schema) {
  PCQE_CHECK(num_rows_ == 0) << "column layout changed on a non-empty table";
  column_types_.clear();
  column_types_.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    column_types_.push_back(schema.column(c).type);
  }
  chunks_.clear();
}

void TableColumnData::AppendRow(const std::vector<Value>& values, double confidence) {
  PCQE_DCHECK(values.size() == column_types_.size());
  if (OffsetOf(num_rows_) == 0) {
    auto chunk = std::make_unique<Chunk>();
    chunk->cols.reserve(column_types_.size());
    for (DataType t : column_types_) chunk->cols.emplace_back(t);
    chunk->confidences.reserve(kColumnChunkCapacity);
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = *chunks_.back();
  for (size_t c = 0; c < values.size(); ++c) chunk.cols[c].Append(values[c]);
  chunk.confidences.push_back(confidence);
  ++num_rows_;
}

}  // namespace pcqe
