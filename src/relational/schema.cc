#include "relational/schema.h"

#include "common/string_util.h"

namespace pcqe {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  // Split an optional qualifier.
  std::string qualifier;
  std::string column = name;
  size_t dot = name.find('.');
  if (dot != std::string::npos) {
    qualifier = name.substr(0, dot);
    column = name.substr(dot + 1);
  }

  size_t found = columns_.size();
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (!EqualsIgnoreCaseAscii(c.name, column)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCaseAscii(c.qualifier, qualifier)) continue;
    if (found != columns_.size()) {
      return Status::BindError(StrFormat("column reference '%s' is ambiguous (%s vs %s)",
                                         name.c_str(),
                                         columns_[found].QualifiedName().c_str(),
                                         c.QualifiedName().c_str()));
    }
    found = i;
  }
  if (found == columns_.size()) {
    return Status::NotFound(StrFormat("column '%s' not found in schema %s", name.c_str(),
                                      ToString().c_str()));
  }
  return found;
}

Schema Schema::WithQualifier(const std::string& qualifier) const {
  Schema out;
  for (Column c : columns_) {
    c.qualifier = qualifier;
    out.AddColumn(std::move(c));
  }
  return out;
}

Schema Schema::Concat(const Schema& right) const {
  Schema out = *this;
  for (const Column& c : right.columns_) out.AddColumn(c);
  return out;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(c.QualifiedName() + " " + DataTypeToString(c.type));
  }
  return "(" + JoinStrings(parts, ", ") + ")";
}

}  // namespace pcqe
