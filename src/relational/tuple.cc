#include "relational/tuple.h"

#include "common/string_util.h"

namespace pcqe {

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return StrFormat("(%s) @ p=%s", JoinStrings(parts, ", ").c_str(),
                   FormatDouble(confidence_, 6).c_str());
}

}  // namespace pcqe
