#include "relational/table.h"

#include "common/string_util.h"

namespace pcqe {

namespace {

// Whether a value may be stored into a column of the declared type.
bool TypeAccepts(DataType declared, const Value& v) {
  if (v.is_null()) return true;
  if (v.type() == declared) return true;
  // Integer literals widen into DOUBLE columns.
  return declared == DataType::kDouble && v.type() == DataType::kInt64;
}

}  // namespace

Result<BaseTupleId> Table::Insert(std::vector<Value> values, double confidence,
                                  CostFunctionPtr cost, double max_confidence) {
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("table '%s' expects %zu values, got %zu", name_.c_str(),
                  schema_.num_columns(), values.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!TypeAccepts(schema_.column(i).type, values[i])) {
      return Status::InvalidArgument(StrFormat(
          "table '%s' column '%s' declared %s, got %s", name_.c_str(),
          schema_.column(i).name.c_str(), DataTypeToString(schema_.column(i).type).c_str(),
          DataTypeToString(values[i].type()).c_str()));
    }
    // Normalize widened integers so downstream hashing sees one type.
    if (schema_.column(i).type == DataType::kDouble &&
        values[i].type() == DataType::kInt64) {
      values[i] = Value::Double(*values[i].AsDouble());
    }
  }
  if (confidence < 0.0 || confidence > 1.0) {
    return Status::InvalidArgument(
        StrFormat("confidence %g outside [0, 1]", confidence));
  }
  if (max_confidence < confidence || max_confidence > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "max_confidence %g must lie in [confidence=%g, 1]", max_confidence, confidence));
  }
  if (tuples_.size() >= (1ULL << 32)) {
    return Status::ResourceExhausted(
        StrFormat("table '%s' exceeds 2^32 tuples", name_.c_str()));
  }
  BaseTupleId id =
      (static_cast<BaseTupleId>(table_id_) << 32) | static_cast<BaseTupleId>(tuples_.size());
  tuples_.emplace_back(id, std::move(values), confidence, std::move(cost), max_confidence);
  // Mirror into the columnar chunks with the *clamped* confidence, so chunk
  // confidences and Tuple::confidence() stay bit-identical.
  columns_.AppendRow(tuples_.back().values(), tuples_.back().confidence());
  return id;
}

Result<size_t> Table::RowOf(BaseTupleId id) const {
  if (static_cast<uint32_t>(id >> 32) != table_id_) {
    return Status::NotFound(
        StrFormat("tuple id %llu does not belong to table '%s'",
                  static_cast<unsigned long long>(id), name_.c_str()));
  }
  size_t row = static_cast<size_t>(id & 0xFFFFFFFFULL);
  if (row >= tuples_.size()) {
    return Status::NotFound(StrFormat("tuple id %llu out of range for table '%s'",
                                      static_cast<unsigned long long>(id), name_.c_str()));
  }
  return row;
}

Result<const Tuple*> Table::FindTuple(BaseTupleId id) const {
  PCQE_ASSIGN_OR_RETURN(size_t row, RowOf(id));
  return &tuples_[row];
}

Status Table::SetConfidence(BaseTupleId id, double confidence) {
  PCQE_ASSIGN_OR_RETURN(size_t row, RowOf(id));
  Tuple& t = tuples_[row];
  if (confidence < 0.0 || confidence > t.max_confidence() + kEpsilon) {
    return Status::InvalidArgument(
        StrFormat("confidence %g outside [0, max=%g] for tuple %llu", confidence,
                  t.max_confidence(), static_cast<unsigned long long>(id)));
  }
  t.set_confidence(confidence);
  columns_.StoreConfidence(row, t.confidence());
  return Status::OK();
}

}  // namespace pcqe
