// Copyright (c) PCQE contributors.
// Catalog: the database — a namespace of tables with catalog-wide tuple ids.

#ifndef PCQE_RELATIONAL_CATALOG_H_
#define PCQE_RELATIONAL_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/table.h"

namespace pcqe {

/// \brief Owns all base tables of one confidence-annotated database.
///
/// Table names are case-insensitive. The catalog assigns each table a
/// distinct 32-bit id so `BaseTupleId`s are unique database-wide, which is
/// what lets lineage formulas, policies and improvement plans refer to base
/// tuples without naming their table.
class Catalog {
 public:
  Catalog() = default;

  // Tables hold stable pointers handed out to callers; keep the catalog
  // pinned in place.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Returns `kAlreadyExists` on a duplicate name.
  [[nodiscard]] Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Creates an empty table under an explicit (nonzero) table id, for
  /// snapshot restore: `BaseTupleId`s embed the table id, so a reload must
  /// reproduce the original id assignment or every persisted WAL action and
  /// lineage reference would silently point at the wrong tuples. Fresh ids
  /// handed out afterwards continue past the largest restored id. Returns
  /// `kAlreadyExists` on a duplicate name or id.
  [[nodiscard]] Result<Table*> CreateTableWithId(const std::string& name, Schema schema,
                                                 uint32_t table_id);

  /// Looks up a table by (case-insensitive) name.
  [[nodiscard]] Result<Table*> GetTable(const std::string& name);
  [[nodiscard]] Result<const Table*> GetTable(const std::string& name) const;

  /// Removes a table. Its tuple-id prefix is never reused, so stale
  /// `BaseTupleId`s cannot alias new tuples.
  [[nodiscard]] Status DropTable(const std::string& name);

  /// Names of all tables in creation order.
  std::vector<std::string> TableNames() const;

  /// Routes a catalog-wide tuple id to its tuple.
  [[nodiscard]] Result<const Tuple*> FindTuple(BaseTupleId id) const;

  /// Sets the confidence of the identified tuple (improvement component).
  /// Every successful write bumps `confidence_version()`.
  [[nodiscard]] Status SetConfidence(BaseTupleId id, double confidence);

  /// Monotone counter of committed confidence writes. Cross-request caches
  /// key result sets on this value: a bump invalidates every entry computed
  /// against the older confidences without the catalog knowing about any
  /// cache. Safe to read concurrently with `SetConfidence`.
  [[nodiscard]] uint64_t confidence_version() const {
    return confidence_version_.load(std::memory_order_acquire);
  }

  /// Raises `confidence_version()` to at least `version` (snapshot restore).
  /// Monotone — the version never moves backward, so version-keyed caches
  /// stay sound when a snapshot is loaded into a non-empty catalog. After
  /// `Clear()` the counter is 0 and the restore is exact, which is what
  /// recovery relies on to reproduce the pre-crash version bit-for-bit.
  void RestoreConfidenceVersion(uint64_t version);

  /// Drops every table and resets id assignment and `confidence_version()`
  /// to the initial state, so a recovery can rebuild this catalog in place
  /// from a checkpoint + WAL replay.
  void Clear();

 private:
  /// Lowercased lookup key.
  static std::string Key(const std::string& name);

  std::map<std::string, std::unique_ptr<Table>> tables_;  // key: lowercased name
  std::vector<std::string> creation_order_;               // original-cased names
  uint32_t next_table_id_ = 1;
  // A version, not a stat counter:
  std::atomic<uint64_t> confidence_version_{0};  // pcqe-lint: allow(telemetry)
};

}  // namespace pcqe

#endif  // PCQE_RELATIONAL_CATALOG_H_
