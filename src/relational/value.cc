#include "relational/value.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace pcqe {

std::string DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

Result<bool> Value::AsBool() const {
  if (const bool* v = std::get_if<bool>(&data_)) return *v;
  return Status::InvalidArgument(
      StrFormat("value of type %s is not BOOLEAN", DataTypeToString(type()).c_str()));
}

Result<int64_t> Value::AsInt() const {
  if (const int64_t* v = std::get_if<int64_t>(&data_)) return *v;
  return Status::InvalidArgument(
      StrFormat("value of type %s is not BIGINT", DataTypeToString(type()).c_str()));
}

Result<double> Value::AsDouble() const {
  if (const double* v = std::get_if<double>(&data_)) return *v;
  if (const int64_t* v = std::get_if<int64_t>(&data_)) return static_cast<double>(*v);
  return Status::InvalidArgument(
      StrFormat("value of type %s is not numeric", DataTypeToString(type()).c_str()));
}

Result<std::string> Value::AsString() const {
  if (const std::string* v = std::get_if<std::string>(&data_)) return *v;
  return Status::InvalidArgument(
      StrFormat("value of type %s is not VARCHAR", DataTypeToString(type()).c_str()));
}

namespace {

// Cross-type rank: NULL < BOOL < numeric < STRING.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;
    case DataType::kString:
      return 3;
  }
  return 4;
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case DataType::kNull:
      return 0;
    case DataType::kBool: {
      bool a = std::get<bool>(data_);
      bool b = std::get<bool>(other.data_);
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      // Both sides are numeric (rank 2); compare as doubles. Confidence-DB
      // workloads stay far below the 2^53 range where this would lose
      // precision for BIGINT.
      double a = *AsDouble();
      double b = *other.AsDouble();
      return Sign(a - b);
    }
    case DataType::kString: {
      const std::string& a = std::get<std::string>(data_);
      const std::string& b = std::get<std::string>(other.data_);
      int c = a.compare(b);
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kBool:
      return std::get<bool>(data_) ? 0x517cc1b727220a95ULL : 0x2545f4914f6cdd1dULL;
    case DataType::kInt64:
    case DataType::kDouble: {
      double d = *AsDouble();
      if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0
      return std::hash<double>{}(d);
    }
    case DataType::kString:
      return std::hash<std::string>{}(std::get<std::string>(data_));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(std::get<int64_t>(data_)));
    case DataType::kDouble:
      return FormatDouble(std::get<double>(data_));
    case DataType::kString:
      return std::get<std::string>(data_);
  }
  return "?";
}

}  // namespace pcqe
