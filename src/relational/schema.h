// Copyright (c) PCQE contributors.
// Relation schemas: named, typed columns with optional table qualifiers.

#ifndef PCQE_RELATIONAL_SCHEMA_H_
#define PCQE_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/value.h"

namespace pcqe {

/// \brief One column: an unqualified name, an optional table qualifier, and
/// a declared type.
struct Column {
  std::string name;
  DataType type = DataType::kNull;
  /// The relation (or alias) this column came from; empty for computed
  /// columns. Used to resolve `t.c` references after joins.
  std::string qualifier;

  /// "qualifier.name" when qualified, otherwise "name".
  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// \brief Ordered list of columns describing a relation.
///
/// Lookup is by unqualified or qualified name, case-insensitive (SQL
/// identifier semantics). An unqualified lookup that matches columns from
/// two different qualifiers is ambiguous and returns `kBindError`.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// Number of columns.
  size_t num_columns() const { return columns_.size(); }

  /// Column at `i`; `i` must be in range.
  const Column& column(size_t i) const { return columns_[i]; }

  /// All columns in order.
  const std::vector<Column>& columns() const { return columns_; }

  /// Appends a column (no uniqueness enforcement: joins legitimately
  /// produce same-named columns under different qualifiers).
  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Resolves `name` (either "c" or "t.c") to a column index.
  /// Returns `kNotFound` when absent, `kBindError` when ambiguous.
  [[nodiscard]] Result<size_t> IndexOf(const std::string& name) const;

  /// True iff `IndexOf(name)` would succeed.
  bool Contains(const std::string& name) const { return IndexOf(name).ok(); }

  /// A copy of this schema with every column's qualifier replaced, used for
  /// `FROM t AS alias`.
  Schema WithQualifier(const std::string& qualifier) const;

  /// Concatenation `this ++ right`, used by joins and products.
  Schema Concat(const Schema& right) const;

  /// "(<q.name> <TYPE>, ...)" for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace pcqe

#endif  // PCQE_RELATIONAL_SCHEMA_H_
