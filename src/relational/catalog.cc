#include "relational/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace pcqe {

std::string Catalog::Key(const std::string& name) { return ToLowerAscii(name); }

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  return CreateTableWithId(name, std::move(schema), next_table_id_);
}

Result<Table*> Catalog::CreateTableWithId(const std::string& name, Schema schema,
                                          uint32_t table_id) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (table_id == 0) return Status::InvalidArgument("table id must be nonzero");
  std::string key = Key(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists(StrFormat("table '%s' already exists", name.c_str()));
  }
  for (const auto& [existing_key, table] : tables_) {
    (void)existing_key;
    if (table->table_id() == table_id) {
      return Status::AlreadyExists(
          StrFormat("table id %u already belongs to '%s'", table_id,
                    table->name().c_str()));
    }
  }
  auto table = std::make_unique<Table>(name, std::move(schema), table_id);
  Table* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  creation_order_.push_back(name);
  if (table_id >= next_table_id_) next_table_id_ = table_id + 1;
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s' not found", name.c_str()));
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s' not found", name.c_str()));
  }
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s' not found", name.c_str()));
  }
  tables_.erase(it);
  creation_order_.erase(
      std::remove_if(creation_order_.begin(), creation_order_.end(),
                     [&](const std::string& n) { return Key(n) == Key(name); }),
      creation_order_.end());
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const { return creation_order_; }

void Catalog::RestoreConfidenceVersion(uint64_t version) {
  uint64_t current = confidence_version_.load(std::memory_order_relaxed);
  while (current < version &&
         !confidence_version_.compare_exchange_weak(current, version,
                                                    std::memory_order_release,
                                                    std::memory_order_relaxed)) {
  }
}

void Catalog::Clear() {
  tables_.clear();
  creation_order_.clear();
  next_table_id_ = 1;
  confidence_version_.store(0, std::memory_order_release);
}

Result<const Tuple*> Catalog::FindTuple(BaseTupleId id) const {
  uint32_t table_id = static_cast<uint32_t>(id >> 32);
  for (const auto& [key, table] : tables_) {
    (void)key;
    if (table->table_id() == table_id) return table->FindTuple(id);
  }
  return Status::NotFound(StrFormat("no table owns tuple id %llu",
                                    static_cast<unsigned long long>(id)));
}

Status Catalog::SetConfidence(BaseTupleId id, double confidence) {
  uint32_t table_id = static_cast<uint32_t>(id >> 32);
  for (auto& [key, table] : tables_) {
    (void)key;
    if (table->table_id() == table_id) {
      PCQE_RETURN_NOT_OK(table->SetConfidence(id, confidence));
      confidence_version_.fetch_add(1, std::memory_order_release);
      return Status::OK();
    }
  }
  return Status::NotFound(StrFormat("no table owns tuple id %llu",
                                    static_cast<unsigned long long>(id)));
}

}  // namespace pcqe
