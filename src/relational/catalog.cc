#include "relational/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace pcqe {

std::string Catalog::Key(const std::string& name) { return ToLowerAscii(name); }

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  std::string key = Key(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists(StrFormat("table '%s' already exists", name.c_str()));
  }
  auto table = std::make_unique<Table>(name, std::move(schema), next_table_id_++);
  Table* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  creation_order_.push_back(name);
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s' not found", name.c_str()));
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s' not found", name.c_str()));
  }
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s' not found", name.c_str()));
  }
  tables_.erase(it);
  creation_order_.erase(
      std::remove_if(creation_order_.begin(), creation_order_.end(),
                     [&](const std::string& n) { return Key(n) == Key(name); }),
      creation_order_.end());
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const { return creation_order_; }

Result<const Tuple*> Catalog::FindTuple(BaseTupleId id) const {
  uint32_t table_id = static_cast<uint32_t>(id >> 32);
  for (const auto& [key, table] : tables_) {
    (void)key;
    if (table->table_id() == table_id) return table->FindTuple(id);
  }
  return Status::NotFound(StrFormat("no table owns tuple id %llu",
                                    static_cast<unsigned long long>(id)));
}

Status Catalog::SetConfidence(BaseTupleId id, double confidence) {
  uint32_t table_id = static_cast<uint32_t>(id >> 32);
  for (auto& [key, table] : tables_) {
    (void)key;
    if (table->table_id() == table_id) {
      PCQE_RETURN_NOT_OK(table->SetConfidence(id, confidence));
      confidence_version_.fetch_add(1, std::memory_order_release);
      return Status::OK();
    }
  }
  return Status::NotFound(StrFormat("no table owns tuple id %llu",
                                    static_cast<unsigned long long>(id)));
}

}  // namespace pcqe
