// Copyright (c) PCQE contributors.
// Confidence-annotated base tuples — element (1) of the paper's framework.

#ifndef PCQE_RELATIONAL_TUPLE_H_
#define PCQE_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "cost/cost_function.h"
#include "relational/value.h"

namespace pcqe {

/// Catalog-wide identifier of a base tuple. The lineage layer uses these ids
/// as boolean variables ("p02", "p13" in the paper's running example).
using BaseTupleId = uint64_t;

/// Sentinel for "no tuple".
inline constexpr BaseTupleId kInvalidBaseTupleId = ~0ULL;

/// \brief One stored row: values plus the paper's confidence annotations.
///
/// Beyond the row data, a base tuple carries
/// - `confidence`: trustworthiness in [0, 1] (assigned by the confidence
///   assignment component, e.g. the provenance technique of Dai et al. 2008);
/// - `max_confidence`: the ceiling achievable by quality improvement (the
///   paper's "1 or its maximum possible confidence level");
/// - a `CostFunction` pricing confidence increments for this tuple.
class Tuple {
 public:
  Tuple() = default;

  /// Constructs a tuple with the given payload. `confidence` is clamped to
  /// [0, max_confidence]; a null `cost` falls back to `DefaultCostFunction()`.
  Tuple(BaseTupleId id, std::vector<Value> values, double confidence,
        CostFunctionPtr cost = nullptr, double max_confidence = 1.0)
      : id_(id),
        values_(std::move(values)),
        max_confidence_(ClampProbability(max_confidence)),
        confidence_(std::min(ClampProbability(confidence), max_confidence_)),
        cost_(cost ? std::move(cost) : DefaultCostFunction()) {}

  /// Catalog-wide id.
  BaseTupleId id() const { return id_; }

  /// Row payload.
  const std::vector<Value>& values() const { return values_; }

  /// Value of column `i`; `i` must be in range.
  const Value& value(size_t i) const { return values_[i]; }

  /// Current confidence in [0, max_confidence].
  double confidence() const { return confidence_; }

  /// Ceiling for quality improvement.
  double max_confidence() const { return max_confidence_; }

  /// Cost model for raising this tuple's confidence; never null.
  const CostFunctionPtr& cost_function() const { return cost_; }

  /// Sets the confidence, clamped into [0, max_confidence]. Only the data
  /// quality improvement component should call this on stored tuples.
  void set_confidence(double confidence) {
    confidence_ = std::min(ClampProbability(confidence), max_confidence_);
  }

  /// "(v1, v2, ...) @ p=<confidence>" for diagnostics.
  std::string ToString() const;

 private:
  BaseTupleId id_ = kInvalidBaseTupleId;
  std::vector<Value> values_;
  double max_confidence_ = 1.0;
  double confidence_ = 0.0;
  CostFunctionPtr cost_;
};

}  // namespace pcqe

#endif  // PCQE_RELATIONAL_TUPLE_H_
