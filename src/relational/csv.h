// Copyright (c) PCQE contributors.
// CSV import/export for confidence-annotated tables.

#ifndef PCQE_RELATIONAL_CSV_H_
#define PCQE_RELATIONAL_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"

namespace pcqe {

/// \brief Options for CSV import and export.
struct CsvOptions {
  char delimiter = ',';
  /// Import: first row holds column names. Export: write a header row.
  bool has_header = true;
  /// Import: name of a column carrying per-row confidence in [0, 1]; it is
  /// consumed (not stored as data). Empty means "no confidence column".
  /// Export: when non-empty, append a confidence column under this name.
  std::string confidence_column;
  /// Confidence for rows without a confidence column.
  double default_confidence = 1.0;
  /// Cost function attached to imported tuples; null uses the default.
  CostFunctionPtr default_cost;
};

/// \brief Parses CSV text into a new table in `catalog`.
///
/// RFC-4180 quoting is supported: fields may be wrapped in double quotes,
/// `""` escapes a quote, and quoted fields may contain delimiters and
/// newlines. Column types are inferred from the data: a column whose
/// non-empty fields all parse as integers is BIGINT, all-numeric is DOUBLE,
/// all true/false is BOOLEAN, anything else VARCHAR; empty fields import as
/// NULL. A file with no data rows yields an all-VARCHAR table.
[[nodiscard]] Result<Table*> ImportCsv(Catalog* catalog, const std::string& table_name,
                         const std::string& csv_text, const CsvOptions& options = {});

/// Reads `path` and imports it via `ImportCsv`.
[[nodiscard]] Result<Table*> ImportCsvFile(Catalog* catalog, const std::string& table_name,
                             const std::string& path, const CsvOptions& options = {});

/// \brief Serializes `table` as CSV (quoting fields when needed).
std::string ExportCsv(const Table& table, const CsvOptions& options = {});

/// Writes `ExportCsv(table)` to `path`.
[[nodiscard]] Status ExportCsvFile(const Table& table, const std::string& path,
                     const CsvOptions& options = {});

/// Splits raw CSV text into rows of fields (exposed for tests).
[[nodiscard]] Result<std::vector<std::vector<std::string>>> ParseCsv(const std::string& text,
                                                       char delimiter = ',');

/// Quotes one field for CSV output when it contains the delimiter, quotes
/// or newlines; returns it untouched otherwise.
std::string CsvQuote(const std::string& field, char delimiter = ',');

}  // namespace pcqe

#endif  // PCQE_RELATIONAL_CSV_H_
