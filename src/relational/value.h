// Copyright (c) PCQE contributors.
// Typed values stored in confidence-annotated relations.

#ifndef PCQE_RELATIONAL_VALUE_H_
#define PCQE_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace pcqe {

/// \brief Column/value data types supported by the engine.
enum class DataType : int {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

/// Canonical uppercase SQL-ish name ("BIGINT", "DOUBLE", ...).
std::string DataTypeToString(DataType type);

/// \brief A dynamically typed scalar: NULL, BOOLEAN, BIGINT, DOUBLE or VARCHAR.
///
/// Values use SQL-style three-valued comparison semantics only at the
/// expression layer; `Value` itself provides total ordering (`Compare`) with
/// NULL sorting first, which the sort and distinct operators rely on.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : data_(std::monostate{}) {}

  /// \name Typed factories.
  /// @{
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(v)); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }
  /// @}

  /// The runtime type tag.
  DataType type() const {
    switch (data_.index()) {
      case 0:
        return DataType::kNull;
      case 1:
        return DataType::kBool;
      case 2:
        return DataType::kInt64;
      case 3:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  bool is_null() const { return data_.index() == 0; }

  /// \name Checked accessors; return `kInvalidArgument` on a type mismatch.
  /// @{
  [[nodiscard]] Result<bool> AsBool() const;
  [[nodiscard]] Result<int64_t> AsInt() const;
  /// Numeric widening: BIGINT values convert implicitly.
  [[nodiscard]] Result<double> AsDouble() const;
  [[nodiscard]] Result<std::string> AsString() const;
  /// @}

  /// Total-order comparison: NULL < BOOL < INT/DOUBLE (numerically merged)
  /// < STRING across types; natural order within a type. Returns -1/0/+1.
  int Compare(const Value& other) const;

  /// SQL equality used by joins and DISTINCT: numeric values compare by
  /// value across INT/DOUBLE; NULL equals NULL here (grouping semantics).
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Stable hash consistent with `Equals` (INT 3 and DOUBLE 3.0 collide).
  size_t Hash() const;

  /// Display form: NULL, true/false, digits, or the raw string.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }

 private:
  using Data = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

}  // namespace pcqe

#endif  // PCQE_RELATIONAL_VALUE_H_
