// Copyright (c) PCQE contributors.
// Tables: named collections of confidence-annotated tuples.

#ifndef PCQE_RELATIONAL_TABLE_H_
#define PCQE_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/column_chunk.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace pcqe {

/// \brief A base relation: schema plus row storage.
///
/// Tuple ids are assigned at insertion as `(table_id << 32) | row_index`, so
/// they are unique across a catalog (the catalog hands each table a distinct
/// `table_id`; standalone tables built in tests use table_id 0).
class Table {
 public:
  /// Creates an empty table. `table_id` seeds tuple-id assignment.
  Table(std::string name, Schema schema, uint32_t table_id = 0)
      : name_(std::move(name)), schema_(std::move(schema)), table_id_(table_id) {
    columns_.Reset(schema_);
  }

  /// Table name as registered in the catalog.
  const std::string& name() const { return name_; }

  /// The declared schema.
  const Schema& schema() const { return schema_; }

  /// Number of stored tuples.
  size_t num_tuples() const { return tuples_.size(); }

  /// All tuples in insertion order.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Tuple at `row`; `row` must be in range.
  const Tuple& tuple(size_t row) const { return tuples_[row]; }

  /// \brief Appends a row.
  ///
  /// Validates arity and per-column types (NULL is accepted in any column;
  /// BIGINT widens into DOUBLE columns). Returns the assigned tuple id.
  [[nodiscard]] Result<BaseTupleId> Insert(std::vector<Value> values, double confidence,
                             CostFunctionPtr cost = nullptr, double max_confidence = 1.0);

  /// Looks up a tuple by id within this table.
  [[nodiscard]] Result<const Tuple*> FindTuple(BaseTupleId id) const;

  /// Sets the confidence of tuple `id`. Returns `kNotFound` for foreign ids
  /// and `kInvalidArgument` when `confidence` exceeds the tuple's ceiling.
  [[nodiscard]] Status SetConfidence(BaseTupleId id, double confidence);

  /// The id-space prefix of this table, exposed so the catalog can route a
  /// `BaseTupleId` back to its owning table.
  uint32_t table_id() const { return table_id_; }

  /// The columnar mirror of this table, maintained row-for-row by `Insert`
  /// and `SetConfidence`. Vectorized scans borrow its chunks zero-copy.
  const TableColumnData& column_data() const { return columns_; }

 private:
  /// Row index encoded in `id`, or an error if `id` belongs elsewhere.
  [[nodiscard]] Result<size_t> RowOf(BaseTupleId id) const;

  std::string name_;
  Schema schema_;
  uint32_t table_id_;
  std::vector<Tuple> tuples_;
  TableColumnData columns_;
};

}  // namespace pcqe

#endif  // PCQE_RELATIONAL_TABLE_H_
