// Copyright (c) PCQE contributors.
// Whole-database persistence: schemas, rows, confidences and cost models.

#ifndef PCQE_RELATIONAL_DATABASE_IO_H_
#define PCQE_RELATIONAL_DATABASE_IO_H_

#include <string>

#include "common/result.h"
#include "relational/catalog.h"

namespace pcqe {

/// \brief Serializes every table of `catalog` into `dir`.
///
/// Layout (plain text, diff-friendly):
/// - `dir/manifest.pcqe` — one table name per line, in creation order;
/// - `dir/<table>.schema` — one `name<TAB>TYPE` line per column;
/// - `dir/<table>.csv` — the rows, plus three reserved columns
///   `__confidence`, `__max_confidence` and `__cost` (the cost function in
///   its `ToString` form, e.g. `exponential(a=2, b=3)`).
///
/// `dir` must already exist; files are overwritten.
[[nodiscard]] Status SaveDatabase(const Catalog& catalog, const std::string& dir);

/// \brief Loads a database saved by `SaveDatabase` into `catalog`.
///
/// Column types come from the schema sidecars (no inference), so empty
/// tables and all-NULL columns round-trip exactly. Table creation errors
/// (e.g. a name collision with an existing table) abort the load.
///
/// Note: tuple ids are assigned afresh — `BaseTupleId`s are process-local
/// handles, not persistent identifiers.
[[nodiscard]] Status LoadDatabase(const std::string& dir, Catalog* catalog);

}  // namespace pcqe

#endif  // PCQE_RELATIONAL_DATABASE_IO_H_
