// Copyright (c) PCQE contributors.
// Whole-database persistence: schemas, rows, confidences and cost models.

#ifndef PCQE_RELATIONAL_DATABASE_IO_H_
#define PCQE_RELATIONAL_DATABASE_IO_H_

#include <string>

#include "common/result.h"
#include "relational/catalog.h"

namespace pcqe {

/// \brief Serializes every table of `catalog` into `dir`.
///
/// Layout (plain text, diff-friendly):
/// - `dir/manifest.pcqe` — a format-2 header (`PCQE_DB 2`, then
///   `confidence_version <v>`), followed by one `table <id> <name>` line per
///   table in creation order;
/// - `dir/<table>.schema` — one `name<TAB>TYPE` line per column;
/// - `dir/<table>.csv` — the rows, plus three reserved columns
///   `__confidence`, `__max_confidence` and `__cost` (the cost function in
///   its `ToString` form, e.g. `exponential(a=2, b=3)`).
///
/// `dir` must already exist; files are overwritten.
[[nodiscard]] Status SaveDatabase(const Catalog& catalog, const std::string& dir);

/// \brief Loads a database saved by `SaveDatabase` into `catalog`.
///
/// Column types come from the schema sidecars (no inference), so empty
/// tables and all-NULL columns round-trip exactly. Table creation errors
/// (e.g. a name collision with an existing table) abort the load.
///
/// Format-2 snapshots restore each table under its persisted table id —
/// `BaseTupleId`s embed the table id, so a reload reproduces the exact
/// tuple-id assignment (the durability WAL depends on this) — and raise
/// `Catalog::confidence_version()` to the persisted value (monotone; exact
/// after `Catalog::Clear()`). A malformed or truncated header, a non-numeric
/// confidence cell, or a confidence outside [0, 1] fails the load with a
/// clean `kInvalidArgument`/`kParseError` instead of loading garbage.
/// Legacy headerless manifests (bare table names) still load, with fresh
/// table ids and no version restore.
[[nodiscard]] Status LoadDatabase(const std::string& dir, Catalog* catalog);

}  // namespace pcqe

#endif  // PCQE_RELATIONAL_DATABASE_IO_H_
