#include "relational/database_io.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "relational/csv.h"

namespace pcqe {

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument(StrFormat("cannot write '%s'", path.c_str()));
  out << content;
  return out.good() ? Status::OK()
                    : Status::Internal(StrFormat("write to '%s' failed", path.c_str()));
}

Result<DataType> ParseDataType(const std::string& name) {
  for (DataType t : {DataType::kNull, DataType::kBool, DataType::kInt64,
                     DataType::kDouble, DataType::kString}) {
    if (DataTypeToString(t) == name) return t;
  }
  return Status::ParseError(StrFormat("unknown data type '%s'", name.c_str()));
}

/// Full-precision double for lossless round-trips.
std::string PreciseDouble(double v) { return StrFormat("%.17g", v); }

/// Strict parse of a `__confidence` / `__max_confidence` cell: the whole
/// field must be a number in [0, 1]. The permissive alternative (strtod
/// with no error check) silently loads garbage cells as 0.0, which then
/// leaks through policy filtering as "everything blocked".
Result<double> ParseConfidenceCell(const std::string& field, const char* what) {
  errno = 0;
  char* end = nullptr;
  double v = field.empty() ? 0.0 : std::strtod(field.c_str(), &end);
  if (field.empty() || errno != 0 || end != field.c_str() + field.size()) {
    return Status::InvalidArgument(
        StrFormat("%s cell '%s' is not a number", what, field.c_str()));
  }
  if (!(v >= 0.0 && v <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("%s %.17g outside [0, 1]", what, v));
  }
  return v;
}

/// Strict unsigned-integer field parse for manifest headers.
Result<uint64_t> ParseU64Field(const std::string& field, const char* what) {
  errno = 0;
  char* end = nullptr;
  unsigned long long v =
      field.empty() ? 0 : std::strtoull(field.c_str(), &end, 10);
  if (field.empty() || errno != 0 || end != field.c_str() + field.size()) {
    return Status::InvalidArgument(
        StrFormat("%s '%s' is not an unsigned integer", what, field.c_str()));
  }
  return static_cast<uint64_t>(v);
}

Result<Value> ParseTypedValue(const std::string& field, DataType type) {
  if (field.empty()) return Value::Null();
  char* end = nullptr;
  switch (type) {
    case DataType::kBool:
      if (EqualsIgnoreCaseAscii(field, "true")) return Value::Bool(true);
      if (EqualsIgnoreCaseAscii(field, "false")) return Value::Bool(false);
      return Status::ParseError(StrFormat("'%s' is not a BOOLEAN", field.c_str()));
    case DataType::kInt64: {
      errno = 0;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end != field.c_str() + field.size()) {
        return Status::ParseError(StrFormat("'%s' is not a BIGINT", field.c_str()));
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      errno = 0;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end != field.c_str() + field.size()) {
        return Status::ParseError(StrFormat("'%s' is not a DOUBLE", field.c_str()));
      }
      return Value::Double(v);
    }
    case DataType::kString:
    case DataType::kNull:
      return Value::String(field);
  }
  return Status::Internal("unreachable type");
}

}  // namespace

Status SaveDatabase(const Catalog& catalog, const std::string& dir) {
  // Format-2 header: version counter first, so cache-invalidation state
  // survives a checkpoint/restore round-trip; then explicit table ids, so
  // persisted BaseTupleIds (WAL actions, exported lineage) stay valid.
  std::string manifest = StrFormat(
      "PCQE_DB 2\nconfidence_version %llu\n",
      static_cast<unsigned long long>(catalog.confidence_version()));
  for (const std::string& name : catalog.TableNames()) {
    PCQE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    manifest += StrFormat("table %u ", table->table_id()) + name + "\n";

    // Schema sidecar.
    std::string schema_text;
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      const Column& col = table->schema().column(c);
      schema_text += col.name + "\t" + DataTypeToString(col.type) + "\n";
    }
    PCQE_RETURN_NOT_OK(WriteFile(dir + "/" + name + ".schema", schema_text));

    // Rows with the reserved annotation columns.
    std::string csv;
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      csv += CsvQuote(table->schema().column(c).name) + ",";
    }
    csv += "__confidence,__max_confidence,__cost\n";
    for (const Tuple& t : table->tuples()) {
      for (const Value& v : t.values()) {
        std::string field;
        if (!v.is_null()) {
          field = v.type() == DataType::kDouble ? PreciseDouble(*v.AsDouble())
                                                : v.ToString();
        }
        csv += CsvQuote(field) + ",";
      }
      csv += PreciseDouble(t.confidence()) + "," + PreciseDouble(t.max_confidence()) +
             "," + CsvQuote(t.cost_function()->ToString()) + "\n";
    }
    PCQE_RETURN_NOT_OK(WriteFile(dir + "/" + name + ".csv", csv));
  }
  return WriteFile(dir + "/manifest.pcqe", manifest);
}

Status LoadDatabase(const std::string& dir, Catalog* catalog) {
  PCQE_ASSIGN_OR_RETURN(std::string manifest, ReadFile(dir + "/manifest.pcqe"));
  std::istringstream lines(manifest);
  std::string line;

  // Header. Format 2 starts with "PCQE_DB 2"; a manifest whose first line
  // does not announce a format is a legacy (headerless) v1 list of names.
  uint64_t confidence_version = 0;
  bool v2 = false;
  std::streampos body_start = lines.tellg();
  if (std::getline(lines, line) &&
      std::string(TrimAscii(line)).rfind("PCQE_DB", 0) == 0) {
    v2 = true;
    std::string tail(TrimAscii(std::string(TrimAscii(line)).substr(7)));
    PCQE_ASSIGN_OR_RETURN(uint64_t format,
                          ParseU64Field(tail, "database format version"));
    if (format != 2) {
      return Status::InvalidArgument(
          StrFormat("unsupported database format version %llu (expected 2)",
                    static_cast<unsigned long long>(format)));
    }
    if (!std::getline(lines, line) ||
        std::string(TrimAscii(line)).rfind("confidence_version ", 0) != 0) {
      return Status::InvalidArgument(
          "truncated database header: missing confidence_version line");
    }
    PCQE_ASSIGN_OR_RETURN(
        confidence_version,
        ParseU64Field(std::string(TrimAscii(std::string(TrimAscii(line)).substr(19))),
                      "confidence_version"));
  } else {
    lines.clear();
    lines.seekg(body_start);
  }

  while (std::getline(lines, line)) {
    std::string entry(TrimAscii(line));
    if (entry.empty()) continue;

    std::string name = entry;
    uint32_t table_id = 0;  // 0 = assign fresh (legacy manifests)
    if (v2) {
      if (entry.rfind("table ", 0) != 0) {
        return Status::ParseError(
            StrFormat("malformed manifest line '%s' (expected 'table <id> <name>')",
                      entry.c_str()));
      }
      std::string rest(TrimAscii(entry.substr(6)));
      size_t space = rest.find(' ');
      if (space == std::string::npos) {
        return Status::ParseError(
            StrFormat("malformed manifest line '%s' (expected 'table <id> <name>')",
                      entry.c_str()));
      }
      PCQE_ASSIGN_OR_RETURN(uint64_t id,
                            ParseU64Field(rest.substr(0, space), "table id"));
      if (id == 0 || id > UINT32_MAX) {
        return Status::InvalidArgument(StrFormat(
            "table id %llu out of range", static_cast<unsigned long long>(id)));
      }
      table_id = static_cast<uint32_t>(id);
      name = std::string(TrimAscii(rest.substr(space + 1)));
      if (name.empty()) {
        return Status::ParseError(
            StrFormat("malformed manifest line '%s' (empty table name)",
                      entry.c_str()));
      }
    }

    // Schema sidecar.
    PCQE_ASSIGN_OR_RETURN(std::string schema_text, ReadFile(dir + "/" + name + ".schema"));
    Schema schema;
    std::istringstream schema_lines(schema_text);
    std::string schema_line;
    while (std::getline(schema_lines, schema_line)) {
      if (std::string(TrimAscii(schema_line)).empty()) continue;
      size_t tab = schema_line.find('\t');
      if (tab == std::string::npos) {
        return Status::ParseError(
            StrFormat("malformed schema line '%s' for table '%s'",
                      schema_line.c_str(), name.c_str()));
      }
      PCQE_ASSIGN_OR_RETURN(DataType type, ParseDataType(schema_line.substr(tab + 1)));
      schema.AddColumn({schema_line.substr(0, tab), type, ""});
    }

    Table* table = nullptr;
    if (table_id != 0) {
      PCQE_ASSIGN_OR_RETURN(table, catalog->CreateTableWithId(name, schema, table_id));
    } else {
      PCQE_ASSIGN_OR_RETURN(table, catalog->CreateTable(name, schema));
    }

    // Rows.
    PCQE_ASSIGN_OR_RETURN(std::string csv, ReadFile(dir + "/" + name + ".csv"));
    PCQE_ASSIGN_OR_RETURN(auto rows, ParseCsv(csv));
    const size_t ncols = schema.num_columns();
    const size_t expected = ncols + 3;  // + confidence, max, cost
    for (size_t r = 1; r < rows.size(); ++r) {  // rows[0] is the header
      if (rows[r].size() != expected) {
        return Status::ParseError(
            StrFormat("table '%s' row %zu has %zu fields, expected %zu", name.c_str(),
                      r, rows[r].size(), expected));
      }
      std::vector<Value> values;
      values.reserve(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        auto v = ParseTypedValue(rows[r][c], schema.column(c).type);
        if (!v.ok()) {
          return v.status().WithContext(
              StrFormat("table '%s' row %zu column '%s'", name.c_str(), r,
                        schema.column(c).name.c_str()));
        }
        values.push_back(std::move(*v));
      }
      auto confidence = ParseConfidenceCell(rows[r][ncols], "__confidence");
      if (!confidence.ok()) {
        return confidence.status().WithContext(
            StrFormat("table '%s' row %zu", name.c_str(), r));
      }
      auto max_confidence = ParseConfidenceCell(rows[r][ncols + 1], "__max_confidence");
      if (!max_confidence.ok()) {
        return max_confidence.status().WithContext(
            StrFormat("table '%s' row %zu", name.c_str(), r));
      }
      PCQE_ASSIGN_OR_RETURN(CostFunctionPtr cost, ParseCostFunction(rows[r][ncols + 2]));
      auto inserted =
          table->Insert(std::move(values), *confidence, std::move(cost), *max_confidence);
      if (!inserted.ok()) {
        return inserted.status().WithContext(
            StrFormat("table '%s' row %zu", name.c_str(), r));
      }
    }
  }
  if (v2) catalog->RestoreConfidenceVersion(confidence_version);
  return Status::OK();
}

}  // namespace pcqe
