#include "relational/database_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "relational/csv.h"

namespace pcqe {

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument(StrFormat("cannot write '%s'", path.c_str()));
  out << content;
  return out.good() ? Status::OK()
                    : Status::Internal(StrFormat("write to '%s' failed", path.c_str()));
}

Result<DataType> ParseDataType(const std::string& name) {
  for (DataType t : {DataType::kNull, DataType::kBool, DataType::kInt64,
                     DataType::kDouble, DataType::kString}) {
    if (DataTypeToString(t) == name) return t;
  }
  return Status::ParseError(StrFormat("unknown data type '%s'", name.c_str()));
}

/// Full-precision double for lossless round-trips.
std::string PreciseDouble(double v) { return StrFormat("%.17g", v); }

Result<Value> ParseTypedValue(const std::string& field, DataType type) {
  if (field.empty()) return Value::Null();
  char* end = nullptr;
  switch (type) {
    case DataType::kBool:
      if (EqualsIgnoreCaseAscii(field, "true")) return Value::Bool(true);
      if (EqualsIgnoreCaseAscii(field, "false")) return Value::Bool(false);
      return Status::ParseError(StrFormat("'%s' is not a BOOLEAN", field.c_str()));
    case DataType::kInt64: {
      errno = 0;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end != field.c_str() + field.size()) {
        return Status::ParseError(StrFormat("'%s' is not a BIGINT", field.c_str()));
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      errno = 0;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end != field.c_str() + field.size()) {
        return Status::ParseError(StrFormat("'%s' is not a DOUBLE", field.c_str()));
      }
      return Value::Double(v);
    }
    case DataType::kString:
    case DataType::kNull:
      return Value::String(field);
  }
  return Status::Internal("unreachable type");
}

}  // namespace

Status SaveDatabase(const Catalog& catalog, const std::string& dir) {
  std::string manifest;
  for (const std::string& name : catalog.TableNames()) {
    manifest += name + "\n";
    PCQE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));

    // Schema sidecar.
    std::string schema_text;
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      const Column& col = table->schema().column(c);
      schema_text += col.name + "\t" + DataTypeToString(col.type) + "\n";
    }
    PCQE_RETURN_NOT_OK(WriteFile(dir + "/" + name + ".schema", schema_text));

    // Rows with the reserved annotation columns.
    std::string csv;
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      csv += CsvQuote(table->schema().column(c).name) + ",";
    }
    csv += "__confidence,__max_confidence,__cost\n";
    for (const Tuple& t : table->tuples()) {
      for (const Value& v : t.values()) {
        std::string field;
        if (!v.is_null()) {
          field = v.type() == DataType::kDouble ? PreciseDouble(*v.AsDouble())
                                                : v.ToString();
        }
        csv += CsvQuote(field) + ",";
      }
      csv += PreciseDouble(t.confidence()) + "," + PreciseDouble(t.max_confidence()) +
             "," + CsvQuote(t.cost_function()->ToString()) + "\n";
    }
    PCQE_RETURN_NOT_OK(WriteFile(dir + "/" + name + ".csv", csv));
  }
  return WriteFile(dir + "/manifest.pcqe", manifest);
}

Status LoadDatabase(const std::string& dir, Catalog* catalog) {
  PCQE_ASSIGN_OR_RETURN(std::string manifest, ReadFile(dir + "/manifest.pcqe"));
  std::istringstream lines(manifest);
  std::string name;
  while (std::getline(lines, name)) {
    name = std::string(TrimAscii(name));
    if (name.empty()) continue;

    // Schema sidecar.
    PCQE_ASSIGN_OR_RETURN(std::string schema_text, ReadFile(dir + "/" + name + ".schema"));
    Schema schema;
    std::istringstream schema_lines(schema_text);
    std::string line;
    while (std::getline(schema_lines, line)) {
      if (std::string(TrimAscii(line)).empty()) continue;
      size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        return Status::ParseError(
            StrFormat("malformed schema line '%s' for table '%s'", line.c_str(),
                      name.c_str()));
      }
      PCQE_ASSIGN_OR_RETURN(DataType type, ParseDataType(line.substr(tab + 1)));
      schema.AddColumn({line.substr(0, tab), type, ""});
    }

    PCQE_ASSIGN_OR_RETURN(Table * table, catalog->CreateTable(name, schema));

    // Rows.
    PCQE_ASSIGN_OR_RETURN(std::string csv, ReadFile(dir + "/" + name + ".csv"));
    PCQE_ASSIGN_OR_RETURN(auto rows, ParseCsv(csv));
    const size_t ncols = schema.num_columns();
    const size_t expected = ncols + 3;  // + confidence, max, cost
    for (size_t r = 1; r < rows.size(); ++r) {  // rows[0] is the header
      if (rows[r].size() != expected) {
        return Status::ParseError(
            StrFormat("table '%s' row %zu has %zu fields, expected %zu", name.c_str(),
                      r, rows[r].size(), expected));
      }
      std::vector<Value> values;
      values.reserve(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        auto v = ParseTypedValue(rows[r][c], schema.column(c).type);
        if (!v.ok()) {
          return v.status().WithContext(
              StrFormat("table '%s' row %zu column '%s'", name.c_str(), r,
                        schema.column(c).name.c_str()));
        }
        values.push_back(std::move(*v));
      }
      double confidence = std::strtod(rows[r][ncols].c_str(), nullptr);
      double max_confidence = std::strtod(rows[r][ncols + 1].c_str(), nullptr);
      PCQE_ASSIGN_OR_RETURN(CostFunctionPtr cost, ParseCostFunction(rows[r][ncols + 2]));
      auto inserted =
          table->Insert(std::move(values), confidence, std::move(cost), max_confidence);
      if (!inserted.ok()) {
        return inserted.status().WithContext(
            StrFormat("table '%s' row %zu", name.c_str(), r));
      }
    }
  }
  return Status::OK();
}

}  // namespace pcqe
