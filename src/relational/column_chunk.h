// Copyright (c) PCQE contributors.
// Column-chunk storage: the typed, batched mirror of a table's tuples that
// the vectorized execution core scans (see query/vec_executor.h).
//
// Layout follows the in-memory column-chunk design of modern factorized
// engines: a table is a sequence of fixed-capacity chunks; each chunk holds
// one typed value vector per column plus a per-chunk confidence vector
// aligned row-for-row with the values. Tuple ids are implicit —
// `(table_id << 32) | row` exactly as relational/table.h assigns them — so
// a chunk never stores ids, and a scan's factorized lineage column is just
// the row range.

#ifndef PCQE_RELATIONAL_COLUMN_CHUNK_H_
#define PCQE_RELATIONAL_COLUMN_CHUNK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pcqe {

/// Rows per column chunk. A power of two so row → (chunk, offset) routing is
/// a shift and a mask.
inline constexpr size_t kColumnChunkCapacity = 2048;
inline constexpr size_t kColumnChunkShift = 11;
inline constexpr size_t kColumnChunkMask = kColumnChunkCapacity - 1;

static_assert((size_t{1} << kColumnChunkShift) == kColumnChunkCapacity,
              "chunk shift must match capacity");

/// \brief One column × up to `kColumnChunkCapacity` rows of typed storage.
///
/// Non-null values of a column always carry the column's declared type
/// (Table::Insert normalizes widened integers), so one typed array per chunk
/// suffices; NULLs occupy a zeroed slot and are tracked by a lazily
/// allocated null mask (absent while the chunk holds no NULLs — the common
/// case scans branch-free).
class ColumnChunk {
 public:
  explicit ColumnChunk(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return size_; }

  /// True when row `i` of this chunk is NULL.
  bool IsNull(size_t i) const { return !nulls_.empty() && nulls_[i] != 0; }

  /// True when no row of this chunk is NULL (enables branch-free kernels).
  bool AllNonNull() const { return nulls_.empty(); }

  /// \name Typed accessors; valid only for the matching `type()` and
  /// non-null rows.
  /// @{
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }
  const int64_t* IntData() const { return ints_.data(); }
  const double* DoubleData() const { return doubles_.data(); }
  /// @}

  /// Boxes row `i` back into a `Value` (boundary use only; operators should
  /// stay on the typed arrays).
  Value ValueAt(size_t i) const;

  /// Appends one value. The caller guarantees type compatibility (the table
  /// validated on insert) and capacity.
  void Append(const Value& v);

 private:
  DataType type_;
  size_t size_ = 0;
  std::vector<uint8_t> nulls_;  // empty until the first NULL lands
  // Exactly one of these is populated, per type_ (kNull columns hold none).
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
};

/// \brief The columnar mirror of one table: chunked typed columns plus
/// per-chunk confidence vectors.
///
/// Maintained incrementally by `Table::Insert` / `Table::SetConfidence`, so
/// a scan never transposes: it borrows these arrays zero-copy. Row indices
/// are table row indices (the low 32 bits of the `BaseTupleId`).
class TableColumnData {
 public:
  TableColumnData() = default;

  /// Declares the column layout; must be called before the first append and
  /// whenever the schema is (re)set on an empty table.
  void Reset(const Schema& schema);

  size_t num_rows() const { return num_rows_; }
  size_t num_chunks() const { return chunks_.size(); }
  size_t num_columns() const { return column_types_.size(); }

  static size_t ChunkOf(size_t row) { return row >> kColumnChunkShift; }
  static size_t OffsetOf(size_t row) { return row & kColumnChunkMask; }

  /// Column `col` of chunk `chunk_index`.
  const ColumnChunk& chunk(size_t col, size_t chunk_index) const {
    return chunks_[chunk_index]->cols[col];
  }

  /// Per-chunk confidence vector, aligned with the chunk's rows.
  const std::vector<double>& confidence_chunk(size_t chunk_index) const {
    return chunks_[chunk_index]->confidences;
  }

  /// Confidence of table row `row`.
  double confidence(size_t row) const {
    return chunks_[ChunkOf(row)]->confidences[OffsetOf(row)];
  }

  /// Boxed value of (`col`, table row `row`).
  Value value(size_t col, size_t row) const {
    return chunks_[ChunkOf(row)]->cols[col].ValueAt(OffsetOf(row));
  }

  /// True when (`col`, `row`) is NULL.
  bool IsNull(size_t col, size_t row) const {
    return chunks_[ChunkOf(row)]->cols[col].IsNull(OffsetOf(row));
  }

  /// Appends one row (called by `Table::Insert` after validation).
  void AppendRow(const std::vector<Value>& values, double confidence);

  /// Mirrors a confidence write (called by `Table::SetConfidence`).
  void StoreConfidence(size_t row, double confidence) {
    PCQE_DCHECK(row < num_rows_);
    chunks_[ChunkOf(row)]->confidences[OffsetOf(row)] = confidence;
  }

 private:
  struct Chunk {
    std::vector<ColumnChunk> cols;
    std::vector<double> confidences;
  };

  std::vector<DataType> column_types_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t num_rows_ = 0;
};

}  // namespace pcqe

#endif  // PCQE_RELATIONAL_COLUMN_CHUNK_H_
