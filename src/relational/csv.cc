#include "relational/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pcqe {

Result<std::vector<std::vector<std::string>>> ParseCsv(const std::string& text,
                                                       char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // row has content (handles trailing newline)

  size_t i = 0;
  const size_t n = text.size();
  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      field_started = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      end_field();
      field_started = true;  // a delimiter implies at least two fields
      ++i;
      continue;
    }
    if (c == '\r') {
      ++i;  // tolerate CRLF
      continue;
    }
    if (c == '\n') {
      if (field_started || !field.empty() || !row.empty()) end_row();
      ++i;
      continue;
    }
    field += c;
    field_started = true;
    ++i;
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

namespace {

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseBool(const std::string& s, bool* out) {
  if (EqualsIgnoreCaseAscii(s, "true")) {
    *out = true;
    return true;
  }
  if (EqualsIgnoreCaseAscii(s, "false")) {
    *out = false;
    return true;
  }
  return false;
}

/// Infers the narrowest type covering every non-empty field of a column.
DataType InferColumnType(const std::vector<std::vector<std::string>>& rows, size_t col) {
  bool all_int = true, all_double = true, all_bool = true, any_value = false;
  for (const auto& row : rows) {
    if (col >= row.size() || row[col].empty()) continue;
    any_value = true;
    int64_t i;
    double d;
    bool b;
    if (!ParseInt(row[col], &i)) all_int = false;
    if (!ParseDouble(row[col], &d)) all_double = false;
    if (!ParseBool(row[col], &b)) all_bool = false;
    if (!all_int && !all_double && !all_bool) return DataType::kString;
  }
  if (!any_value) return DataType::kString;  // all-NULL column defaults to text
  if (all_bool) return DataType::kBool;
  if (all_int) return DataType::kInt64;
  if (all_double) return DataType::kDouble;
  return DataType::kString;
}

/// Whether a field must be quoted on export.
bool NeedsQuoting(const std::string& s, char delimiter) {
  return s.find_first_of(std::string{delimiter, '"', '\n', '\r'}) != std::string::npos;
}

}  // namespace

std::string CsvQuote(const std::string& s, char delimiter) {
  if (!NeedsQuoting(s, delimiter)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Result<Table*> ImportCsv(Catalog* catalog, const std::string& table_name,
                         const std::string& csv_text, const CsvOptions& options) {
  PCQE_ASSIGN_OR_RETURN(auto rows, ParseCsv(csv_text, options.delimiter));
  if (rows.empty()) return Status::InvalidArgument("CSV input has no rows");

  std::vector<std::string> header;
  size_t data_begin = 0;
  if (options.has_header) {
    header = rows[0];
    data_begin = 1;
  } else {
    for (size_t c = 0; c < rows[0].size(); ++c) header.push_back(StrFormat("col%zu", c));
  }

  // Locate and strip the confidence column.
  size_t conf_col = header.size();
  if (!options.confidence_column.empty()) {
    for (size_t c = 0; c < header.size(); ++c) {
      if (EqualsIgnoreCaseAscii(header[c], options.confidence_column)) {
        conf_col = c;
        break;
      }
    }
    if (conf_col == header.size()) {
      return Status::InvalidArgument(StrFormat("confidence column '%s' not in header",
                                               options.confidence_column.c_str()));
    }
  }

  std::vector<std::vector<std::string>> data(rows.begin() + static_cast<long>(data_begin),
                                             rows.end());
  for (size_t r = 0; r < data.size(); ++r) {
    if (data[r].size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("CSV row %zu has %zu fields, header has %zu", r + data_begin + 1,
                    data[r].size(), header.size()));
    }
  }

  // Schema over the non-confidence columns.
  Schema schema;
  std::vector<size_t> value_cols;
  for (size_t c = 0; c < header.size(); ++c) {
    if (c == conf_col) continue;
    value_cols.push_back(c);
    schema.AddColumn({header[c], InferColumnType(data, c), ""});
  }

  PCQE_ASSIGN_OR_RETURN(Table * table, catalog->CreateTable(table_name, schema));

  for (size_t r = 0; r < data.size(); ++r) {
    std::vector<Value> values;
    values.reserve(value_cols.size());
    for (size_t out_c = 0; out_c < value_cols.size(); ++out_c) {
      const std::string& field = data[r][value_cols[out_c]];
      if (field.empty()) {
        values.push_back(Value::Null());
        continue;
      }
      switch (schema.column(out_c).type) {
        case DataType::kBool: {
          bool b = false;
          ParseBool(field, &b);
          values.push_back(Value::Bool(b));
          break;
        }
        case DataType::kInt64: {
          int64_t v = 0;
          ParseInt(field, &v);
          values.push_back(Value::Int(v));
          break;
        }
        case DataType::kDouble: {
          double v = 0;
          ParseDouble(field, &v);
          values.push_back(Value::Double(v));
          break;
        }
        default:
          values.push_back(Value::String(field));
      }
    }
    double confidence = options.default_confidence;
    if (conf_col < header.size()) {
      const std::string& field = data[r][conf_col];
      if (!field.empty() && !ParseDouble(field, &confidence)) {
        return Status::InvalidArgument(
            StrFormat("row %zu: confidence '%s' is not numeric", r + data_begin + 1,
                      field.c_str()));
      }
    }
    auto inserted = table->Insert(std::move(values), confidence, options.default_cost);
    if (!inserted.ok()) {
      return inserted.status().WithContext(StrFormat("CSV row %zu", r + data_begin + 1));
    }
  }
  return table;
}

Result<Table*> ImportCsvFile(Catalog* catalog, const std::string& table_name,
                             const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ImportCsv(catalog, table_name, buffer.str(), options);
}

std::string ExportCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  const char d = options.delimiter;
  if (options.has_header) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      if (c > 0) out += d;
      out += CsvQuote(table.schema().column(c).name, d);
    }
    if (!options.confidence_column.empty()) {
      if (table.schema().num_columns() > 0) out += d;
      out += CsvQuote(options.confidence_column, d);
    }
    out += '\n';
  }
  for (const Tuple& t : table.tuples()) {
    for (size_t c = 0; c < t.values().size(); ++c) {
      if (c > 0) out += d;
      out += t.value(c).is_null() ? "" : CsvQuote(t.value(c).ToString(), d);
    }
    if (!options.confidence_column.empty()) {
      if (!t.values().empty()) out += d;
      out += FormatDouble(t.confidence(), 6);
    }
    out += '\n';
  }
  return out;
}

Status ExportCsvFile(const Table& table, const std::string& path,
                     const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument(StrFormat("cannot write '%s'", path.c_str()));
  out << ExportCsv(table, options);
  return out.good() ? Status::OK()
                    : Status::Internal(StrFormat("write to '%s' failed", path.c_str()));
}

}  // namespace pcqe
