#!/usr/bin/env python3
"""pcqe_lint: mechanical enforcement of PCQE repo invariants.

Rules (ids in brackets; suppress a line with `// pcqe-lint: allow(<rule>)`):

  [valueordie-unchecked]  `ValueOrDie()` in src/ or tools/ must be preceded
      (within a few lines) by an `ok()` check or a PCQE_CHECK/PCQE_DCHECK.
      Tests and benches may die freely; library code must not.
  [iostream-in-src]       `std::cout` / `std::cerr` anywhere in src/ outside
      common/logging.h. Library code logs through PCQE_LOG so callers can
      control verbosity.
  [header-guard]          Header guards must spell the path:
      src/policy/rbac.h -> PCQE_POLICY_RBAC_H_, tools/shell.h ->
      PCQE_TOOLS_SHELL_H_.
  [bare-assert]           No `assert(` in src/. Use PCQE_CHECK (fatal in all
      builds) or PCQE_DCHECK (debug only) so behavior under NDEBUG is a
      deliberate choice, not UB.
  [discarded-status]      A call to a Status-returning function must not be a
      bare statement; handle it, PCQE_RETURN_NOT_OK it, or assign it. This is
      the rule clang-tidy cannot apply: it knows the repo's own function set.
  [concurrency]           Threading discipline in src/: no `std::thread`
      (use `std::jthread`, which joins on destruction and carries a
      stop_token), no `.detach()` (detached threads outlive their data), and
      no bare `.lock()` / `.unlock()` calls (use a RAII guard — MutexLock /
      ReaderLock / WriterLock from common/annotations.h — so unlock happens
      on every exit path), and no `std::async` (its blocking future
      destructor silently serializes "parallel" code; submit to the shared
      pool in common/thread_pool.h instead).
      `std::thread::hardware_concurrency()` is fine.
  [raw-mutex]             No raw standard-library mutexes (`std::mutex`,
      `std::shared_mutex`, `std::recursive_mutex`, ...) or ad-hoc guards
      (`std::scoped_lock`, `std::lock_guard`, `std::unique_lock`,
      `std::shared_lock`) in src/ outside common/annotations.h. Use
      pcqe::Mutex / pcqe::SharedMutex with MutexLock / ReaderLock /
      WriterLock so every acquisition carries Clang Thread Safety Analysis
      attributes; a raw std:: mutex is invisible to the analyzer and
      silently re-opens the data-race hole the annotations closed.
  [telemetry]             No ad-hoc `std::atomic<uint64_t>` stat counters in
      src/ outside src/telemetry/. Register a Counter/Gauge on the
      TelemetryRegistry instead, so every stat shows up in `.metrics` /
      RenderText with a name and help string. Non-counter atomics (flags,
      versions) may suppress with `// pcqe-lint: allow(telemetry)`.
      Additionally, no new counter-shaped members (`uint64_t x = 0;`) in
      src/query/ headers outside execution_mode.h (VecExecStats, the one
      sanctioned stats struct): executor statistics must flow through
      VecExecStats / OperatorProfile / the registry so `.explain analyze`
      and `.metrics` see them. Non-stat members (ids, offsets) may suppress
      with `// pcqe-lint: allow(telemetry)`.
  [durability]            No direct `SetConfidence(` calls in src/ outside
      src/relational/ (the implementation), src/improve/ (the validated
      improver commit path) and src/storage/ (WAL replay). With durability
      on, every confidence write must flow through the logged
      improve/storage path — an unlogged write is exactly the state a crash
      loses, and it desynchronizes the WAL's self-verifying version check.
      Deliberate out-of-band writers (bulk assignment, tests' seams) may
      suppress with `// pcqe-lint: allow(durability)` and must be followed
      by a fresh checkpoint before the next crash matters.
  [vectorized]            No per-row `Tuple` construction or `tuples()`
      row-vector access inside the vectorized operator files
      (src/query/vec_executor.*). The vectorized engine's whole point is
      that hot loops touch column chunks and selection vectors; a Tuple in
      an operator re-introduces the per-row boxing the engine exists to
      avoid. Boxing belongs at the boundary (QueryResult::MaterializeValues
      / MaterializeLineage), not in operators. Deliberate boundary code in
      those files may suppress with `// pcqe-lint: allow(vectorized)`.
  [pushdown]              No hand-rolled confidence-vs-β comparisons in src/
      outside the sanctioned sites (PolicyDecision::Allows in src/policy/,
      ClearsThreshold in src/strategy/problem.h, and the β-pushdown
      implementation files src/query/confidence_index.*, planner.cc,
      executor.cc, vec_executor.cc). The strict keep-test
      (`conf > β + kEpsilon`) must stay the exact complement of the policy
      block-test everywhere — a re-implementation that drops the epsilon or
      flips the strictness silently breaks pushdown's release-identity
      guarantee. Call the shared helpers instead, or suppress deliberately
      with `// pcqe-lint: allow(pushdown)`.
  [deadline]              No raw `steady_clock::now()` deadline comparisons
      in src/strategy/ or src/service/. Budget checks must go through the
      `Deadline` helper (common/deadline.h: `Expired()`, `RemainingSeconds()`,
      `SolveControl`), which owns the infinite-deadline convention and the
      stop-cause latch; hand-rolled `now() < deadline` comparisons silently
      diverge on those. Arithmetic on `now()` (elapsed-time measurement) is
      fine — only comparisons are flagged.

Usage:
  pcqe_lint.py [--root DIR] [FILE...]   # lint repo (or explicit files)
  pcqe_lint.py --self-test [DIR]        # run against fixture files
Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

LINT_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
# Directories scanned in repo mode, relative to the root.
SCAN_DIRS = ("src", "tools", "bench", "examples", "tests")

ALLOW_RE = re.compile(r"//\s*pcqe-lint:\s*allow\(([\w-]+)\)")
FIXTURE_PATH_RE = re.compile(r"//\s*pcqe-lint-fixture-path:\s*(\S+)")

# Collection pass: names of functions declared/defined to return Status.
STATUS_FN_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)?Status\s+"
    r"(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)
# Statement-level call: `obj.Fn(...)`, `ptr->Fn(...)`, `ns::Fn(...)` or
# `Fn(...)` as the whole statement on one line.
CALL_STMT_RE = re.compile(
    r"^(?:[A-Za-z_]\w*(?:\(\))?(?:\.|->|::))*([A-Za-z_]\w*)\s*\(.*\)\s*;\s*(?://.*)?$"
)
# A steady_clock::now() (or the conventional `Clock` alias for it) adjacent
# to a comparison operator — a hand-rolled deadline check. Template closers
# like `duration_cast<...>(now())` do not match: a `(` intervenes between
# the `>` and the call.
DEADLINE_CMP_RE = re.compile(
    r"(?:steady_clock|\bClock)::now\s*\(\)\s*[<>]=?"
    r"|[<>]=?\s*(?:std::chrono::)?(?:steady_clock|\bClock)::now\s*\(\)"
)

# The only src/ files allowed to compare a confidence against β directly:
# the policy decision, the solvers' shared ClearsThreshold helper, and the
# β-pushdown implementation (zone maps, planner wrap, both prune operators).
PUSHDOWN_ALLOWED_FILES = (
    "src/policy/confidence_policy.h",
    "src/policy/confidence_policy.cc",
    "src/strategy/problem.h",
    "src/query/confidence_index.h",
    "src/query/confidence_index.cc",
    "src/query/planner.cc",
    "src/query/executor.cc",
    "src/query/vec_executor.cc",
)
# A relational comparator that is not the arrow of `->` nor a shift/template
# bracket pair.
PUSHDOWN_CMP_RE = re.compile(r"(?<![-<>])[<>]=?(?![<>])")
PUSHDOWN_CONF_RE = re.compile(r"\bconf(?:idence)?\w*\b", re.IGNORECASE)
PUSHDOWN_BETA_RE = re.compile(r"\b(?:prune_)?beta\w*\b", re.IGNORECASE)


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _strip_strings(line):
    """Blank out string/char literals so their contents can't match rules."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def _allowed(line, rule):
    m = ALLOW_RE.search(line)
    return bool(m) and m.group(1) == rule


def expected_guard(relpath):
    # The src/ prefix is not part of the guard: src/policy/rbac.h ->
    # PCQE_POLICY_RBAC_H_, but tools/shell.h -> PCQE_TOOLS_SHELL_H_.
    if relpath.startswith("src/"):
        relpath = relpath[len("src/"):]
    stem = re.sub(r"[^A-Za-z0-9]", "_", relpath)
    return "PCQE_" + re.sub(r"_(h|hpp)$", "", stem, flags=re.IGNORECASE).upper() + "_H_"


def collect_status_functions(files):
    names = set()
    for _, relpath, lines in files:
        if not relpath.startswith(("src/", "tools/")):
            continue
        for line in lines:
            m = STATUS_FN_RE.match(line)
            if m:
                names.add(m.group(1))
    return names


def lint_file(relpath, lines, status_fns):
    """Lint one file given its repo-relative path and content lines."""
    out = []
    in_src = relpath.startswith("src/")
    in_tools = relpath.startswith("tools/")
    basename = os.path.basename(relpath)
    is_header = relpath.endswith((".h", ".hpp"))

    # -- header-guard ------------------------------------------------------
    if is_header and relpath.startswith(("src/", "tools/", "bench/", "tests/")):
        guard = expected_guard(relpath)
        ifndef = next(
            (i for i, l in enumerate(lines) if l.lstrip().startswith("#ifndef")), None)
        if ifndef is None:
            out.append(Violation(relpath, 1, "header-guard",
                                 f"missing include guard (expected {guard})"))
        else:
            actual = lines[ifndef].split()[1] if len(lines[ifndef].split()) > 1 else ""
            if actual != guard and not _allowed(lines[ifndef], "header-guard"):
                out.append(Violation(relpath, ifndef + 1, "header-guard",
                                     f"guard is {actual}, expected {guard}"))
            elif ifndef + 1 >= len(lines) or \
                    lines[ifndef + 1].split()[:2] != ["#define", actual]:
                out.append(Violation(relpath, ifndef + 1, "header-guard",
                                     f"#ifndef {actual} not followed by #define {actual}"))

    for i, raw in enumerate(lines, start=1):
        line = _strip_strings(raw)
        code = line.split("//")[0]

        # -- iostream-in-src ----------------------------------------------
        if in_src and basename != "logging.h" and \
                re.search(r"\bstd::c(out|err)\b", code) and \
                not _allowed(raw, "iostream-in-src"):
            out.append(Violation(relpath, i, "iostream-in-src",
                                 "use PCQE_LOG instead of std::cout/std::cerr in src/"))

        # -- bare-assert ---------------------------------------------------
        if in_src and re.search(r"(?<!static_)\bassert\s*\(", code) and \
                "#include" not in code and not _allowed(raw, "bare-assert"):
            out.append(Violation(relpath, i, "bare-assert",
                                 "use PCQE_CHECK/PCQE_DCHECK instead of assert()"))

        # -- valueordie-unchecked -----------------------------------------
        if (in_src or in_tools) and not _allowed(raw, "valueordie-unchecked"):
            # Only member calls (`x.ValueOrDie()` / `p->ValueOrDie()`) count;
            # the declarations in result.h are not preceded by . or ->.
            if re.search(r"(\.|->)\s*ValueOrDie\s*\(", code):
                window = lines[max(0, i - 6):i]
                guarded = any(
                    re.search(r"\.ok\s*\(\)|->ok\s*\(\)|PCQE_D?CHECK", _strip_strings(w))
                    for w in window)
                if not guarded:
                    out.append(Violation(
                        relpath, i, "valueordie-unchecked",
                        "ValueOrDie() without a preceding ok() check or PCQE_CHECK; "
                        "use PCQE_ASSIGN_OR_RETURN or check ok() first"))

        # -- concurrency ---------------------------------------------------
        if in_src and not _allowed(raw, "concurrency"):
            # `std::thread` as a type is banned; the lookahead spares the
            # legitimate static call std::thread::hardware_concurrency().
            if re.search(r"\bstd::thread\b(?!\s*::)", code):
                out.append(Violation(
                    relpath, i, "concurrency",
                    "use std::jthread (joins on destruction, stop_token-aware) "
                    "instead of std::thread"))
            if re.search(r"(\.|->)\s*detach\s*\(", code):
                out.append(Violation(
                    relpath, i, "concurrency",
                    "detached threads outlive their data; keep the (j)thread "
                    "joinable and owned"))
            if re.search(r"(\.|->)\s*(un)?lock\s*\(\s*\)", code):
                out.append(Violation(
                    relpath, i, "concurrency",
                    "bare lock()/unlock(); use a scoped RAII guard "
                    "(MutexLock, ReaderLock, WriterLock from "
                    "common/annotations.h)"))
            if re.search(r"\bstd::async\b", code):
                out.append(Violation(
                    relpath, i, "concurrency",
                    "std::async futures block in their destructor and "
                    "silently serialize; use ThreadPool/ParallelFor from "
                    "common/thread_pool.h"))

        # -- raw-mutex -----------------------------------------------------
        # annotations.h is the one place allowed to touch the std:: types:
        # it wraps them in the capability-annotated Mutex/SharedMutex.
        if in_src and relpath != "src/common/annotations.h" and \
                not _allowed(raw, "raw-mutex"):
            m = re.search(
                r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
                r"recursive_timed_mutex|shared_timed_mutex|scoped_lock|"
                r"lock_guard|unique_lock|shared_lock)\b", code)
            if m:
                out.append(Violation(
                    relpath, i, "raw-mutex",
                    f"std::{m.group(1)} is invisible to thread-safety "
                    "analysis; use pcqe::Mutex/SharedMutex with MutexLock/"
                    "ReaderLock/WriterLock (common/annotations.h)"))

        # -- telemetry -----------------------------------------------------
        if in_src and not relpath.startswith("src/telemetry/") and \
                re.search(r"\bstd::atomic<\s*(std::)?uint64_t\s*>", code) and \
                not _allowed(raw, "telemetry"):
            out.append(Violation(
                relpath, i, "telemetry",
                "ad-hoc std::atomic<uint64_t> stat counter; register a "
                "telemetry Counter/Gauge so it is exported by .metrics"))

        # Executor stats in src/query/ headers must flow through the
        # sanctioned channels (VecExecStats in execution_mode.h,
        # OperatorProfile, or the registry) — a private counter member is
        # invisible to `.explain analyze` and `.metrics`.
        if is_header and relpath.startswith("src/query/") and \
                basename != "execution_mode.h" and \
                re.search(r"\buint64_t\s+\w+\s*=\s*0\s*;", code) and \
                not _allowed(raw, "telemetry"):
            out.append(Violation(
                relpath, i, "telemetry",
                "counter-shaped member in a src/query/ header; route "
                "executor statistics through VecExecStats, OperatorProfile "
                "or a registry Counter so observability surfaces see them"))

        # -- durability ----------------------------------------------------
        if in_src and not relpath.startswith(
                ("src/relational/", "src/improve/", "src/storage/")) and \
                re.search(r"(\.|->)\s*SetConfidence\s*\(", code) and \
                not _allowed(raw, "durability"):
            out.append(Violation(
                relpath, i, "durability",
                "direct catalog confidence mutation bypasses the WAL; route "
                "through the logged improve/storage accept path (or suppress "
                "deliberately and checkpoint afterwards)"))

        # -- vectorized ----------------------------------------------------
        # The vectorized operators must stay columnar: any Tuple mention or
        # tuples() row-vector access in vec_executor.* is per-row boxing
        # smuggled back into the chunk loops.
        if relpath.startswith("src/query/vec_executor") and \
                not _allowed(raw, "vectorized"):
            if re.search(r"\bTuple\b", code):
                out.append(Violation(
                    relpath, i, "vectorized",
                    "per-row Tuple in a vectorized operator file; operate on "
                    "column chunks + selection vectors and leave boxing to "
                    "QueryResult::MaterializeValues/MaterializeLineage"))
            elif re.search(r"(\.|->)\s*tuples\s*\(\s*\)", code):
                out.append(Violation(
                    relpath, i, "vectorized",
                    "tuples() row-vector access in a vectorized operator "
                    "file; read per-column chunk data "
                    "(Table::column_data()) instead of boxed rows"))

        # -- pushdown ------------------------------------------------------
        # A confidence and a β on either side of a comparator, outside the
        # sanctioned implementation files: the strict `> β + ε` convention
        # must not be re-derived ad hoc (see the rule doc above).
        if in_src and relpath not in PUSHDOWN_ALLOWED_FILES and \
                not _allowed(raw, "pushdown") and \
                PUSHDOWN_CMP_RE.search(code) and \
                PUSHDOWN_CONF_RE.search(code) and PUSHDOWN_BETA_RE.search(code):
            out.append(Violation(
                relpath, i, "pushdown",
                "hand-rolled confidence-vs-beta comparison; use "
                "PolicyDecision::Allows / ClearsThreshold (or the pushdown "
                "operator files) so the strict > beta + kEpsilon convention "
                "stays in one place"))

        # -- deadline ------------------------------------------------------
        if relpath.startswith(("src/strategy/", "src/service/")) and \
                DEADLINE_CMP_RE.search(code) and not _allowed(raw, "deadline"):
            out.append(Violation(
                relpath, i, "deadline",
                "raw steady_clock::now() deadline comparison; use the "
                "Deadline helper (Expired()/RemainingSeconds()/SolveControl "
                "from common/deadline.h)"))

        # -- discarded-status ---------------------------------------------
        if (in_src or in_tools) and not _allowed(raw, "discarded-status"):
            stmt = code.strip()
            m = CALL_STMT_RE.match(stmt)
            if m and m.group(1) in status_fns and \
                    not re.match(r"^(\[\[nodiscard\]\]|Status|Result<|virtual|static|return)\b",
                                 stmt):
                out.append(Violation(
                    relpath, i, "discarded-status",
                    f"result of Status-returning call {m.group(1)}() is discarded; "
                    "handle it or use PCQE_RETURN_NOT_OK"))
    return out


def gather_repo_files(root):
    files = []
    for top in SCAN_DIRS:
        for dirpath, dirnames, names in os.walk(os.path.join(root, top)):
            # Fixtures are deliberately-bad inputs for --self-test.
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for name in sorted(names):
                if name.endswith(LINT_EXTENSIONS):
                    path = os.path.join(dirpath, name)
                    relpath = os.path.relpath(path, root).replace(os.sep, "/")
                    with open(path, encoding="utf-8", errors="replace") as f:
                        files.append((path, relpath, f.read().splitlines()))
    return files


def run_lint(root, explicit_files):
    if explicit_files:
        files = []
        for path in explicit_files:
            relpath = os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    lines = f.read().splitlines()
            except OSError as e:
                print(f"pcqe_lint: cannot read {path}: {e.strerror}", file=sys.stderr)
                return 2
            # Fixture files carry the repo path they pretend to live at.
            m = FIXTURE_PATH_RE.search(lines[0]) if lines else None
            if m:
                relpath = m.group(1)
            files.append((path, relpath, lines))
    else:
        files = gather_repo_files(root)
    status_fns = collect_status_functions(files)
    violations = []
    for _, relpath, lines in files:
        violations.extend(lint_file(relpath, lines, status_fns))
    for v in violations:
        print(v)
    print(f"pcqe_lint: {len(files)} files, {len(violations)} violation(s)")
    return 1 if violations else 0


def run_self_test(fixture_dir):
    """Fixture files declare their virtual repo path on line 1 via
    `// pcqe-lint-fixture-path: src/...`. `bad_<rule>[__<variant>].(cc|h)`
    must trigger exactly that rule (the optional double-underscore variant
    suffix distinguishes multiple fixtures for one rule); `good_*` must be
    clean."""
    failures = []
    names = sorted(n for n in os.listdir(fixture_dir) if n.endswith(LINT_EXTENSIONS))
    if not names:
        print(f"pcqe_lint --self-test: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2
    for name in names:
        path = os.path.join(fixture_dir, name)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        m = FIXTURE_PATH_RE.search(lines[0]) if lines else None
        if not m:
            failures.append(f"{name}: missing pcqe-lint-fixture-path directive")
            continue
        relpath = m.group(1)
        files = [(path, relpath, lines)]
        status_fns = collect_status_functions(files)
        got = {v.rule for v in lint_file(relpath, lines, status_fns)}
        if name.startswith("good_"):
            if got:
                failures.append(f"{name}: expected clean, got {sorted(got)}")
        elif name.startswith("bad_"):
            # Rule id is everything after bad_ up to the extension (or a
            # `__variant` suffix), _ -> -.
            rule = re.match(r"bad_(.+?)(?:__\w+)?\.\w+$", name).group(1).replace("_", "-")
            if rule not in got:
                failures.append(f"{name}: expected [{rule}], got {sorted(got) or 'clean'}")
            elif got - {rule}:
                failures.append(f"{name}: unexpected extra rules {sorted(got - {rule})}")
        else:
            failures.append(f"{name}: fixture must be named bad_<rule>.* or good_*")
    for f in failures:
        print(f"pcqe_lint --self-test FAIL: {f}", file=sys.stderr)
    print(f"pcqe_lint --self-test: {len(names)} fixtures, {len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script's directory)")
    parser.add_argument("--self-test", nargs="?", const="", metavar="DIR",
                        help="run fixture self-test (default DIR: <root>/tests/lint_fixtures)")
    parser.add_argument("files", nargs="*", help="explicit files to lint")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.self_test is not None:
        fixture_dir = args.self_test or os.path.join(root, "tests", "lint_fixtures")
        return run_self_test(fixture_dir)
    return run_lint(root, args.files)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
