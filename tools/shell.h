// Copyright (c) PCQE contributors.
// Interactive PCQE shell: load CSVs, configure roles/policies, run SQL
// through the policy-compliant engine, inspect and accept improvement
// proposals. The REPL loop lives in pcqe_shell.cc; this class is the
// testable command dispatcher.

#ifndef PCQE_TOOLS_SHELL_H_
#define PCQE_TOOLS_SHELL_H_

#include <memory>
#include <optional>
#include <ostream>
#include <string>

#include "engine/pcqe_engine.h"
#include "service/query_service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace pcqe {

/// \brief Stateful command interpreter behind the `pcqe_shell` binary.
///
/// Lines are either dot-commands (`.help`, `.load`, `.policy add`, ...) or
/// SQL accumulated until a terminating ';'. SQL runs through
/// `PcqeEngine::Submit` under the session's user/purpose/fraction; the last
/// proposal is retained for `.accept`.
class Shell {
 public:
  /// Output (results, errors, prompts) is written to `out`.
  explicit Shell(std::ostream* out);

  /// Feeds one input line. Returns false when the session should end
  /// (`.quit` / `.exit`).
  bool HandleLine(const std::string& line);

  /// True while a multi-line SQL statement is being accumulated (drives the
  /// continuation prompt).
  bool in_statement() const { return !pending_sql_.empty(); }

  /// \name Session state accessors (used by tests).
  /// @{
  const std::string& user() const { return user_; }
  const std::string& purpose() const { return purpose_; }
  double fraction() const { return fraction_; }
  int64_t timeout_ms() const { return timeout_ms_; }
  bool pushdown() const { return pushdown_; }
  Catalog* catalog() { return &catalog_; }
  PcqeEngine* engine() { return engine_.get(); }
  QueryService* service() { return service_.get(); }
  bool in_session() const { return session_.has_value(); }
  TelemetryRegistry* telemetry() { return &registry_; }
  Tracer* tracer() { return &tracer_; }
  AuditLog* audit() { return &audit_; }
  /// @}

 private:
  void RunCommand(const std::string& line);
  void RunSql(const std::string& sql);
  void CmdHelp();
  void CmdTables();
  void CmdSchema(const std::vector<std::string>& args);
  void CmdLoad(const std::vector<std::string>& args);
  void CmdSave(const std::vector<std::string>& args);
  void CmdRole(const std::vector<std::string>& args);
  void CmdUser(const std::vector<std::string>& args);
  void CmdPolicy(const std::vector<std::string>& args);
  void CmdProposal();
  void CmdAccept();
  void CmdWhy(const std::vector<std::string>& args);
  void CmdServe(const std::vector<std::string>& args);
  void CmdSession(const std::vector<std::string>& args);
  void CmdStats();
  void CmdMetrics(const std::vector<std::string>& args);
  void CmdTrace(const std::vector<std::string>& args);
  void CmdAudit(const std::vector<std::string>& args);
  void CmdExplain(const std::string& line);
  void CmdDurable(const std::vector<std::string>& args);
  void CmdCheckpoint();
  void CmdRecover();
  void CmdWal();

  std::ostream& out() { return *out_; }

  std::ostream* out_;
  Catalog catalog_;
  /// Shell-owned telemetry, attached to the engine at construction and
  /// handed to the service in `.serve`: one registry and one trace ring per
  /// shell, whether SQL runs direct or through the service.
  TelemetryRegistry registry_;
  Tracer tracer_;
  /// Shell-owned compliance audit ring, attached to the engine at
  /// construction (declared before `engine_` so the engine's pointer never
  /// outlives it). `.audit` inspects it; `.serve` hands it to the service.
  AuditLog audit_;
  std::unique_ptr<PcqeEngine> engine_;
  /// `.durable` mode: a StorageManager attached to the engine, making
  /// every `.accept` a WAL-logged transaction (`.checkpoint` / `.recover` /
  /// `.wal` operate on it). Declared before `service_` so a service built
  /// later can observe it via the engine.
  std::unique_ptr<StorageManager> storage_;
  /// `.serve` mode: a QueryService over `engine_`; SQL runs through the
  /// active session (`session_`) instead of direct `Submit` while set.
  std::unique_ptr<QueryService> service_;
  std::optional<SessionHandle> session_;
  std::string user_;
  std::string purpose_ = "general";
  double fraction_ = 1.0;
  /// `.timeout`: per-query solve budget in milliseconds; 0 = unlimited.
  int64_t timeout_ms_ = 0;
  /// `.pushdown`: β pushdown opt-out. On by default; the engine still only
  /// pushes down when the request qualifies (fraction 0, safe plan shape,
  /// β > 0 — see `PcqeEngine::ResolvePushdownBeta`).
  bool pushdown_ = true;
  std::string pending_sql_;
  StrategyProposal last_proposal_;
  bool has_proposal_ = false;
  /// Intermediate results of the last SQL statement, for `.why <row>`.
  std::optional<QueryResult> last_result_;
};

}  // namespace pcqe

#endif  // PCQE_TOOLS_SHELL_H_
