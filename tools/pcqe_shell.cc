// Interactive PCQE shell. See tools/shell.h for the command set.

#include <iostream>
#include <string>

#include "tools/shell.h"

int main() {
  std::cout << "PCQE shell — .help for commands, .quit to exit\n";
  pcqe::Shell shell(&std::cout);
  std::string line;
  while (true) {
    std::cout << (shell.in_statement() ? "   ...> " : "pcqe> ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (!shell.HandleLine(line)) break;
  }
  std::cout << "\n";
  return 0;
}
