#include "tools/shell.h"

#include <cstdlib>
#include <sstream>

#include "common/annotations.h"
#include "common/string_util.h"
#include "lineage/sensitivity.h"
#include "policy/policy_io.h"
#include "query/parser.h"
#include "query/planner.h"
#include "relational/csv.h"
#include "relational/database_io.h"

namespace pcqe {

namespace {

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

}  // namespace

Shell::Shell(std::ostream* out) : out_(out) {
  engine_ = std::make_unique<PcqeEngine>(&catalog_, RoleGraph(), PolicyStore());
  engine_->AttachTelemetry(&registry_, &tracer_);
  engine_->AttachAudit(&audit_);
  tracer_.AttachTelemetry(&registry_);
  audit_.AttachTelemetry(&registry_);
}

bool Shell::HandleLine(const std::string& line) {
  std::string trimmed(TrimAscii(line));
  if (trimmed.empty()) return true;

  if (pending_sql_.empty() && trimmed[0] == '.') {
    if (trimmed == ".quit" || trimmed == ".exit") return false;
    RunCommand(trimmed);
    return true;
  }

  // Accumulate SQL until ';'.
  if (!pending_sql_.empty()) pending_sql_ += ' ';
  pending_sql_ += trimmed;
  if (pending_sql_.back() == ';') {
    std::string sql;
    sql.swap(pending_sql_);
    RunSql(sql);
  }
  return true;
}

void Shell::RunCommand(const std::string& line) {
  std::vector<std::string> words = SplitWords(line);
  const std::string& cmd = words[0];
  std::vector<std::string> args(words.begin() + 1, words.end());
  if (cmd == ".help") {
    CmdHelp();
  } else if (cmd == ".tables") {
    CmdTables();
  } else if (cmd == ".schema") {
    CmdSchema(args);
  } else if (cmd == ".load") {
    CmdLoad(args);
  } else if (cmd == ".save") {
    CmdSave(args);
  } else if (cmd == ".role") {
    CmdRole(args);
  } else if (cmd == ".user") {
    CmdUser(args);
  } else if (cmd == ".purpose") {
    if (args.size() != 1) {
      out() << "usage: .purpose <name>\n";
    } else {
      purpose_ = args[0];
      out() << "purpose = " << purpose_ << "\n";
    }
  } else if (cmd == ".fraction") {
    if (args.size() != 1) {
      out() << "usage: .fraction <0..1>\n";
    } else {
      fraction_ = std::strtod(args[0].c_str(), nullptr);
      out() << "required fraction = " << FormatDouble(fraction_) << "\n";
    }
  } else if (cmd == ".timeout") {
    if (args.size() != 1) {
      out() << "usage: .timeout <ms>  (0 = unlimited)\n";
    } else {
      timeout_ms_ = std::strtoll(args[0].c_str(), nullptr, 10);
      if (timeout_ms_ < 0) timeout_ms_ = 0;
      if (timeout_ms_ == 0) {
        out() << "query timeout off\n";
      } else {
        out() << "query timeout = " << timeout_ms_
              << "ms (expired solves return a partial proposal)\n";
      }
    }
  } else if (cmd == ".exec") {
    if (args.empty()) {
      out() << "execution mode = " << ExecutionModeToString(engine_->execution_mode) << "\n";
    } else if (args.size() == 1) {
      auto mode = ParseExecutionMode(args[0]);
      if (!mode.ok()) {
        out() << mode.status().ToString() << "\n";
      } else {
        engine_->execution_mode = *mode;
        // Cached results are bit-identical across modes, but drop them so a
        // mode switch observably re-executes (differential smoke tests rely
        // on this).
        if (service_ != nullptr) service_->InvalidateCache();
        out() << "execution mode = " << ExecutionModeToString(engine_->execution_mode) << "\n";
      }
    } else {
      out() << "usage: .exec [row|vec]\n";
    }
  } else if (cmd == ".pushdown") {
    if (args.empty()) {
      out() << "beta pushdown = " << (pushdown_ ? "on" : "off") << "\n";
    } else if (args.size() == 1 && (args[0] == "on" || args[0] == "off")) {
      pushdown_ = args[0] == "on";
      // Pushed and unpushed evaluations are keyed apart in the cache, but
      // drop it anyway so a mode switch observably re-executes (the
      // differential smoke tests rely on this, as with .exec).
      if (service_ != nullptr) service_->InvalidateCache();
      out() << "beta pushdown = " << (pushdown_ ? "on" : "off") << "\n";
    } else {
      out() << "usage: .pushdown [on|off]\n";
    }
  } else if (cmd == ".policy") {
    CmdPolicy(args);
  } else if (cmd == ".proposal") {
    CmdProposal();
  } else if (cmd == ".accept") {
    CmdAccept();
  } else if (cmd == ".why") {
    CmdWhy(args);
  } else if (cmd == ".serve") {
    CmdServe(args);
  } else if (cmd == ".session") {
    CmdSession(args);
  } else if (cmd == ".stats") {
    CmdStats();
  } else if (cmd == ".metrics") {
    CmdMetrics(args);
  } else if (cmd == ".trace") {
    CmdTrace(args);
  } else if (cmd == ".audit") {
    CmdAudit(args);
  } else if (cmd == ".durable") {
    CmdDurable(args);
  } else if (cmd == ".checkpoint") {
    CmdCheckpoint();
  } else if (cmd == ".recover") {
    CmdRecover();
  } else if (cmd == ".wal") {
    CmdWal();
  } else if (cmd == ".savedb") {
    if (args.size() != 1) {
      out() << "usage: .savedb <directory>\n";
    } else {
      Status s = SaveDatabase(catalog_, args[0]);
      out() << (s.ok() ? "database saved to " + args[0] : s.ToString()) << "\n";
    }
  } else if (cmd == ".opendb") {
    if (args.size() != 1) {
      out() << "usage: .opendb <directory>\n";
    } else {
      Status s = LoadDatabase(args[0], &catalog_);
      if (s.ok()) {
        // Wholesale restore: table ids (and possibly row counts) can repeat
        // under different confidences, which version-validated zone maps
        // cannot detect.
        engine_->confidence_index()->Invalidate();
        if (service_ != nullptr) service_->InvalidateCache();
      }
      out() << (s.ok() ? "database loaded from " + args[0] : s.ToString()) << "\n";
    }
  } else if (cmd == ".saveconfig") {
    if (args.size() != 1) {
      out() << "usage: .saveconfig <file>\n";
    } else {
      Status s = SaveAccessConfig(*engine_->roles(), *engine_->policies(), args[0]);
      out() << (s.ok() ? "access config saved to " + args[0] : s.ToString()) << "\n";
    }
  } else if (cmd == ".loadconfig") {
    if (args.size() != 1) {
      out() << "usage: .loadconfig <file>\n";
    } else {
      Status s = LoadAccessConfig(args[0], engine_->roles(), engine_->policies());
      out() << (s.ok() ? "access config loaded from " + args[0] : s.ToString()) << "\n";
    }
  } else if (cmd == ".explain") {
    CmdExplain(line);
  } else {
    out() << "unknown command '" << cmd << "' (try .help)\n";
  }
}

void Shell::CmdHelp() {
  out() << "PCQE shell — SQL statements end with ';'. Commands:\n"
           "  .tables                       list tables\n"
           "  .schema <table>               show a table's columns\n"
           "  .load <table> <file.csv> [confidence_column]\n"
           "  .save <table> <file.csv>      export with a confidence column\n"
           "  .role add <role>              declare a role\n"
           "  .role grant <user> <role>     assign a role\n"
           "  .user add <name>              declare a user\n"
           "  .user use <name>              query as this user\n"
           "  .purpose <name>               set the query purpose\n"
           "  .fraction <0..1>              required released fraction\n"
           "  .timeout <ms>                 solve budget per query (0 = unlimited);\n"
           "                                expired solves return a partial proposal\n"
           "  .exec [row|vec]               show/set the query interpreter\n"
           "                                (vectorized by default; bit-identical results)\n"
           "  .pushdown [on|off]            show/set beta pushdown (on by default;\n"
           "                                prunes sub-beta tuples below joins via\n"
           "                                per-table confidence indexes; released\n"
           "                                rows are provably identical either way)\n"
           "  .policy add <role> <purpose> <beta>\n"
           "  .policy list\n"
           "  .proposal                     show the last improvement proposal\n"
           "  .accept                       apply it to the database\n"
           "  .why <row>                    most influential base tuples of a row\n"
           "  .serve [workers]              start the concurrent query service\n"
           "  .session <user> [purpose]     open a service session (SQL runs through it)\n"
           "  .session off                  drop back to direct engine submission\n"
           "  .stats                        service counters (cache, queue, latency)\n"
           "  .metrics [json]               telemetry registry (Prometheus text / JSON)\n"
           "  .trace [<id>]                 recorded query traces (latest, or by id)\n"
           "  .audit [json|<id>]            policy-compliance audit log (latest, JSON,\n"
           "                                or one record by id)\n"
           "  .durable <dir>                open a durable catalog: recover from <dir>\n"
           "                                if it holds one, then WAL-log every .accept\n"
           "  .checkpoint                   snapshot the catalog and rotate the WAL\n"
           "  .recover                      drop in-memory state, replay checkpoint+WAL\n"
           "  .wal                          durable-storage status (segment, LSNs, counters)\n"
           "  .savedb <dir> | .opendb <dir> persist / restore every table\n"
           "  .saveconfig <file> | .loadconfig <file>  roles + policies\n"
           "  .explain <select>             show the query plan\n"
           "  .explain analyze [json] <select>  execute and show the profiled\n"
           "                                operator tree (rows, chunks, time)\n"
           "  .quit\n";
}

void Shell::CmdTables() {
  for (const std::string& name : catalog_.TableNames()) {
    const Table* t = *catalog_.GetTable(name);
    out() << name << " (" << t->num_tuples() << " rows)\n";
  }
}

void Shell::CmdSchema(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    out() << "usage: .schema <table>\n";
    return;
  }
  auto table = catalog_.GetTable(args[0]);
  if (!table.ok()) {
    out() << table.status().ToString() << "\n";
    return;
  }
  out() << (*table)->schema().ToString() << "\n";
}

void Shell::CmdLoad(const std::vector<std::string>& args) {
  if (args.size() < 2 || args.size() > 3) {
    out() << "usage: .load <table> <file.csv> [confidence_column]\n";
    return;
  }
  CsvOptions options;
  if (args.size() == 3) options.confidence_column = args[2];
  auto table = ImportCsvFile(&catalog_, args[0], args[1], options);
  if (!table.ok()) {
    out() << table.status().ToString() << "\n";
    return;
  }
  // Bulk loads bypass the confidence-version counter; drop stale entries
  // (cached evaluations and confidence zone maps alike).
  engine_->confidence_index()->Invalidate();
  if (service_ != nullptr) service_->InvalidateCache();
  out() << "loaded " << (*table)->num_tuples() << " rows into " << args[0] << "\n";
}

void Shell::CmdSave(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    out() << "usage: .save <table> <file.csv>\n";
    return;
  }
  auto table = catalog_.GetTable(args[0]);
  if (!table.ok()) {
    out() << table.status().ToString() << "\n";
    return;
  }
  CsvOptions options;
  options.confidence_column = "confidence";
  Status s = ExportCsvFile(**table, args[1], options);
  out() << (s.ok() ? "saved " + args[1] : s.ToString()) << "\n";
}

void Shell::CmdRole(const std::vector<std::string>& args) {
  if (args.size() == 2 && args[0] == "add") {
    Status s = engine_->roles()->AddRole(args[1]);
    out() << (s.ok() ? "role " + args[1] + " added" : s.ToString()) << "\n";
    return;
  }
  if (args.size() == 3 && args[0] == "grant") {
    Status s = engine_->roles()->AssignRole(args[1], args[2]);
    out() << (s.ok() ? args[2] + " granted to " + args[1] : s.ToString()) << "\n";
    return;
  }
  out() << "usage: .role add <role> | .role grant <user> <role>\n";
}

void Shell::CmdUser(const std::vector<std::string>& args) {
  if (args.size() == 2 && args[0] == "add") {
    Status s = engine_->roles()->AddUser(args[1]);
    out() << (s.ok() ? "user " + args[1] + " added" : s.ToString()) << "\n";
    return;
  }
  if (args.size() == 2 && args[0] == "use") {
    if (!engine_->roles()->HasUser(args[1])) {
      out() << "unknown user '" << args[1] << "' (use .user add first)\n";
      return;
    }
    user_ = args[1];
    out() << "querying as " << user_ << "\n";
    return;
  }
  out() << "usage: .user add <name> | .user use <name>\n";
}

void Shell::CmdPolicy(const std::vector<std::string>& args) {
  if (args.size() == 1 && args[0] == "list") {
    for (const ConfidencePolicy& p : engine_->policies()->policies()) {
      out() << p.ToString() << "\n";
    }
    return;
  }
  if (args.size() == 4 && args[0] == "add") {
    ConfidencePolicy policy{args[1], args[2], std::strtod(args[3].c_str(), nullptr)};
    Status s = engine_->policies()->AddPolicy(*engine_->roles(), policy);
    out() << (s.ok() ? "policy " + policy.ToString() + " added" : s.ToString()) << "\n";
    return;
  }
  out() << "usage: .policy add <role> <purpose> <beta> | .policy list\n";
}

void Shell::CmdWhy(const std::vector<std::string>& args) {
  if (!last_result_.has_value()) {
    out() << "no query result yet (run a SELECT first)\n";
    return;
  }
  if (args.size() != 1) {
    out() << "usage: .why <row number, 1-based>\n";
    return;
  }
  size_t row = static_cast<size_t>(std::strtoull(args[0].c_str(), nullptr, 10));
  if (row == 0 || row > last_result_->rows.size()) {
    out() << "row " << args[0] << " out of range (result has "
          << last_result_->rows.size() << " rows)\n";
    return;
  }
  // Deferred results carry no formulas yet; the explanation needs them.
  last_result_->MaterializeLineage();
  const QueryResult::Row& result_row = last_result_->rows[row - 1];
  auto probs = SnapshotConfidences(catalog_, *last_result_);
  if (!probs.ok()) {
    out() << probs.status().ToString() << "\n";
    return;
  }
  out() << "row " << row << " confidence " << FormatDouble(result_row.confidence, 6)
        << "; most influential base tuples:\n";
  for (const InfluenceEntry& e :
       RankInfluence(*last_result_->arena, result_row.lineage, *probs, 5)) {
    std::string label = "tuple " + std::to_string(e.var);
    if (auto tuple = catalog_.FindTuple(e.var); tuple.ok()) {
      label = (*tuple)->ToString();
    }
    out() << "  " << label << ": sensitivity " << FormatDouble(e.sensitivity, 4)
          << ", headroom " << FormatDouble(e.headroom, 4) << ", potential "
          << FormatDouble(e.potential(), 4) << "\n";
  }
}

void Shell::CmdServe(const std::vector<std::string>& args) {
  if (args.size() > 1) {
    out() << "usage: .serve [workers]\n";
    return;
  }
  if (service_ != nullptr) {
    out() << "already serving with " << service_->num_workers() << " worker(s)\n";
    return;
  }
  ServiceOptions options;
  // The service publishes to the shell's registry/ring, so `.metrics` and
  // `.trace` show one continuous view across direct and served queries.
  options.registry = &registry_;
  options.tracer = &tracer_;
  options.audit = &audit_;
  if (!args.empty()) {
    options.num_workers = static_cast<size_t>(std::strtoull(args[0].c_str(), nullptr, 10));
    if (options.num_workers == 0 || options.num_workers > 64) {
      out() << "workers must be in 1..64\n";
      return;
    }
  }
  service_ = std::make_unique<QueryService>(engine_.get(), options);
  out() << "serving with " << service_->num_workers() << " worker(s), queue capacity "
        << options.queue_capacity << ", cache capacity " << options.cache_capacity
        << " (.session <user> [purpose] to begin)\n";
}

void Shell::CmdSession(const std::vector<std::string>& args) {
  if (args.size() == 1 && args[0] == "off") {
    if (session_.has_value() && service_ != nullptr) {
      Status s = service_->CloseSession(session_->id);
      if (!s.ok()) out() << s.ToString() << "\n";
    }
    session_.reset();
    out() << "session closed; SQL goes directly to the engine again\n";
    return;
  }
  if (args.empty() || args.size() > 2) {
    out() << "usage: .session <user> [purpose] | .session off\n";
    return;
  }
  if (service_ == nullptr) {
    out() << "no service running (use .serve first)\n";
    return;
  }
  std::string purpose = args.size() == 2 ? args[1] : purpose_;
  auto session = service_->OpenSession(args[0], purpose);
  if (!session.ok()) {
    out() << session.status().ToString() << "\n";
    return;
  }
  if (session_.has_value()) {
    // Best-effort close of the previous session; the new one supersedes it.
    Status closed = service_->CloseSession(session_->id);
    if (!closed.ok()) out() << closed.ToString() << "\n";
  }
  session_ = *session;
  purpose_ = purpose;
  out() << session_->ToString() << " opened; SQL now runs through the service\n";
}

void Shell::CmdStats() {
  if (service_ == nullptr) {
    out() << "no service running (use .serve first)\n";
    return;
  }
  out() << service_->stats().ToString();
}

void Shell::CmdMetrics(const std::vector<std::string>& args) {
  if (args.size() > 1 || (args.size() == 1 && args[0] != "json")) {
    out() << "usage: .metrics [json]\n";
    return;
  }
  bool json = !args.empty();
  // With a service running, let it refresh its point-in-time gauges first.
  if (service_ != nullptr) {
    out() << (json ? service_->MetricsJson() : service_->RenderMetricsText());
  } else {
    out() << (json ? registry_.RenderJson() : registry_.RenderText());
  }
  if (json) out() << "\n";
}

void Shell::CmdTrace(const std::vector<std::string>& args) {
  if (args.size() > 1) {
    out() << "usage: .trace [<id>]\n";
    return;
  }
  if (!tracer_.enabled()) {
    out() << "tracing is disabled (PCQE_TELEMETRY=off)\n";
    return;
  }
  if (args.empty()) {
    std::vector<Trace> traces = tracer_.Snapshot();
    if (traces.empty()) {
      out() << "no traces recorded yet (run a query)\n";
      return;
    }
    out() << traces.front().ToString();
    if (traces.size() > 1) {
      out() << "-- " << traces.size() << " trace(s) retained; .trace <id> for older:";
      for (const Trace& t : traces) out() << " " << t.id;
      out() << "\n";
    }
    return;
  }
  uint64_t id = std::strtoull(args[0].c_str(), nullptr, 10);
  std::optional<Trace> trace = tracer_.Get(id);
  if (!trace.has_value()) {
    out() << "no trace with id " << args[0] << " (ring keeps the last "
          << tracer_.Snapshot().size() << ")\n";
    return;
  }
  out() << trace->ToString();
}

void Shell::CmdExplain(const std::string& line) {
  // Everything after ".explain" is the SQL (no ';' needed). An optional
  // "analyze [json]" prefix executes the statement and prints the profiled
  // operator tree instead of the static plan.
  std::string rest(TrimAscii(line.substr(std::string(".explain").size())));
  bool analyze = false;
  bool json = false;
  if (StartsWith(rest, "analyze ") || rest == "analyze") {
    analyze = true;
    rest = std::string(TrimAscii(rest.substr(std::string("analyze").size())));
    if (StartsWith(rest, "json ")) {
      json = true;
      rest = std::string(TrimAscii(rest.substr(std::string("json").size())));
    }
  }
  if (!rest.empty() && rest.back() == ';') rest.pop_back();
  if (rest.empty()) {
    out() << "usage: .explain [analyze [json]] <select statement>\n";
    return;
  }
  if (!analyze) {
    auto stmt = ParseSelect(rest);
    if (!stmt.ok()) {
      out() << stmt.status().ToString() << "\n";
      return;
    }
    auto plan = PlanQuery(catalog_, **stmt);
    if (!plan.ok()) {
      out() << plan.status().ToString() << "\n";
      return;
    }
    out() << (*plan)->ToString() << "\n";
    return;
  }
  // `analyze` executes the statement and prints the profiled operator tree;
  // results are discarded. With an active user the evaluation mirrors a
  // real submission — same qualification through ResolvePushdownBeta — so
  // the tree shows the ConfidencePrune operator (and its pruned counters)
  // exactly as the user's queries run it. Without a user it runs
  // unfiltered in the current interpreter mode.
  OperatorProfile profile;
  auto result = [&]() -> Result<QueryResult> {
    ReaderLock lock(engine_->catalog_mu());
    if (!user_.empty()) {
      QueryRequest request;
      request.sql = rest;
      request.user = user_;
      request.purpose = purpose_;
      request.required_fraction = fraction_;
      request.pushdown = pushdown_;
      return engine_->Evaluate(rest, nullptr, &profile,
                               engine_->ResolvePushdownBeta(request));
    }
    return RunQuery(catalog_, rest, nullptr, engine_->execution_mode,
                    /*materialize_values=*/false, &profile);
  }();
  if (!result.ok()) {
    out() << result.status().ToString() << "\n";
    return;
  }
  out() << (json ? profile.RenderJson() + "\n" : profile.RenderText());
}

void Shell::CmdAudit(const std::vector<std::string>& args) {
  if (args.size() > 1) {
    out() << "usage: .audit [json|<id>]\n";
    return;
  }
  if (!audit_.enabled()) {
    out() << "audit log disabled (capacity 0)\n";
    return;
  }
  if (args.size() == 1 && args[0] == "json") {
    out() << audit_.RenderJson() << "\n";
    return;
  }
  if (args.size() == 1) {
    uint64_t id = std::strtoull(args[0].c_str(), nullptr, 10);
    std::optional<AuditRecord> record = audit_.Get(id);
    if (!record.has_value()) {
      out() << "no audit record with id " << args[0] << " (ring keeps the last "
            << audit_.Snapshot().size() << ")\n";
      return;
    }
    out() << record->ToString();
    return;
  }
  std::vector<AuditRecord> records = audit_.Snapshot();
  if (records.empty()) {
    out() << "no audit records yet (run a query as a user)\n";
    return;
  }
  out() << records.front().ToString();
  if (records.size() > 1) {
    out() << "-- " << records.size() << " record(s) retained ("
          << audit_.total_recorded() << " total); .audit <id> for older:";
    for (const AuditRecord& r : records) out() << " " << r.id;
    out() << "\n";
  }
}

void Shell::CmdDurable(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    out() << "usage: .durable <directory>\n";
    return;
  }
  if (storage_ != nullptr) {
    out() << "durable storage already open at " << storage_->snapshot().dir
          << " (one directory per shell)\n";
    return;
  }
  auto storage = std::make_unique<StorageManager>();
  DurabilityOptions options;
  options.dir = args[0];
  Status opened;
  {
    // Exclusive: opening an existing directory recovers, rewriting the
    // catalog wholesale.
    WriterLock lock(engine_->catalog_mu());
    opened = storage->Open(options, &catalog_);
  }
  if (!opened.ok()) {
    out() << opened.ToString() << "\n";
    return;
  }
  storage_ = std::move(storage);
  storage_->AttachTelemetry(&registry_);
  engine_->AttachStorage(storage_.get());
  // Opening an existing directory recovered the catalog wholesale.
  engine_->confidence_index()->Invalidate();
  if (service_ != nullptr) service_->InvalidateCache();
  StorageSnapshot snap = storage_->snapshot();
  out() << "durable catalog at " << snap.dir << ": checkpoint " << snap.checkpoint
        << ", segment " << snap.wal << ", " << snap.recovered_records
        << " record(s) recovered, next lsn " << snap.next_lsn
        << " (.accept is now WAL-logged)\n";
}

void Shell::CmdCheckpoint() {
  if (storage_ == nullptr) {
    out() << "no durable storage (.durable <dir> first)\n";
    return;
  }
  Status s;
  {
    ReaderLock lock(engine_->catalog_mu());
    s = storage_->Checkpoint(catalog_);
  }
  if (!s.ok()) {
    out() << s.ToString() << "\n";
    return;
  }
  StorageSnapshot snap = storage_->snapshot();
  out() << "checkpoint " << snap.checkpoint << " published (segment " << snap.wal
        << ", truncate lsn " << snap.truncate_lsn << ")\n";
}

void Shell::CmdRecover() {
  if (storage_ == nullptr) {
    out() << "no durable storage (.durable <dir> first)\n";
    return;
  }
  Status s;
  {
    WriterLock lock(engine_->catalog_mu());
    s = storage_->Recover();
  }
  // Pre-recovery evaluations and confidence zone maps must not be served
  // against replayed state: replay keeps the confidence version monotone,
  // so a map built over unlogged pre-crash mutations could still validate.
  engine_->confidence_index()->Invalidate();
  if (service_ != nullptr) service_->InvalidateCache();
  if (!s.ok()) {
    out() << s.ToString() << "\n";
    return;
  }
  StorageSnapshot snap = storage_->snapshot();
  out() << "recovered from " << snap.dir << ": checkpoint " << snap.checkpoint
        << " + WAL replay to version " << snap.recovered_version << " (next lsn "
        << snap.next_lsn << ")\n";
}

void Shell::CmdWal() {
  if (storage_ == nullptr) {
    out() << "no durable storage (.durable <dir> first)\n";
    return;
  }
  StorageSnapshot snap = storage_->snapshot();
  out() << "dir            " << snap.dir << "\n"
        << "checkpoint     " << snap.checkpoint << "\n"
        << "segment        " << snap.wal << " (" << snap.wal_file_bytes
        << " bytes durable, " << snap.wal_buffered_bytes << " buffered)\n"
        << "truncate lsn   " << snap.truncate_lsn << "\n"
        << "next lsn       " << snap.next_lsn << "\n"
        << "appends        " << snap.wal_appends << " (" << snap.wal_bytes
        << " bytes)\n"
        << "syncs          " << snap.syncs << "\n"
        << "checkpoints    " << snap.checkpoints << "\n"
        << "recovered      " << snap.recovered_records << " record(s), version "
        << snap.recovered_version << "\n";
}

void Shell::CmdProposal() {
  if (!has_proposal_) {
    out() << "no pending proposal\n";
    return;
  }
  out() << "algorithm " << last_proposal_.algorithm << ", total cost "
        << FormatDouble(last_proposal_.total_cost, 4)
        << (last_proposal_.feasible ? "" : " (infeasible: best effort)");
  if (last_proposal_.partial) {
    out() << " [partial: " << SolveStopToString(last_proposal_.stop)
          << " — anytime plan, not proven optimal]";
  }
  out() << "\n";
  for (const IncrementAction& a : last_proposal_.actions) {
    std::string row = "tuple " + std::to_string(a.base_tuple);
    if (auto tuple = catalog_.FindTuple(a.base_tuple); tuple.ok()) {
      row = (*tuple)->ToString();
    }
    out() << "  " << row << ": " << FormatDouble(a.from, 4) << " -> "
          << FormatDouble(a.to, 4) << " (cost " << FormatDouble(a.cost, 4) << ")\n";
  }
}

void Shell::CmdAccept() {
  if (!has_proposal_) {
    out() << "no pending proposal\n";
    return;
  }
  // With a service running, route through it so the write takes the
  // exclusive catalog lock against in-flight requests.
  Status s;
  if (service_ != nullptr) {
    s = service_->Accept(last_proposal_);
  } else {
    // Direct mode is single-threaded, but the engine's lock contract is
    // unconditional: AcceptProposal requires the exclusive catalog lock.
    WriterLock lock(engine_->catalog_mu());
    s = engine_->AcceptProposal(last_proposal_);
  }
  if (!s.ok()) {
    out() << s.ToString() << "\n";
    return;
  }
  has_proposal_ = false;
  out() << "applied; re-run your query to see the enlarged result\n";
}

void Shell::RunSql(const std::string& sql) {
  if (service_ != nullptr && session_.has_value()) {
    ServiceRequest request;
    request.sql = sql;
    request.required_fraction = fraction_;
    request.timeout_ms = timeout_ms_;
    request.pushdown = pushdown_;
    auto outcome = service_->Submit(*session_, std::move(request));
    if (!outcome.ok()) {
      out() << outcome.status().ToString() << "\n";
      return;
    }
    out() << outcome->ReleasedTable();
    out() << outcome->released.size() << " of " << outcome->intermediate.rows.size()
          << " row(s) released (beta=" << FormatDouble(outcome->policy.threshold)
          << ", via service)\n";
    if (outcome->proposal.needed) {
      last_proposal_ = outcome->proposal;
      has_proposal_ = true;
      out() << "improvement available: cost "
            << FormatDouble(last_proposal_.total_cost, 4) << " via "
            << last_proposal_.algorithm
            << (last_proposal_.partial ? " [partial]" : "")
            << " (.proposal to inspect, .accept to apply)\n";
    }
    last_result_ = std::move(outcome->intermediate);
    return;
  }

  if (user_.empty()) {
    // No session user: run unfiltered, showing raw confidences. Still honor
    // the .exec interpreter choice so differential smokes can compare modes.
    auto result = RunQuery(catalog_, sql, nullptr, engine_->execution_mode);
    if (!result.ok()) {
      out() << result.status().ToString() << "\n";
      return;
    }
    out() << result->ToTable();
    out() << result->rows.size() << " row(s), no policy applied (use .user use)\n";
    last_result_ = std::move(*result);
    return;
  }

  QueryRequest request;
  request.sql = sql;
  request.user = user_;
  request.purpose = purpose_;
  request.required_fraction = fraction_;
  request.pushdown = pushdown_;
  if (timeout_ms_ > 0) request.deadline = Deadline::AfterMillis(timeout_ms_);
  auto outcome = [&] {
    // Direct submission bypasses the service, so it takes the engine's
    // shared catalog lock itself (the REPL is sequential; this is for the
    // lock contract, not contention).
    ReaderLock lock(engine_->catalog_mu());
    return engine_->Submit(request);
  }();
  if (!outcome.ok()) {
    out() << outcome.status().ToString() << "\n";
    return;
  }
  out() << outcome->ReleasedTable();
  out() << outcome->released.size() << " of " << outcome->intermediate.rows.size()
        << " row(s) released (beta=" << FormatDouble(outcome->policy.threshold)
        << ")\n";
  if (outcome->proposal.needed) {
    last_proposal_ = outcome->proposal;
    has_proposal_ = true;
    out() << "improvement available: cost "
          << FormatDouble(last_proposal_.total_cost, 4) << " via "
          << last_proposal_.algorithm
          << (last_proposal_.partial ? " [partial]" : "")
          << " (.proposal to inspect, .accept to apply)\n";
  }
  last_result_ = std::move(outcome->intermediate);
}

}  // namespace pcqe
