// Tests for the synthetic workload generator (§5.1 setup).

#include "workload/generator.h"

#include <gtest/gtest.h>

#include <set>

namespace pcqe {
namespace {

TEST(WorkloadTest, DeterministicForEqualSeeds) {
  WorkloadParams params;
  params.num_base_tuples = 100;
  params.seed = 7;
  Workload a = GenerateWorkload(params);
  Workload b = GenerateWorkload(params);
  ASSERT_EQ(a.base_tuples.size(), b.base_tuples.size());
  for (size_t i = 0; i < a.base_tuples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.base_tuples[i].confidence, b.base_tuples[i].confidence);
    EXPECT_EQ(a.base_tuples[i].cost->family(), b.base_tuples[i].cost->family());
  }
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t r = 0; r < a.results.size(); ++r) {
    EXPECT_EQ(a.arena->ToString(a.results[r]), b.arena->ToString(b.results[r]));
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadParams params;
  params.num_base_tuples = 100;
  params.seed = 1;
  Workload a = GenerateWorkload(params);
  params.seed = 2;
  Workload b = GenerateWorkload(params);
  bool any_diff = false;
  for (size_t i = 0; i < a.base_tuples.size() && !any_diff; ++i) {
    any_diff = a.base_tuples[i].confidence != b.base_tuples[i].confidence;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, RespectsTable4Defaults) {
  WorkloadParams params;
  Workload w = GenerateWorkload(params);
  EXPECT_EQ(w.base_tuples.size(), 10'000u);
  EXPECT_DOUBLE_EQ(w.beta, 0.6);
  EXPECT_DOUBLE_EQ(w.delta, 0.1);
  // θ = 50% of the derived result count.
  EXPECT_EQ(w.required, (w.results.size() + 1) / 2);
}

TEST(WorkloadTest, ConfidencesAroundCenter) {
  WorkloadParams params;
  params.num_base_tuples = 500;
  Workload w = GenerateWorkload(params);
  for (const BaseTupleSpec& spec : w.base_tuples) {
    EXPECT_GE(spec.confidence, 0.05 - 1e-12);
    EXPECT_LE(spec.confidence, 0.15 + 1e-12);
    EXPECT_DOUBLE_EQ(spec.max_confidence, 1.0);
    ASSERT_NE(spec.cost, nullptr);
  }
}

TEST(WorkloadTest, CostFamiliesMatchPaperMix) {
  WorkloadParams params;
  params.num_base_tuples = 600;
  Workload w = GenerateWorkload(params);
  std::set<CostFamily> seen;
  for (const BaseTupleSpec& spec : w.base_tuples) seen.insert(spec.cost->family());
  // binomial (polynomial), exponential and logarithm all appear.
  EXPECT_TRUE(seen.count(CostFamily::kPolynomial));
  EXPECT_TRUE(seen.count(CostFamily::kExponential));
  EXPECT_TRUE(seen.count(CostFamily::kLogarithmic));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(WorkloadTest, ResultsUseRequestedBasesPerResult) {
  WorkloadParams params;
  params.num_base_tuples = 200;
  params.bases_per_result = 5;
  params.num_results = 40;
  Workload w = GenerateWorkload(params);
  ASSERT_EQ(w.results.size(), 40u);
  for (LineageRef r : w.results) {
    EXPECT_EQ(w.arena->Variables(r).size(), 5u);
  }
}

TEST(WorkloadTest, ToProblemBuildsCleanly) {
  WorkloadParams params;
  params.num_base_tuples = 50;
  params.num_results = 20;
  Workload w = GenerateWorkload(params);
  auto problem = w.ToProblem();
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();
  EXPECT_EQ(problem->num_results(), 20u);
  EXPECT_EQ(problem->num_base_tuples(), 50u);
  EXPECT_EQ(problem->required(0), 10u);
  EXPECT_TRUE(problem->is_monotone());
}

TEST(WorkloadTest, DerivedResultCountScalesWithData) {
  WorkloadParams params;
  params.num_base_tuples = 1000;
  params.bases_per_result = 5;
  params.num_results = 0;
  Workload w = GenerateWorkload(params);
  EXPECT_EQ(w.results.size(), 400u);  // 2k/m
}

TEST(WorkloadTest, OrGroupSizeShapesLineage) {
  WorkloadParams params;
  params.num_base_tuples = 100;
  params.num_results = 10;
  params.bases_per_result = 6;
  params.or_group_size = 6;  // single flat OR
  Workload w = GenerateWorkload(params);
  for (LineageRef r : w.results) {
    EXPECT_EQ(w.arena->op(r), LineageOp::kOr);
  }
  params.or_group_size = 1;  // pure AND
  Workload w2 = GenerateWorkload(params);
  for (LineageRef r : w2.results) {
    EXPECT_EQ(w2.arena->op(r), LineageOp::kAnd);
  }
}

TEST(WorkloadTest, PoolLocalityCreatesShuredBases) {
  // With pools, base tuples should be shared between results, which is what
  // the D&C partitioner exploits.
  WorkloadParams params;
  params.num_base_tuples = 100;
  params.bases_per_result = 5;
  params.num_results = 60;
  Workload w = GenerateWorkload(params);
  IncrementProblem p = *w.ToProblem();
  size_t shared_bases = 0;
  for (size_t b = 0; b < p.num_base_tuples(); ++b) {
    if (p.results_of_base(b).size() > 1) ++shared_bases;
  }
  EXPECT_GT(shared_bases, 10u);
}

TEST(MultiQueryWorkloadTest, StructureAndDeterminism) {
  WorkloadParams params;
  params.num_base_tuples = 100;
  params.num_results = 20;
  params.seed = 5;
  MultiQueryWorkload a = GenerateMultiQueryWorkload(params, 3);
  EXPECT_EQ(a.results.size(), 60u);
  EXPECT_EQ(a.required.size(), 3u);
  for (size_t q = 0; q < 3; ++q) EXPECT_EQ(a.required[q], 10u);
  EXPECT_EQ(a.query_of.size(), a.results.size());

  MultiQueryWorkload b = GenerateMultiQueryWorkload(params, 3);
  for (size_t r = 0; r < a.results.size(); ++r) {
    EXPECT_EQ(a.arena->ToString(a.results[r]), b.arena->ToString(b.results[r]));
  }
}

TEST(MultiQueryWorkloadTest, ProblemsBuildAndShareBases) {
  WorkloadParams params;
  params.num_base_tuples = 60;
  params.num_results = 15;
  params.seed = 6;
  MultiQueryWorkload w = GenerateMultiQueryWorkload(params, 2);
  IncrementProblem combined = *w.ToProblem();
  EXPECT_EQ(combined.num_queries(), 2u);
  EXPECT_EQ(combined.num_results(), 30u);

  IncrementProblem q0 = *w.ToSingleProblem(0);
  IncrementProblem q1 = *w.ToSingleProblem(1);
  EXPECT_EQ(q0.num_queries(), 1u);
  EXPECT_EQ(q0.num_results() + q1.num_results(), combined.num_results());
  EXPECT_TRUE(w.ToSingleProblem(5).status().IsInvalidArgument());

  // Queries drawn from the same pools share base tuples.
  size_t shared = 0;
  for (size_t b = 0; b < combined.num_base_tuples(); ++b) {
    bool in0 = false, in1 = false;
    for (uint32_t r : combined.results_of_base(b)) {
      (combined.query_of_result(r) == 0 ? in0 : in1) = true;
    }
    if (in0 && in1) ++shared;
  }
  EXPECT_GT(shared, 0u);
}

TEST(MultiQueryWorkloadTest, SingleQueryDegenerateMatchesShape) {
  WorkloadParams params;
  params.num_base_tuples = 50;
  params.num_results = 10;
  params.seed = 7;
  MultiQueryWorkload w = GenerateMultiQueryWorkload(params, 1);
  IncrementProblem p = *w.ToProblem();
  EXPECT_EQ(p.num_queries(), 1u);
  EXPECT_EQ(p.num_results(), 10u);
}

TEST(WorkloadTest, TinyWorkloadsAreWellFormed) {
  WorkloadParams params;
  params.num_base_tuples = 3;
  params.bases_per_result = 5;  // clamped to k
  params.num_results = 2;
  Workload w = GenerateWorkload(params);
  ASSERT_EQ(w.results.size(), 2u);
  for (LineageRef r : w.results) {
    EXPECT_LE(w.arena->Variables(r).size(), 3u);
  }
  EXPECT_TRUE(w.ToProblem().ok());
}

}  // namespace
}  // namespace pcqe
