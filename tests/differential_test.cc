// Randomized differential harness: every solver against the brute-force
// ground truth over hundreds of seeded small instances.
//
// For each instance the enforced contract is:
//  - every solver's output passes `ValidateSolution` (grid-aligned, cost
//    recomputes, satisfaction recomputes) — feasibility claims are never
//    taken on faith;
//  - the branch-and-bound heuristic is exact: same feasibility verdict and
//    (when feasible) the same optimal cost as brute force;
//  - the approximate solvers (greedy in all three configurations, divide-
//    and-conquer) agree on feasibility — the instances are monotone, where
//    greedy provably reaches the ceiling — and their cost lands in the
//    documented band [optimum, cost of raising every tuple to its ceiling];
//  - two-phase greedy never costs more than one-phase (refinement only
//    removes redundant spend).
//
// Instances are derived deterministically from a small seed; on failure the
// seed is printed so the exact instance replays with
// `GenerateWorkload(DiffParams(seed))`.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "strategy/brute_force.h"
#include "strategy/dnc.h"
#include "strategy/greedy.h"
#include "strategy/heuristic.h"
#include "strategy/problem.h"
#include "strategy/solution.h"
#include "workload/generator.h"

namespace pcqe {
namespace {

// >= 200 instances x 5 solver configurations (the harness contract).
constexpr uint64_t kNumInstances = 210;

// Every 7th seed is made provably infeasible (ceilings pinned below β) so
// the feasibility cross-check exercises both verdicts.
bool InfeasibleSeed(uint64_t seed) { return seed % 7 == 3; }

WorkloadParams DiffParams(uint64_t seed) {
  WorkloadParams params;
  params.num_base_tuples = 3 + seed % 5;  // 3..7: brute force stays tiny
  params.num_results = 2 + seed % 4;
  params.bases_per_result = 2 + seed % 2;
  params.or_group_size = 1 + seed % 3;  // pure AND .. mixed AND/OR
  params.beta = 0.3 + 0.05 * static_cast<double>(seed % 5);
  params.theta = 0.4 + 0.1 * static_cast<double>(seed % 3);
  params.delta = 0.25;  // coarse grid keeps the enumeration small
  params.seed = 0x9E3779B97F4A7C15ull ^ (seed + 1);
  if (InfeasibleSeed(seed)) {
    // Ceilings below β: an AND/OR over tuples capped at 0.2 can reach at
    // most 1-(1-0.2)^3 < 0.5 < β, so no assignment satisfies any result.
    params.beta = 0.6;
  }
  return params;
}

Workload DiffInstance(uint64_t seed) {
  Workload w = GenerateWorkload(DiffParams(seed));
  if (InfeasibleSeed(seed)) {
    for (BaseTupleSpec& spec : w.base_tuples) spec.max_confidence = 0.2;
  }
  return w;
}

// Cost of raising every base tuple from its initial confidence to its
// ceiling — the trivially feasible assignment on monotone feasible
// instances, hence an upper bound no sane solver should exceed.
double CeilingCost(const IncrementProblem& p) {
  double cost = 0.0;
  for (size_t i = 0; i < p.num_base_tuples(); ++i) {
    cost += p.CostLevel(i, p.base(i).max_confidence) -
            p.CostLevel(i, p.base(i).confidence);
  }
  return cost;
}

constexpr const char* kConfigNames[] = {
    "heuristic", "greedy_two_phase", "greedy_one_phase", "greedy_raw_gain",
    "dnc"};

Result<IncrementSolution> RunConfig(size_t config, const IncrementProblem& p) {
  switch (config) {
    case 0:
      return SolveHeuristic(p);
    case 1:
      return SolveGreedy(p);
    case 2: {
      GreedyOptions options;
      options.two_phase = false;
      return SolveGreedy(p, options);
    }
    case 3: {
      GreedyOptions options;
      options.gain_mode = GainMode::kRawAll;
      return SolveGreedy(p, options);
    }
    case 4:
      return SolveDnc(p);
    default:
      return Status::Internal("unknown config");
  }
}

TEST(DifferentialTest, AllSolversAgreeWithBruteForce) {
  size_t feasible_instances = 0;
  size_t infeasible_instances = 0;
  for (uint64_t seed = 0; seed < kNumInstances; ++seed) {
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " — replay with GenerateWorkload(DiffParams("
                 << seed << "))");
    Workload w = DiffInstance(seed);
    Result<IncrementProblem> problem = w.ToProblem();
    ASSERT_TRUE(problem.ok()) << problem.status().ToString();
    ASSERT_TRUE(problem->is_monotone());

    Result<IncrementSolution> brute = SolveBruteForce(*problem);
    ASSERT_TRUE(brute.ok()) << brute.status().ToString();
    ASSERT_TRUE(ValidateSolution(*problem, *brute).ok());
    if (brute->feasible) {
      ++feasible_instances;
    } else {
      ++infeasible_instances;
    }
    double ceiling = CeilingCost(*problem);

    double two_phase_cost = 0.0;
    double one_phase_cost = 0.0;
    for (size_t config = 0; config < 5; ++config) {
      SCOPED_TRACE(kConfigNames[config]);
      Result<IncrementSolution> solved = RunConfig(config, *problem);
      ASSERT_TRUE(solved.ok()) << solved.status().ToString();
      Status valid = ValidateSolution(*problem, *solved);
      ASSERT_TRUE(valid.ok()) << valid.ToString();
      EXPECT_FALSE(solved->partial);
      EXPECT_EQ(solved->stop, SolveStop::kComplete);

      // Monotone instances: feasibility is decidable by the ceiling, which
      // both the exact solvers and the greedy family reach.
      EXPECT_EQ(solved->feasible, brute->feasible);

      if (config == 0 && brute->feasible) {
        // The B&B heuristic is exact — cost-identical to the enumeration.
        EXPECT_NEAR(solved->total_cost, brute->total_cost, 1e-6);
      }
      if (config != 0 && brute->feasible && solved->feasible) {
        EXPECT_GE(solved->total_cost, brute->total_cost - 1e-6);
        EXPECT_LE(solved->total_cost, ceiling + 1e-6);
      }
      if (config == 1) two_phase_cost = solved->total_cost;
      if (config == 2) one_phase_cost = solved->total_cost;
    }
    if (brute->feasible) {
      EXPECT_LE(two_phase_cost, one_phase_cost + 1e-9);
    }
  }
  // The sweep must exercise both verdicts or the feasibility check is
  // vacuous.
  EXPECT_GT(feasible_instances, 0u);
  EXPECT_GT(infeasible_instances, 0u);
}

TEST(DifferentialTest, DeadlineBoundedDncMatchesBruteFeasibility) {
  // Anytime contract for a *bare* kDnc under a tight real deadline: the
  // result must still be grid-valid and agree with brute force on
  // feasibility. On these tiny monotone instances the deadline-bounded
  // greedy primer finishes in microseconds, so even when the 5 ms budget
  // cuts the fill off mid-raise the fallback incumbent keeps the verdict
  // feasible — the regression this sweep pins down. Costs stay in the
  // documented band; optimality/completeness claims are not checked (a
  // deadline-stopped run is exempt from the bit-determinism contract).
  size_t partial_runs = 0;
  for (uint64_t seed = 0; seed < kNumInstances; ++seed) {
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << " — replay with GenerateWorkload(DiffParams("
                 << seed << "))");
    Workload w = DiffInstance(seed);
    Result<IncrementProblem> problem = w.ToProblem();
    ASSERT_TRUE(problem.ok()) << problem.status().ToString();

    Result<IncrementSolution> brute = SolveBruteForce(*problem);
    ASSERT_TRUE(brute.ok()) << brute.status().ToString();

    DncOptions options;
    options.deadline = Deadline::AfterMillis(5);
    Result<IncrementSolution> dnc = SolveDnc(*problem, options);
    ASSERT_TRUE(dnc.ok()) << dnc.status().ToString();
    Status valid = ValidateSolution(*problem, *dnc);
    ASSERT_TRUE(valid.ok()) << valid.ToString();
    EXPECT_EQ(dnc->feasible, brute->feasible);
    if (dnc->partial) ++partial_runs;
    if (brute->feasible) {
      EXPECT_GE(dnc->total_cost, brute->total_cost - 1e-6);
      EXPECT_LE(dnc->total_cost, CeilingCost(*problem) + 1e-6);
    }
  }
  // Informational only: on a fast machine most runs complete inside 5 ms.
  (void)partial_runs;
}

}  // namespace
}  // namespace pcqe
